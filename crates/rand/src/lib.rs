//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment resolves crates.io unreliably, so the workspace
//! ships this minimal, dependency-free implementation of the exact API
//! subset the rest of the repository uses:
//!
//! * [`Rng::random`] (typed and turbofish forms) for `f64`/`f32`, the
//!   unsigned integers, and `bool`;
//! * [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`], a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (the same construction the xoshiro reference code uses).
//!
//! The generator is fully deterministic for a given seed, which the
//! simulation crates rely on for reproducible replications. Statistical
//! quality is far beyond what the Monte-Carlo tests here need: xoshiro256++
//! passes BigCrush.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// User-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution:
    /// uniform on `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1) on the dyadic grid.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

/// Generators constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 step used to expand seeds; also usable on its own for
    /// deriving independent per-replication seeds.
    pub(crate) fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++ seeded with
    /// SplitMix64. Deterministic for a given seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.random::<bool>()).count();
        assert!((heads as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }
}
