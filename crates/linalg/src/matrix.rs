use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::LinalgError;

/// A dense, row-major matrix of `f64` values.
///
/// `Matrix` is the workhorse container for the Markov-chain and reward-model
/// solvers in the workspace. It deliberately keeps a small, predictable API:
/// explicit constructors that validate their input, element access by
/// `(row, col)` tuple indexing, and checked algebraic operations that return
/// [`LinalgError`] on shape mismatches.
///
/// # Examples
///
/// ```
/// use uavail_linalg::Matrix;
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let i = Matrix::identity(2);
/// let b = a.mul_matrix(&i)?;
/// assert_eq!(a, b);
/// assert_eq!(b[(1, 0)], 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix, useful as the initial state of reusable
    /// scratch storage (see [`Matrix::copy_from`]).
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// let z = Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert_eq!(z[(1, 2)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// let i = Matrix::identity(3);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty input and
    /// [`LinalgError::InvalidInput`] when rows have differing lengths or any
    /// entry is not finite.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// # fn main() -> Result<(), uavail_linalg::LinalgError> {
    /// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// assert_eq!(m.shape(), (2, 2));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != cols {
                return Err(LinalgError::InvalidInput {
                    reason: format!("row {i} has length {}, expected {cols}", row.len()),
                });
            }
            for (j, &v) in row.iter().enumerate() {
                if !v.is_finite() {
                    return Err(LinalgError::InvalidInput {
                        reason: format!("non-finite entry at ({i}, {j})"),
                    });
                }
                data.push(v);
            }
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `data.len() != rows * cols`
    /// or any entry is not finite, and [`LinalgError::Empty`] if either
    /// dimension is zero.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput {
                reason: format!("data length {} does not match {rows}x{cols}", data.len()),
            });
        }
        if let Some(pos) = data.iter().position(|v| !v.is_finite()) {
            return Err(LinalgError::InvalidInput {
                reason: format!("non-finite entry at flat index {pos}"),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// let d = Matrix::from_diagonal(&[1.0, 2.0]);
    /// assert_eq!(d[(1, 1)], 2.0);
    /// assert_eq!(d[(0, 1)], 0.0);
    /// ```
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Matrix::zeros(diag.len(), diag.len());
        for (i, &v) in diag.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Returns the number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Returns the number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Returns the entry at `(row, col)`, or `None` if out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<f64> {
        if row < self.rows && col < self.cols {
            Some(self.data[row * self.cols + col])
        } else {
            None
        }
    }

    /// Returns a view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a mutable view of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn column(&self, c: usize) -> Vec<f64> {
        assert!(
            c < self.cols,
            "column index {c} out of bounds ({})",
            self.cols
        );
        (0..self.rows)
            .map(|r| self.data[r * self.cols + c])
            .collect()
    }

    /// Returns the underlying row-major data as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Consumes the matrix and returns the underlying row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Copies `other`'s shape and contents into `self`, reusing the existing
    /// allocation when it is large enough.
    ///
    /// This is the storage-reuse counterpart of `clone()`: workspaces that
    /// factor or eliminate many same-sized matrices in a loop can hold one
    /// `Matrix` and refill it per iteration without reallocating.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// # fn main() -> Result<(), uavail_linalg::LinalgError> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
    /// let mut scratch = Matrix::zeros(0, 0);
    /// scratch.copy_from(&a);
    /// assert_eq!(scratch, a);
    /// # Ok(())
    /// # }
    /// ```
    pub fn copy_from(&mut self, other: &Matrix) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Reshapes `self` to `rows × cols` and fills it with zeros, reusing the
    /// existing allocation when it is large enough.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// let mut m = Matrix::identity(3);
    /// m.reset_zeros(2, 4);
    /// assert_eq!(m.shape(), (2, 4));
    /// assert_eq!(m[(1, 3)], 0.0);
    /// ```
    pub fn reset_zeros(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Returns the transpose as a new matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// # fn main() -> Result<(), uavail_linalg::LinalgError> {
    /// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0]])?;
    /// let t = m.transpose();
    /// assert_eq!(t.shape(), (3, 1));
    /// assert_eq!(t[(2, 0)], 3.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Checked matrix addition.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn add_matrix(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                operation: "add",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Checked matrix subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when shapes differ.
    pub fn sub_matrix(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.shape() != other.shape() {
            return Err(LinalgError::ShapeMismatch {
                operation: "sub",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Checked matrix multiplication (`self * other`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `self.cols() !=
    /// other.rows()`.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_linalg::Matrix;
    /// # fn main() -> Result<(), uavail_linalg::LinalgError> {
    /// let a = Matrix::from_rows(&[&[1.0, 2.0]])?;          // 1x2
    /// let b = Matrix::from_rows(&[&[3.0], &[4.0]])?;       // 2x1
    /// let c = a.mul_matrix(&b)?;                           // 1x1
    /// assert_eq!(c[(0, 0)], 11.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn mul_matrix(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "mul",
                left: self.shape(),
                right: other.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out.data[r * other.cols + c] += a * other.data[k * other.cols + c];
                }
            }
        }
        Ok(out)
    }

    /// Multiplies the matrix by a column vector on the right (`self * x`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                operation: "mul_vec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            out[r] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        Ok(out)
    }

    /// Multiplies a row vector by the matrix on the left (`x * self`).
    ///
    /// This is the natural orientation for Markov-chain stationary vectors
    /// (`π P`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "vec_mul",
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let a = x[r];
            if a == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += a * m;
            }
        }
        Ok(out)
    }

    /// Returns the matrix scaled by `factor`.
    pub fn scale(&self, factor: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * factor).collect(),
        }
    }

    /// Maximum absolute entry (the max norm).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` if every row sums to `target` within `tol`.
    ///
    /// Useful to validate stochastic matrices (`target = 1.0`) and CTMC
    /// generators (`target = 0.0`).
    pub fn rows_sum_to(&self, target: f64, tol: f64) -> bool {
        (0..self.rows).all(|r| (self.row(r).iter().sum::<f64>() - target).abs() <= tol)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::add_matrix`] for a checked
    /// variant.
    fn add(self, rhs: &Matrix) -> Matrix {
        self.add_matrix(rhs)
            .expect("matrix addition shape mismatch")
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::sub_matrix`] for a checked
    /// variant.
    fn sub(self, rhs: &Matrix) -> Matrix {
        self.sub_matrix(rhs)
            .expect("matrix subtraction shape mismatch")
    }
}

impl Mul for &Matrix {
    type Output = Matrix;

    /// # Panics
    ///
    /// Panics on shape mismatch; use [`Matrix::mul_matrix`] for a checked
    /// variant.
    fn mul(self, rhs: &Matrix) -> Matrix {
        self.mul_matrix(rhs)
            .expect("matrix multiplication shape mismatch")
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>12.6e}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert!(i.is_square());
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
    }

    #[test]
    fn from_rows_validates_raggedness() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn from_rows_rejects_nan() {
        let err = Matrix::from_rows(&[&[1.0, f64::NAN]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert_eq!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty);
    }

    #[test]
    fn from_vec_validates_length() {
        let err = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn multiplication_against_hand_result() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.mul_matrix(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn mul_shape_mismatch_is_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(matches!(
            a.mul_matrix(&b),
            Err(LinalgError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn vector_products_left_and_right() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.mul_vec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        assert_eq!(m.vec_mul(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
        assert!(m.vec_mul(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn row_and_column_views() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.column(0), vec![1.0, 3.0]);
    }

    #[test]
    fn rows_sum_detection() {
        let p = Matrix::from_rows(&[&[0.5, 0.5], &[0.2, 0.8]]).unwrap();
        assert!(p.rows_sum_to(1.0, 1e-12));
        assert!(!p.rows_sum_to(0.0, 1e-12));
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, -4.0]]).unwrap();
        assert_eq!(m.max_abs(), 4.0);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-14);
    }

    #[test]
    fn operators_match_checked_variants() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::identity(2);
        assert_eq!(&a + &b, a.add_matrix(&b).unwrap());
        assert_eq!(&a - &b, a.sub_matrix(&b).unwrap());
        assert_eq!(&a * &b, a.clone());
    }

    #[test]
    fn scale_and_diagonal() {
        let d = Matrix::from_diagonal(&[1.0, 2.0]).scale(3.0);
        assert_eq!(d[(1, 1)], 6.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(1, 1);
        let _ = m[(1, 0)];
    }
}
