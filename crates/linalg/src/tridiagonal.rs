//! Tridiagonal systems — the Thomas algorithm.
//!
//! Birth–death generators are tridiagonal; solving their balance equations
//! with a specialized O(n) elimination instead of dense O(n³) LU matters
//! once chains get long (large buffers, many servers). The `solvers` bench
//! compares this path against GTH and dense LU.

use crate::LinalgError;

/// A tridiagonal matrix stored as three diagonals.
///
/// Row `i` is `(lower[i-1], diag[i], upper[i])`; `lower` and `upper` have
/// length `n - 1`.
///
/// # Examples
///
/// ```
/// use uavail_linalg::Tridiagonal;
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// // [2 1 0; 1 2 1; 0 1 2] x = [4; 8; 8] -> x = [1; 2; 3].
/// let m = Tridiagonal::new(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0])?;
/// let x = m.solve(&[4.0, 8.0, 8.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// assert!((x[2] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    lower: Vec<f64>,
    diag: Vec<f64>,
    upper: Vec<f64>,
}

impl Tridiagonal {
    /// Creates a tridiagonal matrix from its three diagonals.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] when `diag` is empty.
    /// * [`LinalgError::InvalidInput`] when the off-diagonals do not have
    ///   length `diag.len() - 1` or any entry is not finite.
    pub fn new(lower: Vec<f64>, diag: Vec<f64>, upper: Vec<f64>) -> Result<Self, LinalgError> {
        if diag.is_empty() {
            return Err(LinalgError::Empty);
        }
        let n = diag.len();
        if lower.len() != n - 1 || upper.len() != n - 1 {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "off-diagonals must have length {} (got {} and {})",
                    n - 1,
                    lower.len(),
                    upper.len()
                ),
            });
        }
        for v in lower.iter().chain(diag.iter()).chain(upper.iter()) {
            if !v.is_finite() {
                return Err(LinalgError::InvalidInput {
                    reason: "non-finite entry".into(),
                });
            }
        }
        Ok(Tridiagonal { lower, diag, upper })
    }

    /// Dimension of the (square) matrix.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Borrows the three diagonals as `(lower, diag, upper)` — the packing
    /// order [`crate::TridiagonalLanes`] reads when laying a family of
    /// systems out in lanes.
    pub fn diagonals(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.lower, &self.diag, &self.upper)
    }

    /// Solves `A·x = b` with the Thomas algorithm (no pivoting — requires
    /// the matrix to be diagonally dominant or positive definite, which
    /// shifted birth–death balance systems are).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] when `b.len() != self.dim()`.
    /// * [`LinalgError::Singular`] when elimination hits a vanishing pivot.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "tridiagonal_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut c_prime = vec![0.0; n];
        let mut d_prime = vec![0.0; n];
        if self.diag[0].abs() < 1e-300 {
            return Err(LinalgError::Singular { pivot: 0 });
        }
        c_prime[0] = if n > 1 {
            self.upper[0] / self.diag[0]
        } else {
            0.0
        };
        d_prime[0] = b[0] / self.diag[0];
        for i in 1..n {
            let m = self.diag[i] - self.lower[i - 1] * c_prime[i - 1];
            if m.abs() < 1e-300 {
                return Err(LinalgError::Singular { pivot: i });
            }
            if i < n - 1 {
                c_prime[i] = self.upper[i] / m;
            }
            d_prime[i] = (b[i] - self.lower[i - 1] * d_prime[i - 1]) / m;
        }
        let mut x = d_prime;
        for i in (0..n - 1).rev() {
            let next = x[i + 1];
            x[i] -= c_prime[i] * next;
        }
        Ok(x)
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] on length mismatch.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "tridiagonal_mul_vec",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; n];
        for i in 0..n {
            let mut sum = self.diag[i] * x[i];
            if i > 0 {
                sum += self.lower[i - 1] * x[i - 1];
            }
            if i < n - 1 {
                sum += self.upper[i] * x[i + 1];
            }
            out[i] = sum;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Lu, Matrix};

    fn to_dense(t: &Tridiagonal) -> Matrix {
        let n = t.dim();
        let mut m = Matrix::zeros(n, n);
        let e = vec![0.0; n];
        for j in 0..n {
            let mut unit = e.clone();
            unit[j] = 1.0;
            let col = t.mul_vec(&unit).unwrap();
            for i in 0..n {
                m[(i, j)] = col[i];
            }
        }
        m
    }

    #[test]
    fn validation() {
        assert!(Tridiagonal::new(vec![], vec![], vec![]).is_err());
        assert!(Tridiagonal::new(vec![1.0], vec![1.0], vec![]).is_err());
        assert!(Tridiagonal::new(vec![], vec![f64::NAN], vec![]).is_err());
        assert!(Tridiagonal::new(vec![], vec![1.0], vec![]).is_ok());
    }

    #[test]
    fn single_entry() {
        let t = Tridiagonal::new(vec![], vec![4.0], vec![]).unwrap();
        assert_eq!(t.solve(&[8.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn matches_dense_lu() {
        // Diagonally dominant random-ish tridiagonal system.
        let n = 12;
        let lower: Vec<f64> = (0..n - 1).map(|i| -(0.3 + 0.05 * i as f64)).collect();
        let upper: Vec<f64> = (0..n - 1).map(|i| -(0.2 + 0.07 * i as f64)).collect();
        let diag: Vec<f64> = (0..n).map(|i| 2.5 + 0.1 * i as f64).collect();
        let t = Tridiagonal::new(lower, diag, upper).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = t.solve(&b).unwrap();
        let dense = to_dense(&t);
        let x_ref = Lu::new(&dense).unwrap().solve(&b).unwrap();
        for (a, r) in x.iter().zip(&x_ref) {
            assert!((a - r).abs() < 1e-10, "{a} vs {r}");
        }
        // Residual check.
        let ax = t.mul_vec(&x).unwrap();
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-10);
        }
    }

    #[test]
    fn detects_singularity() {
        let t = Tridiagonal::new(vec![1.0], vec![0.0, 1.0], vec![1.0]).unwrap();
        assert!(matches!(
            t.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn shape_checks() {
        let t = Tridiagonal::new(vec![1.0], vec![2.0, 2.0], vec![1.0]).unwrap();
        assert!(t.solve(&[1.0]).is_err());
        assert!(t.mul_vec(&[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn birth_death_hitting_time_system() {
        // Mean hitting time of state 0 for a birth-death chain solves a
        // tridiagonal system: (Q restricted) h = -1.
        // Chain: 3 states {0,1,2}, birth 1.0, death 2.0. From state 2:
        // h2; from 1: h1. Solve [[-(2+1),1],[2,-2]] h = [-1,-1]:
        // -3h1 + 1h2 = -1; 2h1 - 2h2 = -1 => h1 = 0.75, h2 = 1.25.
        let t = Tridiagonal::new(vec![2.0], vec![-3.0, -2.0], vec![1.0]).unwrap();
        let h = t.solve(&[-1.0, -1.0]).unwrap();
        assert!((h[0] - 0.75).abs() < 1e-12);
        assert!((h[1] - 1.25).abs() < 1e-12);
    }
}
