use crate::{LinalgError, Matrix};

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// The decomposition is computed once and can then be reused to solve many
/// right-hand sides, compute the determinant, or form the explicit inverse —
/// exactly the access pattern of Markov-reward solvers that repeatedly solve
/// against the same fundamental matrix.
///
/// # Examples
///
/// ```
/// use uavail_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// assert!((lu.determinant() - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper).
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by the determinant.
    sign: f64,
}

/// Pivot magnitudes below this threshold are treated as singular.
const SINGULARITY_THRESHOLD: f64 = 1e-300;

impl Lu {
    /// Factorizes the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has zero size.
    /// * [`LinalgError::Singular`] if a pivot underflows to zero, meaning the
    ///   matrix is singular to working precision.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut f = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: find the largest |entry| in column k at or
            // below the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = f[(k, k)].abs();
            for r in (k + 1)..n {
                let v = f[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < SINGULARITY_THRESHOLD {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for c in 0..n {
                    let tmp = f[(k, c)];
                    f[(k, c)] = f[(pivot_row, c)];
                    f[(pivot_row, c)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = f[(k, k)];
            for r in (k + 1)..n {
                let m = f[(r, k)] / pivot;
                f[(r, k)] = m;
                if m != 0.0 {
                    for c in (k + 1)..n {
                        let u = f[(k, c)];
                        f[(r, c)] -= m * u;
                    }
                }
            }
        }
        Ok(Lu {
            factors: f,
            perm,
            sign,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·x = b` for `x` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut sum = x[r];
            for c in 0..r {
                sum -= self.factors[(r, c)] * x[c];
            }
            x[r] = sum;
        }
        for r in (0..n).rev() {
            let mut sum = x[r];
            for c in (r + 1)..n {
                sum -= self.factors[(r, c)] * x[c];
            }
            x[r] = sum / self.factors[(r, r)];
        }
        Ok(x)
    }

    /// Solves `xᵀ·A = bᵀ` (equivalently `Aᵀ·x = b`), the orientation used by
    /// stationary-distribution equations `π·Q = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "lu_solve_transposed",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // P·A = L·U  =>  Aᵀ·x = b  <=>  Uᵀ·(Lᵀ·(P·x)) = b.
        let mut y = b.to_vec();
        // Forward substitution with Uᵀ (lower triangular with diagonal).
        for r in 0..n {
            let mut sum = y[r];
            for c in 0..r {
                sum -= self.factors[(c, r)] * y[c];
            }
            y[r] = sum / self.factors[(r, r)];
        }
        // Back substitution with Lᵀ (unit upper triangular).
        for r in (0..n).rev() {
            let mut sum = y[r];
            for c in (r + 1)..n {
                sum -= self.factors[(c, r)] * y[c];
            }
            y[r] = sum;
        }
        // Undo the permutation: y = P·x, so x[perm[i]] = y[i].
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.factors[(i, i)];
        }
        det
    }

    /// Explicit inverse of the original matrix.
    ///
    /// Prefer [`Lu::solve`] when only products with the inverse are needed;
    /// the explicit inverse is provided for fundamental-matrix computations
    /// `N = (I - Q)^{-1}` where all entries are themselves meaningful
    /// (expected visit counts).
    ///
    /// # Errors
    ///
    /// Propagates errors from the per-column solves (none expected for a
    /// successfully constructed factorization).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Ok(inv)
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Propagates factorization and shape errors from [`Lu`].
///
/// # Examples
///
/// ```
/// use uavail_linalg::Matrix;
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let a = Matrix::identity(2);
/// let x = uavail_linalg::solve(&a, &[7.0, 8.0])?;
/// assert_eq!(x, vec![7.0, 8.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Lu::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x).unwrap();
        ax.iter()
            .zip(b)
            .map(|(l, r)| (l - r).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_small_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let b = [1.0, -2.0, 0.0];
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        // Known solution x = (1, -2, -2).
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
        assert!((x[2] + 2.0).abs() < 1e-12);
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = Lu::new(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-14);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((Lu::new(&b).unwrap().determinant() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_matches_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        let diff = prod.sub_matrix(&Matrix::identity(2)).unwrap();
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 4.0, 2.0], &[0.5, 0.0, 5.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_transposed(&b).unwrap();
        let at = a.transpose();
        let x_ref = Lu::new(&at).unwrap().solve(&b).unwrap();
        for (l, r) in x.iter().zip(&x_ref) {
            assert!((l - r).abs() < 1e-12, "{l} vs {r}");
        }
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }

    #[test]
    fn convenience_solve() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let x = super::solve(&a, &[2.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn ill_conditioned_but_solvable() {
        // Rates spanning ~8 orders of magnitude, like availability models.
        let a = Matrix::from_rows(&[&[1e-8, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 2.0];
        let x = super::solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
