use crate::{LinalgError, Matrix};

/// LU decomposition with partial (row) pivoting: `P·A = L·U`.
///
/// The decomposition is computed once and can then be reused to solve many
/// right-hand sides, compute the determinant, or form the explicit inverse —
/// exactly the access pattern of Markov-reward solvers that repeatedly solve
/// against the same fundamental matrix.
///
/// # Examples
///
/// ```
/// use uavail_linalg::{Lu, Matrix};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]])?;
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// assert!((lu.determinant() - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Combined L (strictly lower, unit diagonal implied) and U (upper).
    factors: Matrix,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1.0 or -1.0), used by the determinant.
    sign: f64,
}

/// Pivot magnitudes below this threshold are treated as singular.
const SINGULARITY_THRESHOLD: f64 = 1e-300;

/// Factors the matrix held in `f` in place (combined L/U layout), recording
/// the row permutation in `perm` and returning its sign.
///
/// This is the single factorization kernel shared by [`Lu::new`] and
/// [`LuWorkspace::factor`], so the owned and workspace paths execute the
/// exact same floating-point operations in the same order.
fn factor_in_place(f: &mut Matrix, perm: &mut Vec<usize>) -> Result<f64, LinalgError> {
    let n = f.rows();
    // Injection sites (inert unless `uavail-faultinject` is enabled):
    // a forced singularity exercises callers' typed-error paths, and a
    // perturbed leading pivot silently degrades the factorization so the
    // residual/health checks above this layer have something to catch.
    if n > 0 && uavail_faultinject::fired("linalg.lu.force_singular") {
        return Err(LinalgError::Singular { pivot: 0 });
    }
    if n > 0 && uavail_faultinject::fired("linalg.lu.pivot_perturb") {
        let perturbed = f[(0, 0)] * (1.0 + 1e-3) + 1e-6;
        f[(0, 0)] = perturbed;
    }
    perm.clear();
    perm.extend(0..n);
    let mut sign = 1.0;
    // Smallest pivot magnitude of the factorization — the health layer's
    // early-warning proxy for near-singularity. Tracking it is one f64
    // `min` per column and never branches on recorder state.
    let mut min_pivot = f64::INFINITY;

    for k in 0..n {
        // Partial pivoting: find the largest |entry| in column k at or
        // below the diagonal.
        let mut pivot_row = k;
        let mut pivot_val = f[(k, k)].abs();
        for r in (k + 1)..n {
            let v = f[(r, k)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < SINGULARITY_THRESHOLD {
            return Err(LinalgError::Singular { pivot: k });
        }
        min_pivot = min_pivot.min(pivot_val);
        if pivot_row != k {
            for c in 0..n {
                let tmp = f[(k, c)];
                f[(k, c)] = f[(pivot_row, c)];
                f[(pivot_row, c)] = tmp;
            }
            perm.swap(k, pivot_row);
            sign = -sign;
        }
        let pivot = f[(k, k)];
        for r in (k + 1)..n {
            let m = f[(r, k)] / pivot;
            f[(r, k)] = m;
            if m != 0.0 {
                for c in (k + 1)..n {
                    let u = f[(k, c)];
                    f[(r, c)] -= m * u;
                }
            }
        }
    }
    if n > 0 && uavail_obs::enabled() {
        uavail_obs::health_record("linalg.lu.min_pivot", min_pivot);
    }
    Ok(sign)
}

/// Forward- and back-substitutes `x` (already permuted) through the combined
/// L/U factors, leaving the solution of `A·x = b` in place.
fn substitute_in_place(factors: &Matrix, x: &mut [f64]) {
    let n = factors.rows();
    for r in 1..n {
        let mut sum = x[r];
        for c in 0..r {
            sum -= factors[(r, c)] * x[c];
        }
        x[r] = sum;
    }
    for r in (0..n).rev() {
        let mut sum = x[r];
        for c in (r + 1)..n {
            sum -= factors[(r, c)] * x[c];
        }
        x[r] = sum / factors[(r, r)];
    }
}

/// Substitutes `y` through the transposed factors: on return `y = P·x` where
/// `Aᵀ·x = b` for the `b` initially held in `y`.
fn substitute_transposed_in_place(factors: &Matrix, y: &mut [f64]) {
    let n = factors.rows();
    // Forward substitution with Uᵀ (lower triangular with diagonal).
    for r in 0..n {
        let mut sum = y[r];
        for c in 0..r {
            sum -= factors[(c, r)] * y[c];
        }
        y[r] = sum / factors[(r, r)];
    }
    // Back substitution with Lᵀ (unit upper triangular).
    for r in (0..n).rev() {
        let mut sum = y[r];
        for c in (r + 1)..n {
            sum -= factors[(c, r)] * y[c];
        }
        y[r] = sum;
    }
}

impl Lu {
    /// Factorizes the square matrix `a`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Empty`] if `a` has zero size.
    /// * [`LinalgError::Singular`] if a pivot underflows to zero, meaning the
    ///   matrix is singular to working precision.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        let n = a.rows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut f = a.clone();
        let mut perm = Vec::new();
        let sign = factor_in_place(&mut f, &mut perm)?;
        Ok(Lu {
            factors: f,
            perm,
            sign,
        })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.factors.rows()
    }

    /// Solves `A·x = b` for `x` using the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        substitute_in_place(&self.factors, &mut x);
        Ok(x)
    }

    /// Solves `A·x = b` into the caller-owned vector `x`, reusing its
    /// allocation.
    ///
    /// Performs exactly the same floating-point operations as [`Lu::solve`],
    /// so the results are bit-for-bit identical; the only difference is that
    /// `x` is cleared and refilled instead of freshly allocated.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "lu_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        substitute_in_place(&self.factors, x);
        Ok(())
    }

    /// Solves `xᵀ·A = bᵀ` (equivalently `Aᵀ·x = b`), the orientation used by
    /// stationary-distribution equations `π·Q = 0`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] if `b.len() != self.dim()`.
    pub fn solve_transposed(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::ShapeMismatch {
                operation: "lu_solve_transposed",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        // P·A = L·U  =>  Aᵀ·x = b  <=>  Uᵀ·(Lᵀ·(P·x)) = b.
        let mut y = b.to_vec();
        substitute_transposed_in_place(&self.factors, &mut y);
        // Undo the permutation: y = P·x, so x[perm[i]] = y[i].
        let mut x = vec![0.0; n];
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = y[i];
        }
        Ok(x)
    }

    /// Determinant of the original matrix.
    pub fn determinant(&self) -> f64 {
        let mut det = self.sign;
        for i in 0..self.dim() {
            det *= self.factors[(i, i)];
        }
        det
    }

    /// Explicit inverse of the original matrix.
    ///
    /// Prefer [`Lu::solve`] when only products with the inverse are needed;
    /// the explicit inverse is provided for fundamental-matrix computations
    /// `N = (I - Q)^{-1}` where all entries are themselves meaningful
    /// (expected visit counts).
    ///
    /// # Errors
    ///
    /// Propagates errors from the per-column solves (none expected for a
    /// successfully constructed factorization).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        let mut inv = Matrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let col = self.solve(&e)?;
            e[c] = 0.0;
            for r in 0..n {
                inv[(r, c)] = col[r];
            }
        }
        Ok(inv)
    }
}

/// Convenience one-shot solve of `A·x = b`.
///
/// # Errors
///
/// Propagates factorization and shape errors from [`Lu`].
///
/// # Examples
///
/// ```
/// use uavail_linalg::Matrix;
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let a = Matrix::identity(2);
/// let x = uavail_linalg::solve(&a, &[7.0, 8.0])?;
/// assert_eq!(x, vec![7.0, 8.0]);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let x = Lu::new(a)?.solve(b)?;
    if uavail_obs::enabled() {
        record_solve_health(a, b, &x);
    }
    Ok(x)
}

/// Health gauge for a one-shot solve: the residual `‖A·x − b‖∞`. Only
/// reached while recording is on (the extra matvec never runs on the
/// production path) and purely observational — `x` is returned untouched.
#[cold]
fn record_solve_health(a: &Matrix, b: &[f64], x: &[f64]) {
    let n = a.rows();
    let mut residual = 0.0f64;
    for r in 0..n {
        let mut acc = 0.0;
        for (c, xc) in x.iter().enumerate() {
            acc += a[(r, c)] * xc;
        }
        residual = residual.max((acc - b[r]).abs());
    }
    uavail_obs::health_record("linalg.lu.residual", residual);
}

/// A reusable LU factorization workspace: factor-in-place into caller-owned
/// storage so that sweep loops solving many same-sized systems allocate
/// nothing after warm-up.
///
/// The workspace runs the same kernels as [`Lu`], so every solve is
/// bit-for-bit identical to the owned path.
///
/// # Examples
///
/// ```
/// use uavail_linalg::{LuWorkspace, Matrix};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let mut ws = LuWorkspace::new();
/// let mut x = Vec::new();
/// for scale in [1.0, 2.0, 4.0] {
///     let a = Matrix::from_rows(&[&[2.0 * scale, 1.0], &[1.0, 3.0]])?;
///     ws.factor(&a)?;
///     ws.solve_into(&[3.0, 5.0], &mut x)?;
///     assert!((a.mul_vec(&x)?[0] - 3.0).abs() < 1e-12);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LuWorkspace {
    factors: Matrix,
    perm: Vec<usize>,
    sign: f64,
    /// Scratch for the permuted right-hand side of transposed solves.
    rhs: Vec<f64>,
    factored: bool,
}

impl Default for LuWorkspace {
    fn default() -> Self {
        LuWorkspace::new()
    }
}

impl LuWorkspace {
    /// Creates an empty workspace; storage grows on first use.
    pub fn new() -> Self {
        LuWorkspace {
            factors: Matrix::zeros(0, 0),
            perm: Vec::new(),
            sign: 1.0,
            rhs: Vec::new(),
            factored: false,
        }
    }

    /// Factorizes `a` into the workspace's storage, reusing allocations.
    ///
    /// # Errors
    ///
    /// As for [`Lu::new`]. On error the workspace is left unfactored.
    pub fn factor(&mut self, a: &Matrix) -> Result<(), LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { shape: a.shape() });
        }
        if a.rows() == 0 {
            return Err(LinalgError::Empty);
        }
        self.factored = false;
        self.factors.copy_from(a);
        self.sign = factor_in_place(&mut self.factors, &mut self.perm)?;
        self.factored = true;
        Ok(())
    }

    /// Dimension of the currently factored matrix (0 when unfactored).
    pub fn dim(&self) -> usize {
        if self.factored {
            self.factors.rows()
        } else {
            0
        }
    }

    /// Whether the workspace currently holds a valid factorization.
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Solves `A·x = b` into `x` using the stored factorization.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if no factorization is stored,
    /// [`LinalgError::ShapeMismatch`] if `b.len()` differs from the factored
    /// dimension.
    pub fn solve_into(&self, b: &[f64], x: &mut Vec<f64>) -> Result<(), LinalgError> {
        let n = self.checked_dim(b.len(), "lu_workspace_solve")?;
        x.clear();
        x.extend(self.perm.iter().map(|&p| b[p]));
        debug_assert_eq!(x.len(), n);
        substitute_in_place(&self.factors, x);
        Ok(())
    }

    /// Solves `xᵀ·A = bᵀ` (equivalently `Aᵀ·x = b`) into `x`.
    ///
    /// Takes `&mut self` because the permuted intermediate lives in the
    /// workspace's scratch vector.
    ///
    /// # Errors
    ///
    /// As for [`LuWorkspace::solve_into`].
    pub fn solve_transposed_into(
        &mut self,
        b: &[f64],
        x: &mut Vec<f64>,
    ) -> Result<(), LinalgError> {
        let n = self.checked_dim(b.len(), "lu_workspace_solve_transposed")?;
        self.rhs.clear();
        self.rhs.extend_from_slice(b);
        substitute_transposed_in_place(&self.factors, &mut self.rhs);
        x.clear();
        x.resize(n, 0.0);
        for (i, &p) in self.perm.iter().enumerate() {
            x[p] = self.rhs[i];
        }
        Ok(())
    }

    /// Determinant of the most recently factored matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::InvalidInput`] if no factorization is stored.
    pub fn determinant(&self) -> Result<f64, LinalgError> {
        if !self.factored {
            return Err(LinalgError::InvalidInput {
                reason: "workspace holds no factorization".into(),
            });
        }
        let mut det = self.sign;
        for i in 0..self.factors.rows() {
            det *= self.factors[(i, i)];
        }
        Ok(det)
    }

    fn checked_dim(&self, b_len: usize, operation: &'static str) -> Result<usize, LinalgError> {
        if !self.factored {
            return Err(LinalgError::InvalidInput {
                reason: "workspace holds no factorization".into(),
            });
        }
        let n = self.factors.rows();
        if b_len != n {
            return Err(LinalgError::ShapeMismatch {
                operation,
                left: (n, n),
                right: (b_len, 1),
            });
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.mul_vec(x).unwrap();
        ax.iter()
            .zip(b)
            .map(|(l, r)| (l - r).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn solves_small_system() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let b = [1.0, -2.0, 0.0];
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        // Known solution x = (1, -2, -2).
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
        assert!((x[2] + 2.0).abs() < 1e-12);
        assert!(residual(&a, &x, &b) < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let x = Lu::new(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let lu = Lu::new(&a).unwrap();
        assert!((lu.determinant() + 1.0).abs() < 1e-14);
        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        assert!((Lu::new(&b).unwrap().determinant() - 6.0).abs() < 1e-14);
    }

    #[test]
    fn inverse_matches_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        let diff = prod.sub_matrix(&Matrix::identity(2)).unwrap();
        assert!(diff.max_abs() < 1e-12);
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[3.0, 1.0, 0.0], &[1.0, 4.0, 2.0], &[0.5, 0.0, 5.0]]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let lu = Lu::new(&a).unwrap();
        let x = lu.solve_transposed(&b).unwrap();
        let at = a.transpose();
        let x_ref = Lu::new(&at).unwrap().solve(&b).unwrap();
        for (l, r) in x.iter().zip(&x_ref) {
            assert!((l - r).abs() < 1e-12, "{l} vs {r}");
        }
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&[1.0]).is_err());
        assert!(lu.solve_transposed(&[1.0]).is_err());
    }

    #[test]
    fn convenience_solve() {
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]).unwrap();
        let x = super::solve(&a, &[2.0, 8.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn solve_into_is_bit_identical_to_solve() {
        let a =
            Matrix::from_rows(&[&[3.0, 2.0, -1.0], &[2.0, -2.0, 4.0], &[-1.0, 0.5, -1.0]]).unwrap();
        let b = [1.0, -2.0, 0.25];
        let lu = Lu::new(&a).unwrap();
        let owned = lu.solve(&b).unwrap();
        let mut reused = vec![99.0; 7]; // stale, oversized: must be fully replaced
        lu.solve_into(&b, &mut reused).unwrap();
        assert_eq!(owned.len(), reused.len());
        for (l, r) in owned.iter().zip(&reused) {
            assert_eq!(l.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn workspace_matches_owned_factorization_bit_for_bit() {
        let mut ws = LuWorkspace::new();
        let mut x = Vec::new();
        let mut xt = Vec::new();
        // Reuse one workspace across systems of different sizes and scales.
        for scale in [1.0, 0.5, 1e-6, 3.0e4] {
            let a = Matrix::from_rows(&[
                &[3.0 * scale, 1.0, 0.0],
                &[1.0, 4.0 * scale, 2.0],
                &[0.5, 0.0, 5.0 * scale],
            ])
            .unwrap();
            let b = [1.0, 2.0, 3.0];
            let lu = Lu::new(&a).unwrap();
            ws.factor(&a).unwrap();
            assert!(ws.is_factored());
            assert_eq!(ws.dim(), 3);
            ws.solve_into(&b, &mut x).unwrap();
            for (l, r) in lu.solve(&b).unwrap().iter().zip(&x) {
                assert_eq!(l.to_bits(), r.to_bits());
            }
            ws.solve_transposed_into(&b, &mut xt).unwrap();
            for (l, r) in lu.solve_transposed(&b).unwrap().iter().zip(&xt) {
                assert_eq!(l.to_bits(), r.to_bits());
            }
            assert_eq!(
                ws.determinant().unwrap().to_bits(),
                lu.determinant().to_bits()
            );
        }
        // And across a size change (2x2 after 3x3).
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        ws.factor(&a).unwrap();
        ws.solve_into(&[2.0, 3.0], &mut x).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn workspace_rejects_unfactored_and_bad_shapes() {
        let mut ws = LuWorkspace::new();
        let mut x = Vec::new();
        assert!(matches!(
            ws.solve_into(&[1.0], &mut x),
            Err(LinalgError::InvalidInput { .. })
        ));
        assert!(ws.determinant().is_err());
        assert!(matches!(
            ws.factor(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            ws.factor(&Matrix::zeros(0, 0)),
            Err(LinalgError::Empty)
        ));
        ws.factor(&Matrix::identity(2)).unwrap();
        assert!(matches!(
            ws.solve_into(&[1.0], &mut x),
            Err(LinalgError::ShapeMismatch { .. })
        ));
        // A failed factorization invalidates the previous one.
        let singular = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(ws.factor(&singular).is_err());
        assert!(!ws.is_factored());
    }

    #[test]
    fn ill_conditioned_but_solvable() {
        // Rates spanning ~8 orders of magnitude, like availability models.
        let a = Matrix::from_rows(&[&[1e-8, 1.0], &[1.0, 1.0]]).unwrap();
        let b = [1.0, 2.0];
        let x = super::solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }
}
