use crate::{LinalgError, Matrix};

/// A `(row, col, value)` coordinate entry used to assemble sparse matrices.
///
/// # Examples
///
/// ```
/// use uavail_linalg::Triplet;
/// let t = Triplet::new(0, 1, 2.5);
/// assert_eq!(t.row, 0);
/// assert_eq!(t.value, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Entry value.
    pub value: f64,
}

impl Triplet {
    /// Creates a new coordinate entry.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// Compressed sparse row (CSR) matrix of `f64` values.
///
/// Large Markov generators are sparse — a birth–death availability model has
/// O(n) non-zeros — so iterative solvers in [`crate::iterative`] operate on
/// this format. Duplicate coordinates passed to [`CsrMatrix::from_triplets`]
/// are summed, the usual assembly convention; entries whose merged value is
/// exactly `0.0` are dropped rather than stored, so duplicate coordinates
/// that cancel do not inflate [`CsrMatrix::nnz`] (which would skew any
/// solver-selection heuristic keyed on the stored-entry count).
///
/// For assembly loops that already visit entries in row-major order, the
/// sort-free [`CsrBuilder`] produces the same format in O(nnz).
///
/// # Examples
///
/// ```
/// use uavail_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[Triplet::new(0, 0, 1.0), Triplet::new(0, 1, 2.0), Triplet::new(1, 1, 3.0)],
/// )?;
/// assert_eq!(m.mul_vec(&[1.0, 1.0])?, vec![3.0, 3.0]);
/// assert_eq!(m.nnz(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Index into `col_indices`/`values` where each row starts; length `rows + 1`.
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from coordinate triplets, summing duplicates.
    ///
    /// Duplicates at one coordinate are summed in their insertion order, so
    /// the merged value carries the exact floating-point bits of sequential
    /// accumulation. Entries that are exactly `0.0` after merging —
    /// duplicates that cancel, or explicit zero triplets — are dropped:
    /// they are indistinguishable from absent entries to every consumer
    /// ([`CsrMatrix::get`] returns `0.0` either way) but would inflate
    /// [`CsrMatrix::nnz`] and with it any nnz-keyed solver heuristic.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] when either dimension is zero.
    /// * [`LinalgError::InvalidInput`] when an index is out of bounds or a
    ///   value is not finite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        for (i, t) in triplets.iter().enumerate() {
            if t.row >= rows || t.col >= cols {
                return Err(LinalgError::InvalidInput {
                    reason: format!(
                        "triplet {i} at ({}, {}) out of bounds for {rows}x{cols}",
                        t.row, t.col
                    ),
                });
            }
            if !t.value.is_finite() {
                return Err(LinalgError::InvalidInput {
                    reason: format!("triplet {i} has non-finite value"),
                });
            }
        }
        // Counting sort by row, then sort each row's columns and merge dups.
        let mut sorted: Vec<Triplet> = triplets.to_vec();
        sorted.sort_by_key(|t| (t.row, t.col));

        let mut row_offsets = vec![0usize; rows + 1];
        let mut col_indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        for r in 0..rows {
            while let Some(&t) = iter.peek() {
                if t.row != r {
                    break;
                }
                iter.next();
                // Merge a duplicate coordinate into the entry just pushed,
                // provided that entry belongs to the current row.
                let row_has_entries = values.len() > row_offsets[r];
                if row_has_entries && col_indices.last() == Some(&t.col) {
                    *values.last_mut().expect("non-empty") += t.value;
                } else {
                    col_indices.push(t.col);
                    values.push(t.value);
                }
            }
            row_offsets[r + 1] = values.len();
        }
        // Compact away entries that merged to exactly 0.0 (cancelling
        // duplicates or explicit zeros) so they never count toward nnz.
        let mut kept = 0usize;
        let mut read_from = 0usize;
        for r in 0..rows {
            let hi = row_offsets[r + 1];
            for k in read_from..hi {
                if values[k] != 0.0 {
                    col_indices[kept] = col_indices[k];
                    values[kept] = values[k];
                    kept += 1;
                }
            }
            read_from = hi;
            row_offsets[r + 1] = kept;
        }
        col_indices.truncate(kept);
        values.truncate(kept);
        Ok(CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// Reassembles a CSR matrix from previously extracted raw parts — the
    /// structure-reuse path for repeated assemblies that share a sparsity
    /// pattern (e.g. one generator per sweep point with point-dependent
    /// rates). [`CsrMatrix::raw_parts`] hands out the arrays; callers keep
    /// `row_offsets`/`col_indices` and refill only `values`.
    ///
    /// Every invariant the sort-and-merge path establishes is re-validated
    /// in O(nnz): consistent offsets, strictly increasing in-bounds columns
    /// per row, finite values, and — because stored exact zeros would skew
    /// any nnz-keyed solver heuristic — no `0.0` entries. Callers whose
    /// refilled values may cancel to zero must fall back to
    /// [`CsrMatrix::from_triplets`].
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] when either dimension is zero.
    /// * [`LinalgError::InvalidInput`] when the arrays violate any CSR
    ///   invariant above.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        if row_offsets.len() != rows + 1 || row_offsets[0] != 0 {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "row offsets must have length {} and start at 0 (got length {})",
                    rows + 1,
                    row_offsets.len()
                ),
            });
        }
        if col_indices.len() != values.len() || row_offsets[rows] != values.len() {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "offsets end at {} but {} columns and {} values were supplied",
                    row_offsets[rows],
                    col_indices.len(),
                    values.len()
                ),
            });
        }
        for r in 0..rows {
            let (lo, hi) = (row_offsets[r], row_offsets[r + 1]);
            if lo > hi {
                return Err(LinalgError::InvalidInput {
                    reason: format!("row offsets decrease at row {r}"),
                });
            }
            for k in lo..hi {
                if col_indices[k] >= cols {
                    return Err(LinalgError::InvalidInput {
                        reason: format!(
                            "column {} out of bounds for {rows}x{cols} in row {r}",
                            col_indices[k]
                        ),
                    });
                }
                if k > lo && col_indices[k] <= col_indices[k - 1] {
                    return Err(LinalgError::InvalidInput {
                        reason: format!("columns not strictly increasing in row {r}"),
                    });
                }
                if !values[k].is_finite() {
                    return Err(LinalgError::InvalidInput {
                        reason: format!("non-finite value in row {r}"),
                    });
                }
                if values[k] == 0.0 {
                    return Err(LinalgError::InvalidInput {
                        reason: format!(
                            "explicit zero in row {r}: raw-parts assembly must not store zeros"
                        ),
                    });
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// Borrows the CSR arrays as `(row_offsets, col_indices, values)`, for
    /// callers that cache the sparsity structure across same-shape
    /// assemblies and rebuild with [`CsrMatrix::from_raw_parts`].
    pub fn raw_parts(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_offsets, &self.col_indices, &self.values)
    }

    /// Converts a dense matrix, dropping entries with absolute value below
    /// `drop_tol`.
    pub fn from_dense(m: &Matrix, drop_tol: f64) -> Self {
        let mut row_offsets = vec![0usize; m.rows() + 1];
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m[(r, c)];
                if v.abs() > drop_tol {
                    col_indices.push(c);
                    values.push(v);
                }
            }
            row_offsets[r + 1] = values.len();
        }
        CsrMatrix {
            rows: m.rows(),
            cols: m.cols(),
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Converts back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                out[(r, self.col_indices[k])] += self.values[k];
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the stored entry at `(row, col)`, or `0.0` when absent.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let lo = self.row_offsets[row];
        let hi = self.row_offsets[row + 1];
        match self.col_indices[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over stored entries of row `r` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row index out of bounds");
        let lo = self.row_offsets[r];
        let hi = self.row_offsets[r + 1];
        self.col_indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                operation: "csr_mul_vec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut sum = 0.0;
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                sum += self.values[k] * x[self.col_indices[k]];
            }
            out[r] = sum;
        }
        Ok(out)
    }

    /// Row-vector product `x * self` — the Markov stationary orientation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "csr_vec_mul",
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let a = x[r];
            if a == 0.0 {
                continue;
            }
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                out[self.col_indices[k]] += a * self.values[k];
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self * x` written into `out`, reusing its
    /// allocation — the workspace twin of [`CsrMatrix::mul_vec`], running
    /// the exact same floating-point operations (bit-for-bit identical
    /// results). Intended for iterative solvers that perform one SpMV per
    /// sweep: after the first call no further allocation occurs.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.cols()`.
    pub fn mul_vec_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                operation: "csr_mul_vec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        out.clear();
        out.resize(self.rows, 0.0);
        for r in 0..self.rows {
            let mut sum = 0.0;
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                sum += self.values[k] * x[self.col_indices[k]];
            }
            out[r] = sum;
        }
        Ok(())
    }

    /// Row-vector product `x * self` written into `out`, reusing its
    /// allocation — the workspace twin of [`CsrMatrix::vec_mul`],
    /// bit-for-bit identical.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.rows()`.
    pub fn vec_mul_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<(), LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "csr_vec_mul",
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        out.clear();
        out.resize(self.cols, 0.0);
        for r in 0..self.rows {
            let a = x[r];
            if a == 0.0 {
                continue;
            }
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                out[self.col_indices[k]] += a * self.values[k];
            }
        }
        Ok(())
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut col_indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                let c = self.col_indices[k];
                let dst = next[c];
                col_indices[dst] = r;
                values[dst] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Extracts the diagonal as a vector (zero where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }
}

/// Sort-free CSR assembly for entries produced in row-major order.
///
/// [`CsrMatrix::from_triplets`] accepts arbitrary coordinate order at the
/// cost of an O(nnz log nnz) sort. Generator-assembly loops — uniformization
/// `P = I + Q/Λ`, dense-matrix scans, birth–death chains — already visit
/// entries row by row with increasing columns, so this builder writes the
/// CSR arrays directly in O(nnz) with no intermediate triplet buffer.
///
/// Entries must be pushed in strictly increasing `(row, col)` lexicographic
/// order; exact-zero values are skipped (the same policy as
/// [`CsrMatrix::from_triplets`] after merging).
///
/// # Examples
///
/// ```
/// use uavail_linalg::CsrBuilder;
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let mut b = CsrBuilder::new(2, 2);
/// b.push(0, 0, 1.0)?;
/// b.push(0, 1, 2.0)?;
/// b.push(1, 1, 3.0)?;
/// let m = b.finish()?;
/// assert_eq!(m.nnz(), 3);
/// assert_eq!(m.get(0, 1), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
    /// Row the next entry may land in (rows below are sealed).
    cur_row: usize,
}

impl CsrBuilder {
    /// Creates a builder for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CsrBuilder::with_capacity(rows, cols, 0)
    }

    /// Creates a builder with pre-reserved storage for `nnz` entries.
    pub fn with_capacity(rows: usize, cols: usize, nnz: usize) -> Self {
        let mut row_offsets = Vec::with_capacity(rows + 1);
        row_offsets.push(0);
        CsrBuilder {
            rows,
            cols,
            row_offsets,
            col_indices: Vec::with_capacity(nnz),
            values: Vec::with_capacity(nnz),
            cur_row: 0,
        }
    }

    /// Appends one entry; `(row, col)` must be lexicographically greater
    /// than the previous entry. Exact zeros are skipped.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidInput`] for out-of-bounds indices,
    ///   out-of-order pushes, or non-finite values.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), LinalgError> {
        if row >= self.rows || col >= self.cols {
            return Err(LinalgError::InvalidInput {
                reason: format!(
                    "entry at ({row}, {col}) out of bounds for {}x{}",
                    self.rows, self.cols
                ),
            });
        }
        if !value.is_finite() {
            return Err(LinalgError::InvalidInput {
                reason: format!("entry at ({row}, {col}) has non-finite value"),
            });
        }
        let in_order = row > self.cur_row
            || (row == self.cur_row
                && (self.values.len() == self.row_offsets[self.cur_row]
                    || self.col_indices.last() < Some(&col)));
        if !in_order {
            return Err(LinalgError::InvalidInput {
                reason: format!("entry at ({row}, {col}) pushed out of row-major order"),
            });
        }
        while self.cur_row < row {
            self.row_offsets.push(self.values.len());
            self.cur_row += 1;
        }
        if value != 0.0 {
            self.col_indices.push(col);
            self.values.push(value);
        }
        Ok(())
    }

    /// Number of entries stored so far (zeros skipped at push).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Seals remaining rows and returns the assembled matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Empty`] when either dimension is zero.
    pub fn finish(mut self) -> Result<CsrMatrix, LinalgError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(LinalgError::Empty);
        }
        while self.row_offsets.len() <= self.rows {
            self.row_offsets.push(self.values.len());
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_offsets: self.row_offsets,
            col_indices: self.col_indices,
            values: self.values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 2, 2.0),
                Triplet::new(1, 1, 3.0),
                Triplet::new(2, 0, 4.0),
                Triplet::new(2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn assembly_and_access() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 1.0), Triplet::new(0, 0, 2.5)])
            .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        let err = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 1, 1.0)]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn matvec_left_and_right() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 3.0, 9.0]);
        assert_eq!(m.vec_mul(&[1.0, 1.0, 1.0]).unwrap(), vec![5.0, 3.0, 7.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
        assert!(m.vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(2, 0)], 4.0);
        let back = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(back.to_dense(), d);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn row_entries_iteration() {
        let m = sample();
        let row0: Vec<(usize, f64)> = m.row_entries(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            CsrMatrix::from_triplets(0, 3, &[]),
            Err(LinalgError::Empty)
        ));
    }

    #[test]
    fn cancelling_duplicates_are_dropped_not_stored() {
        // +2.5 and -2.5 at (0, 1) cancel to exactly 0.0: the entry must
        // not survive as a stored explicit zero inflating nnz.
        let m = CsrMatrix::from_triplets(
            2,
            2,
            &[
                Triplet::new(0, 1, 2.5),
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 1, -2.5),
                Triplet::new(1, 1, 4.0),
            ],
        )
        .unwrap();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 1), 4.0);
        // Explicit zero triplets are dropped too.
        let z = CsrMatrix::from_triplets(1, 2, &[Triplet::new(0, 0, 0.0)]).unwrap();
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.get(0, 0), 0.0);
    }

    #[test]
    fn builder_matches_from_triplets() {
        let triplets = [
            Triplet::new(0, 0, 1.0),
            Triplet::new(0, 2, 2.0),
            Triplet::new(1, 1, 3.0),
            Triplet::new(2, 0, 4.0),
            Triplet::new(2, 2, 5.0),
        ];
        let sorted = CsrMatrix::from_triplets(3, 3, &triplets).unwrap();
        let mut b = CsrBuilder::with_capacity(3, 3, triplets.len());
        for t in &triplets {
            b.push(t.row, t.col, t.value).unwrap();
        }
        assert_eq!(b.nnz(), 5);
        assert_eq!(b.finish().unwrap(), sorted);
    }

    #[test]
    fn builder_skips_zeros_and_seals_empty_rows() {
        let mut b = CsrBuilder::new(4, 4);
        b.push(1, 0, 0.0).unwrap(); // skipped
        b.push(1, 3, 7.0).unwrap();
        let m = b.finish().unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(1, 3), 7.0);
        assert_eq!(m.row_entries(0).count(), 0);
        assert_eq!(m.row_entries(3).count(), 0);
    }

    #[test]
    fn builder_rejects_out_of_order_and_bad_input() {
        let mut b = CsrBuilder::new(2, 2);
        b.push(1, 1, 1.0).unwrap();
        assert!(b.push(0, 0, 1.0).is_err()); // earlier row
        assert!(b.push(1, 1, 1.0).is_err()); // duplicate coordinate
        assert!(b.push(1, 0, 1.0).is_err()); // earlier column
        assert!(b.push(2, 0, 1.0).is_err()); // out of bounds
        assert!(b.push(1, 1, f64::NAN).is_err());
        assert!(CsrBuilder::new(0, 2).finish().is_err());
    }

    #[test]
    fn raw_parts_round_trip_is_identical() {
        let m = sample();
        let (ro, ci, va) = m.raw_parts();
        let rebuilt =
            CsrMatrix::from_raw_parts(3, 3, ro.to_vec(), ci.to_vec(), va.to_vec()).unwrap();
        assert_eq!(rebuilt, m);
        // Same structure, fresh values — the structure-cache refill path.
        let scaled: Vec<f64> = va.iter().map(|v| v * 2.0).collect();
        let refilled = CsrMatrix::from_raw_parts(3, 3, ro.to_vec(), ci.to_vec(), scaled).unwrap();
        assert_eq!(refilled.get(0, 2), 4.0);
        assert_eq!(refilled.nnz(), m.nnz());
    }

    #[test]
    fn raw_parts_validation_rejects_broken_invariants() {
        let ok = (vec![0usize, 1, 2], vec![0usize, 1], vec![1.0, 2.0]);
        assert!(CsrMatrix::from_raw_parts(2, 2, ok.0.clone(), ok.1.clone(), ok.2.clone()).is_ok());
        // Zero dimension.
        assert!(matches!(
            CsrMatrix::from_raw_parts(0, 2, vec![0], vec![], vec![]),
            Err(LinalgError::Empty)
        ));
        // Offsets wrong length / wrong start / decreasing / wrong end.
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2], ok.1.clone(), ok.2.clone()).is_err());
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![1, 1, 2], ok.1.clone(), ok.2.clone()).is_err()
        );
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 2, 1], ok.1.clone(), ok.2.clone()).is_err()
        );
        assert!(
            CsrMatrix::from_raw_parts(2, 2, vec![0, 1, 3], ok.1.clone(), ok.2.clone()).is_err()
        );
        // Out-of-bounds column, unsorted columns, duplicate columns.
        assert!(CsrMatrix::from_raw_parts(2, 2, ok.0.clone(), vec![0, 2], ok.2.clone()).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![1, 0], vec![1.0, 2.0]).is_err());
        assert!(CsrMatrix::from_raw_parts(1, 2, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Non-finite and explicit-zero values.
        assert!(
            CsrMatrix::from_raw_parts(2, 2, ok.0.clone(), ok.1.clone(), vec![f64::NAN, 2.0])
                .is_err()
        );
        assert!(
            CsrMatrix::from_raw_parts(2, 2, ok.0.clone(), ok.1.clone(), vec![0.0, 2.0]).is_err()
        );
    }

    #[test]
    fn spmv_workspace_twins_are_bit_identical() {
        let m = sample();
        let x = [0.25, -1.5, 3.0];
        let mut out = vec![9.0; 17]; // stale contents must be replaced
        m.mul_vec_into(&x, &mut out).unwrap();
        assert_eq!(out, m.mul_vec(&x).unwrap());
        m.vec_mul_into(&x, &mut out).unwrap();
        assert_eq!(out, m.vec_mul(&x).unwrap());
        assert!(m.mul_vec_into(&[1.0], &mut out).is_err());
        assert!(m.vec_mul_into(&[1.0], &mut out).is_err());
    }
}
