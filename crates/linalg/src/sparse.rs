use crate::{LinalgError, Matrix};

/// A `(row, col, value)` coordinate entry used to assemble sparse matrices.
///
/// # Examples
///
/// ```
/// use uavail_linalg::Triplet;
/// let t = Triplet::new(0, 1, 2.5);
/// assert_eq!(t.row, 0);
/// assert_eq!(t.value, 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Entry value.
    pub value: f64,
}

impl Triplet {
    /// Creates a new coordinate entry.
    pub fn new(row: usize, col: usize, value: f64) -> Self {
        Triplet { row, col, value }
    }
}

/// Compressed sparse row (CSR) matrix of `f64` values.
///
/// Large Markov generators are sparse — a birth–death availability model has
/// O(n) non-zeros — so iterative solvers in [`crate::iterative`] operate on
/// this format. Duplicate coordinates passed to [`CsrMatrix::from_triplets`]
/// are summed, the usual assembly convention.
///
/// # Examples
///
/// ```
/// use uavail_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(
///     2,
///     2,
///     &[Triplet::new(0, 0, 1.0), Triplet::new(0, 1, 2.0), Triplet::new(1, 1, 3.0)],
/// )?;
/// assert_eq!(m.mul_vec(&[1.0, 1.0])?, vec![3.0, 3.0]);
/// assert_eq!(m.nnz(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Index into `col_indices`/`values` where each row starts; length `rows + 1`.
    row_offsets: Vec<usize>,
    col_indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Assembles a CSR matrix from coordinate triplets, summing duplicates.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] when either dimension is zero.
    /// * [`LinalgError::InvalidInput`] when an index is out of bounds or a
    ///   value is not finite.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, LinalgError> {
        if rows == 0 || cols == 0 {
            return Err(LinalgError::Empty);
        }
        for (i, t) in triplets.iter().enumerate() {
            if t.row >= rows || t.col >= cols {
                return Err(LinalgError::InvalidInput {
                    reason: format!(
                        "triplet {i} at ({}, {}) out of bounds for {rows}x{cols}",
                        t.row, t.col
                    ),
                });
            }
            if !t.value.is_finite() {
                return Err(LinalgError::InvalidInput {
                    reason: format!("triplet {i} has non-finite value"),
                });
            }
        }
        // Counting sort by row, then sort each row's columns and merge dups.
        let mut sorted: Vec<Triplet> = triplets.to_vec();
        sorted.sort_by_key(|t| (t.row, t.col));

        let mut row_offsets = vec![0usize; rows + 1];
        let mut col_indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        let mut iter = sorted.into_iter().peekable();
        for r in 0..rows {
            while let Some(&t) = iter.peek() {
                if t.row != r {
                    break;
                }
                iter.next();
                // Merge a duplicate coordinate into the entry just pushed,
                // provided that entry belongs to the current row.
                let row_has_entries = values.len() > row_offsets[r];
                if row_has_entries && col_indices.last() == Some(&t.col) {
                    *values.last_mut().expect("non-empty") += t.value;
                } else {
                    col_indices.push(t.col);
                    values.push(t.value);
                }
            }
            row_offsets[r + 1] = values.len();
        }
        Ok(CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_indices,
            values,
        })
    }

    /// Converts a dense matrix, dropping entries with absolute value below
    /// `drop_tol`.
    pub fn from_dense(m: &Matrix, drop_tol: f64) -> Self {
        let mut row_offsets = vec![0usize; m.rows() + 1];
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                let v = m[(r, c)];
                if v.abs() > drop_tol {
                    col_indices.push(c);
                    values.push(v);
                }
            }
            row_offsets[r + 1] = values.len();
        }
        CsrMatrix {
            rows: m.rows(),
            cols: m.cols(),
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Converts back to a dense matrix.
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                out[(r, self.col_indices[k])] += self.values[k];
            }
        }
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of explicitly stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the stored entry at `(row, col)`, or `0.0` when absent.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let lo = self.row_offsets[row];
        let hi = self.row_offsets[row + 1];
        match self.col_indices[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Iterates over stored entries of row `r` as `(col, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_entries(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row index out of bounds");
        let lo = self.row_offsets[r];
        let hi = self.row_offsets[r + 1];
        self.col_indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::ShapeMismatch {
                operation: "csr_mul_vec",
                left: self.shape(),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let mut sum = 0.0;
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                sum += self.values[k] * x[self.col_indices[k]];
            }
            out[r] = sum;
        }
        Ok(out)
    }

    /// Row-vector product `x * self` — the Markov stationary orientation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::ShapeMismatch`] when `x.len() != self.rows()`.
    pub fn vec_mul(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.rows {
            return Err(LinalgError::ShapeMismatch {
                operation: "csr_vec_mul",
                left: (1, x.len()),
                right: self.shape(),
            });
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let a = x[r];
            if a == 0.0 {
                continue;
            }
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                out[self.col_indices[k]] += a * self.values[k];
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_offsets = counts.clone();
        let mut col_indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.rows {
            for k in self.row_offsets[r]..self.row_offsets[r + 1] {
                let c = self.col_indices[k];
                let dst = next[c];
                col_indices[dst] = r;
                values[dst] = self.values[k];
                next[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_offsets,
            col_indices,
            values,
        }
    }

    /// Extracts the diagonal as a vector (zero where absent).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                Triplet::new(0, 0, 1.0),
                Triplet::new(0, 2, 2.0),
                Triplet::new(1, 1, 3.0),
                Triplet::new(2, 0, 4.0),
                Triplet::new(2, 2, 5.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn assembly_and_access() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.diagonal(), vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 0, 1.0), Triplet::new(0, 0, 2.5)])
            .unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn out_of_bounds_triplet_rejected() {
        let err = CsrMatrix::from_triplets(1, 1, &[Triplet::new(0, 1, 1.0)]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput { .. }));
    }

    #[test]
    fn matvec_left_and_right() {
        let m = sample();
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]).unwrap(), vec![3.0, 3.0, 9.0]);
        assert_eq!(m.vec_mul(&[1.0, 1.0, 1.0]).unwrap(), vec![5.0, 3.0, 7.0]);
        assert!(m.mul_vec(&[1.0]).is_err());
        assert!(m.vec_mul(&[1.0]).is_err());
    }

    #[test]
    fn dense_roundtrip() {
        let m = sample();
        let d = m.to_dense();
        assert_eq!(d[(2, 0)], 4.0);
        let back = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(back.to_dense(), d);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let m = sample();
        assert_eq!(m.transpose().to_dense(), m.to_dense().transpose());
    }

    #[test]
    fn row_entries_iteration() {
        let m = sample();
        let row0: Vec<(usize, f64)> = m.row_entries(0).collect();
        assert_eq!(row0, vec![(0, 1.0), (2, 2.0)]);
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            CsrMatrix::from_triplets(0, 3, &[]),
            Err(LinalgError::Empty)
        ));
    }
}
