//! Structure-of-arrays batch kernels for families of tridiagonal systems.
//!
//! Birth–death generators are tridiagonal, and a batched sweep evaluates
//! *many* of them with the same dimension — one per grid point in a block.
//! Solving them one [`Tridiagonal`](crate::Tridiagonal) at a time walks the
//! three diagonals once per system; laying the family out as lanes of a
//! structure-of-arrays buffer turns the Thomas recurrence's inner loop into
//! independent, branch-free arithmetic over contiguous lanes that the
//! autovectorizer can lift. No SIMD intrinsics — plain `f64` arithmetic,
//! std-only and portable.
//!
//! Bit-for-bit identity with the scalar path is a hard requirement: lane
//! `l` of [`TridiagonalLanes::solve_all`] performs exactly the
//! floating-point operations of [`Tridiagonal::solve`](crate::Tridiagonal::solve)
//! on lane `l`'s system — same elimination multipliers, same division
//! order, same back-substitution — so every lane matches its scalar twin
//! to the last ulp. The unit tests pin this.

use crate::{LinalgError, Tridiagonal};

/// A family of same-dimension tridiagonal matrices stored lane-major.
///
/// Entry `i` of lane `l`'s diagonal lives at `diag[i * lanes + l]`, and
/// likewise for the off-diagonals, so loops over the family's lanes touch
/// contiguous memory.
///
/// # Examples
///
/// ```
/// use uavail_linalg::{Tridiagonal, TridiagonalLanes};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let a = Tridiagonal::new(vec![1.0, 1.0], vec![2.0, 2.0, 2.0], vec![1.0, 1.0])?;
/// let b = Tridiagonal::new(vec![0.5, 0.5], vec![3.0, 3.0, 3.0], vec![0.25, 0.25])?;
/// let lanes = TridiagonalLanes::from_systems(&[a.clone(), b])?;
/// // Lane-major right-hand sides: lane 0 solves [4, 8, 8].
/// let b_lanes = [4.0, 1.0, 8.0, 1.0, 8.0, 1.0];
/// let x = lanes.solve_all(&b_lanes)?;
/// let x0: Vec<f64> = (0..3).map(|i| x[i * 2]).collect();
/// assert_eq!(x0, a.solve(&[4.0, 8.0, 8.0])?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TridiagonalLanes {
    dim: usize,
    lanes: usize,
    /// `(dim - 1) × lanes`; entry `(i, l)` couples states `i + 1 → i`.
    lower: Vec<f64>,
    /// `dim × lanes`.
    diag: Vec<f64>,
    /// `(dim - 1) × lanes`; entry `(i, l)` couples states `i → i + 1`.
    upper: Vec<f64>,
}

impl TridiagonalLanes {
    /// Packs same-dimension scalar systems into lanes.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] when `systems` is empty.
    /// * [`LinalgError::InvalidInput`] when dimensions differ.
    pub fn from_systems(systems: &[Tridiagonal]) -> Result<Self, LinalgError> {
        let first = systems.first().ok_or(LinalgError::Empty)?;
        let dim = first.dim();
        let lanes = systems.len();
        for (l, s) in systems.iter().enumerate() {
            if s.dim() != dim {
                return Err(LinalgError::InvalidInput {
                    reason: format!("lane {l} has dimension {} but lane 0 has {dim}", s.dim()),
                });
            }
        }
        let mut out = TridiagonalLanes {
            dim,
            lanes,
            lower: vec![0.0; (dim - 1) * lanes],
            diag: vec![0.0; dim * lanes],
            upper: vec![0.0; (dim - 1) * lanes],
        };
        for (l, s) in systems.iter().enumerate() {
            let (lower, diag, upper) = s.diagonals();
            for i in 0..dim {
                out.diag[i * lanes + l] = diag[i];
            }
            for i in 0..dim - 1 {
                out.lower[i * lanes + l] = lower[i];
                out.upper[i * lanes + l] = upper[i];
            }
        }
        Ok(out)
    }

    /// Builds the birth–death generator family: lane `l` is the CTMC
    /// generator `Q` of the chain with rates `rates[l] = (births, deaths)`
    /// on states `0..=births.len()` — `Q[i][i+1] = births[i]`,
    /// `Q[i+1][i] = deaths[i]`, rows summing to zero.
    ///
    /// The diagonal assembly `-(birth + death)` runs lane-innermost over
    /// the structure-of-arrays buffer, manually unrolled by four.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::Empty`] when `rates` is empty or a chain has no
    ///   levels.
    /// * [`LinalgError::InvalidInput`] when chains disagree on the level
    ///   count, birth and death vectors differ in length, or any rate is
    ///   not finite.
    pub fn from_birth_death_rates(rates: &[(&[f64], &[f64])]) -> Result<Self, LinalgError> {
        let (first_births, _) = rates.first().ok_or(LinalgError::Empty)?;
        let levels = first_births.len();
        if levels == 0 {
            return Err(LinalgError::Empty);
        }
        for (l, (births, deaths)) in rates.iter().enumerate() {
            if births.len() != levels || deaths.len() != levels {
                return Err(LinalgError::InvalidInput {
                    reason: format!(
                        "lane {l} has {} births and {} deaths but lane 0 has {levels} levels",
                        births.len(),
                        deaths.len()
                    ),
                });
            }
            if births.iter().chain(deaths.iter()).any(|r| !r.is_finite()) {
                return Err(LinalgError::InvalidInput {
                    reason: format!("lane {l} has a non-finite rate"),
                });
            }
        }
        let dim = levels + 1;
        let lanes = rates.len();
        let mut lower = vec![0.0; levels * lanes];
        let mut diag = vec![0.0; dim * lanes];
        let mut upper = vec![0.0; levels * lanes];
        for (l, (births, deaths)) in rates.iter().enumerate() {
            for i in 0..levels {
                upper[i * lanes + l] = births[i];
                lower[i * lanes + l] = deaths[i];
            }
        }
        // Diagonal rows: -(outflow) per state, lane-innermost and unrolled
        // by four. Each lane is independent, so the unroll changes
        // scheduling, never values.
        for i in 0..dim {
            let row = &mut diag[i * lanes..(i + 1) * lanes];
            let up = if i < levels {
                Some(&upper[i * lanes..(i + 1) * lanes])
            } else {
                None
            };
            let down = if i > 0 {
                Some(&lower[(i - 1) * lanes..i * lanes])
            } else {
                None
            };
            let mut lane = 0;
            macro_rules! fill {
                ($l:expr) => {{
                    let out_up = up.map_or(0.0, |u| u[$l]);
                    let out_down = down.map_or(0.0, |d| d[$l]);
                    row[$l] = -(out_up + out_down);
                }};
            }
            while lane + 4 <= lanes {
                fill!(lane);
                fill!(lane + 1);
                fill!(lane + 2);
                fill!(lane + 3);
                lane += 4;
            }
            while lane < lanes {
                fill!(lane);
                lane += 1;
            }
        }
        Ok(TridiagonalLanes {
            dim,
            lanes,
            lower,
            diag,
            upper,
        })
    }

    /// Dimension of each (square) member.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of lanes in the family.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Extracts lane `l` as a scalar [`Tridiagonal`], for cross-validation
    /// and interop.
    ///
    /// # Panics
    ///
    /// When `l >= self.lanes()`.
    pub fn extract_lane(&self, l: usize) -> Tridiagonal {
        assert!(l < self.lanes, "lane {l} outside family of {}", self.lanes);
        let lower: Vec<f64> = (0..self.dim - 1)
            .map(|i| self.lower[i * self.lanes + l])
            .collect();
        let diag: Vec<f64> = (0..self.dim)
            .map(|i| self.diag[i * self.lanes + l])
            .collect();
        let upper: Vec<f64> = (0..self.dim - 1)
            .map(|i| self.upper[i * self.lanes + l])
            .collect();
        Tridiagonal::new(lower, diag, upper).expect("lane diagonals are well-formed")
    }

    /// Batched matrix–vector product: lane `l` of `out` is `A_l · x_l`,
    /// with `x` and `out` lane-major (`x[i * lanes + l]` is entry `i` of
    /// lane `l`'s vector). Per lane bit-identical to
    /// [`Tridiagonal::mul_vec`](crate::Tridiagonal::mul_vec).
    ///
    /// # Errors
    ///
    /// [`LinalgError::ShapeMismatch`] when `x.len() != dim * lanes`.
    pub fn mul_vec_all(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (n, w) = (self.dim, self.lanes);
        if x.len() != n * w {
            return Err(LinalgError::ShapeMismatch {
                operation: "tridiagonal_lanes_mul_vec",
                left: (n, n),
                right: (x.len(), 1),
            });
        }
        let mut out = vec![0.0; n * w];
        for i in 0..n {
            let row = &mut out[i * w..(i + 1) * w];
            let mut lane = 0;
            // Scalar order: diag term, then lower, then upper.
            macro_rules! mv {
                ($l:expr) => {{
                    let mut sum = self.diag[i * w + $l] * x[i * w + $l];
                    if i > 0 {
                        sum += self.lower[(i - 1) * w + $l] * x[(i - 1) * w + $l];
                    }
                    if i < n - 1 {
                        sum += self.upper[i * w + $l] * x[(i + 1) * w + $l];
                    }
                    row[$l] = sum;
                }};
            }
            while lane + 4 <= w {
                mv!(lane);
                mv!(lane + 1);
                mv!(lane + 2);
                mv!(lane + 3);
                lane += 4;
            }
            while lane < w {
                mv!(lane);
                lane += 1;
            }
        }
        Ok(out)
    }

    /// Batched Thomas solve: lane `l` of the result solves
    /// `A_l · x_l = b_l`, with `b` and the result lane-major. Per lane
    /// bit-identical to [`Tridiagonal::solve`](crate::Tridiagonal::solve):
    /// the elimination walks states outermost and lanes innermost, so each
    /// lane performs the scalar algorithm's operations in the scalar
    /// algorithm's order.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::ShapeMismatch`] when `b.len() != dim * lanes`.
    /// * [`LinalgError::Singular`] when any lane hits a vanishing pivot;
    ///   `pivot` is the failing *state* index of the first singular lane in
    ///   (state, lane) scan order, matching the index the scalar solve
    ///   reports for that lane.
    pub fn solve_all(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (n, w) = (self.dim, self.lanes);
        if b.len() != n * w {
            return Err(LinalgError::ShapeMismatch {
                operation: "tridiagonal_lanes_solve",
                left: (n, n),
                right: (b.len(), 1),
            });
        }
        let mut c_prime = vec![0.0; n * w];
        let mut d_prime = vec![0.0; n * w];
        // Forward elimination, state 0. Pivot failures are only *recorded*
        // here (first failing state per the (state, lane) scan) and
        // reported after the sweep: the lanes are independent, so a bad
        // pivot in one lane cannot corrupt another, and keeping the hot
        // loop check-light leaves it vectorizable.
        let mut singular: Option<usize> = None;
        for l in 0..w {
            let d0 = self.diag[l];
            if d0.abs() < 1e-300 && singular.is_none() {
                singular = Some(0);
            }
            c_prime[l] = if n > 1 { self.upper[l] / d0 } else { 0.0 };
            d_prime[l] = b[l] / d0;
        }
        for i in 1..n {
            let mut lane = 0;
            macro_rules! elim {
                ($l:expr) => {{
                    let m = self.diag[i * w + $l]
                        - self.lower[(i - 1) * w + $l] * c_prime[(i - 1) * w + $l];
                    if m.abs() < 1e-300 && singular.is_none() {
                        singular = Some(i);
                    }
                    if i < n - 1 {
                        c_prime[i * w + $l] = self.upper[i * w + $l] / m;
                    }
                    d_prime[i * w + $l] = (b[i * w + $l]
                        - self.lower[(i - 1) * w + $l] * d_prime[(i - 1) * w + $l])
                        / m;
                }};
            }
            while lane + 4 <= w {
                elim!(lane);
                elim!(lane + 1);
                elim!(lane + 2);
                elim!(lane + 3);
                lane += 4;
            }
            while lane < w {
                elim!(lane);
                lane += 1;
            }
        }
        if let Some(pivot) = singular {
            return Err(LinalgError::Singular { pivot });
        }
        // Back substitution.
        let mut x = d_prime;
        for i in (0..n - 1).rev() {
            let mut lane = 0;
            macro_rules! back {
                ($l:expr) => {{
                    let next = x[(i + 1) * w + $l];
                    x[i * w + $l] -= c_prime[i * w + $l] * next;
                }};
            }
            while lane + 4 <= w {
                back!(lane);
                back!(lane + 1);
                back!(lane + 2);
                back!(lane + 3);
                lane += 4;
            }
            while lane < w {
                back!(lane);
                lane += 1;
            }
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> Vec<Tridiagonal> {
        (0..5)
            .map(|l| {
                let s = l as f64;
                let n = 9;
                let lower: Vec<f64> = (0..n - 1).map(|i| -(0.3 + 0.05 * (i as f64 + s))).collect();
                let upper: Vec<f64> = (0..n - 1).map(|i| -(0.2 + 0.07 * (i as f64 + s))).collect();
                let diag: Vec<f64> = (0..n).map(|i| 2.5 + 0.1 * (i as f64 + s)).collect();
                Tridiagonal::new(lower, diag, upper).unwrap()
            })
            .collect()
    }

    fn lane_major(vectors: &[Vec<f64>]) -> Vec<f64> {
        let dim = vectors[0].len();
        let lanes = vectors.len();
        let mut out = vec![0.0; dim * lanes];
        for (l, v) in vectors.iter().enumerate() {
            for (i, &e) in v.iter().enumerate() {
                out[i * lanes + l] = e;
            }
        }
        out
    }

    #[test]
    fn every_lane_solves_bit_identically_to_the_scalar_thomas() {
        let systems = family();
        let lanes = TridiagonalLanes::from_systems(&systems).unwrap();
        let rhs: Vec<Vec<f64>> = (0..systems.len())
            .map(|l| (0..9).map(|i| ((i + l) as f64).sin()).collect())
            .collect();
        let x = lanes.solve_all(&lane_major(&rhs)).unwrap();
        let y = lanes.mul_vec_all(&lane_major(&rhs)).unwrap();
        for (l, s) in systems.iter().enumerate() {
            let x_ref = s.solve(&rhs[l]).unwrap();
            let y_ref = s.mul_vec(&rhs[l]).unwrap();
            for i in 0..9 {
                assert_eq!(
                    x[i * systems.len() + l].to_bits(),
                    x_ref[i].to_bits(),
                    "solve lane {l} entry {i}"
                );
                assert_eq!(
                    y[i * systems.len() + l].to_bits(),
                    y_ref[i].to_bits(),
                    "mul_vec lane {l} entry {i}"
                );
            }
        }
    }

    #[test]
    fn lane_counts_off_the_unroll_boundary() {
        // 1, 2, 3, 4, 5, 7, 8 lanes: exercises both the unrolled body and
        // the remainder loop.
        for lanes in [1usize, 2, 3, 4, 5, 7, 8] {
            let systems: Vec<Tridiagonal> = family().into_iter().cycle().take(lanes).collect();
            let batch = TridiagonalLanes::from_systems(&systems).unwrap();
            let rhs: Vec<Vec<f64>> = (0..lanes)
                .map(|l| (0..9).map(|i| 1.0 + (i * (l + 1)) as f64).collect())
                .collect();
            let x = batch.solve_all(&lane_major(&rhs)).unwrap();
            for (l, s) in systems.iter().enumerate() {
                let x_ref = s.solve(&rhs[l]).unwrap();
                for i in 0..9 {
                    assert_eq!(x[i * lanes + l].to_bits(), x_ref[i].to_bits());
                }
            }
        }
    }

    #[test]
    fn birth_death_generator_lanes_match_scalar_diagonals() {
        let rates: Vec<(Vec<f64>, Vec<f64>)> = vec![
            (vec![1.0, 1.0, 1.0], vec![0.1, 0.2, 0.3]),
            (vec![2.0, 0.5, 4.0], vec![1.5, 2.5, 3.5]),
            (vec![1e4, 1e4, 1e4], vec![1e-4, 2e-4, 3e-4]),
        ];
        let refs: Vec<(&[f64], &[f64])> = rates.iter().map(|(b, d)| (&b[..], &d[..])).collect();
        let lanes = TridiagonalLanes::from_birth_death_rates(&refs).unwrap();
        assert_eq!(lanes.dim(), 4);
        assert_eq!(lanes.lanes(), 3);
        for (l, (births, deaths)) in rates.iter().enumerate() {
            let t = lanes.extract_lane(l);
            let (lower, diag, upper) = t.diagonals();
            assert_eq!(lower, &deaths[..]);
            assert_eq!(upper, &births[..]);
            // Diagonal is -(outflow), with 0.0 standing in for the missing
            // birth at the top and death at the bottom.
            for (i, d) in diag.iter().enumerate() {
                let up = if i < births.len() { births[i] } else { 0.0 };
                let down = if i > 0 { deaths[i - 1] } else { 0.0 };
                assert_eq!(d.to_bits(), (-(up + down)).to_bits(), "lane {l} row {i}");
            }
        }
    }

    #[test]
    fn shape_and_validation_errors() {
        assert!(matches!(
            TridiagonalLanes::from_systems(&[]),
            Err(LinalgError::Empty)
        ));
        let a = Tridiagonal::new(vec![1.0], vec![2.0, 2.0], vec![1.0]).unwrap();
        let b = Tridiagonal::new(vec![], vec![2.0], vec![]).unwrap();
        assert!(TridiagonalLanes::from_systems(&[a.clone(), b]).is_err());
        let lanes = TridiagonalLanes::from_systems(&[a]).unwrap();
        assert!(lanes.solve_all(&[1.0]).is_err());
        assert!(lanes.mul_vec_all(&[1.0, 2.0, 3.0]).is_err());
        assert!(matches!(
            TridiagonalLanes::from_birth_death_rates(&[]),
            Err(LinalgError::Empty)
        ));
        assert!(TridiagonalLanes::from_birth_death_rates(&[(&[], &[])]).is_err());
        assert!(TridiagonalLanes::from_birth_death_rates(&[(&[1.0], &[1.0, 2.0])]).is_err());
        assert!(TridiagonalLanes::from_birth_death_rates(&[(&[f64::NAN], &[1.0])]).is_err());
    }

    #[test]
    fn singular_lane_reports_scalar_pivot_index() {
        let good = Tridiagonal::new(vec![1.0], vec![2.0, 2.0], vec![1.0]).unwrap();
        let bad = Tridiagonal::new(vec![1.0], vec![0.0, 1.0], vec![1.0]).unwrap();
        let lanes = TridiagonalLanes::from_systems(&[good, bad]).unwrap();
        match lanes.solve_all(&[1.0, 1.0, 1.0, 1.0]) {
            Err(LinalgError::Singular { pivot }) => assert_eq!(pivot, 0),
            other => panic!("expected singular, got {other:?}"),
        }
    }

    #[test]
    fn single_state_family() {
        let t = Tridiagonal::new(vec![], vec![4.0], vec![]).unwrap();
        let lanes = TridiagonalLanes::from_systems(&[t.clone(), t]).unwrap();
        let x = lanes.solve_all(&[8.0, 12.0]).unwrap();
        assert_eq!(x, vec![2.0, 3.0]);
    }
}
