//! Iterative solvers: Jacobi, Gauss–Seidel, SOR for `A·x = b`, power
//! iteration for dominant-eigenvector problems (`x ← x·P` for stochastic
//! `P`), and stationary sweeps ([`stationary_jacobi`],
//! [`stationary_gauss_seidel`]) solving `π·Q = 0` for a CTMC generator
//! supplied as `Qᵀ` in CSR form.
//!
//! These are the sparse counterparts to the dense [`crate::Lu`] path. For the
//! moderately sized, diagonally structured systems produced by availability
//! models they converge quickly and avoid fill-in entirely.

use crate::vector::{max_abs_diff, normalize_probability};
use crate::{CsrMatrix, LinalgError, DEFAULT_MAX_ITERATIONS, DEFAULT_TOLERANCE};

/// Options controlling an iterative solve.
///
/// # Examples
///
/// ```
/// use uavail_linalg::iterative::IterOptions;
/// let opts = IterOptions::new().tolerance(1e-10).max_iterations(5_000);
/// assert_eq!(opts.tolerance_value(), 1e-10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterOptions {
    tolerance: f64,
    max_iterations: usize,
    /// Relaxation factor for SOR; 1.0 degenerates to Gauss–Seidel.
    relaxation: f64,
}

impl IterOptions {
    /// Creates options with the crate defaults
    /// ([`DEFAULT_TOLERANCE`], [`DEFAULT_MAX_ITERATIONS`], relaxation 1.0).
    pub fn new() -> Self {
        IterOptions {
            tolerance: DEFAULT_TOLERANCE,
            max_iterations: DEFAULT_MAX_ITERATIONS,
            relaxation: 1.0,
        }
    }

    /// Sets the convergence tolerance (max-norm of successive differences).
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not strictly positive and finite.
    pub fn tolerance(mut self, tol: f64) -> Self {
        assert!(tol.is_finite() && tol > 0.0, "tolerance must be positive");
        self.tolerance = tol;
        self
    }

    /// Sets the iteration cap.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = n;
        self
    }

    /// Sets the SOR relaxation factor `ω ∈ (0, 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `omega` is outside `(0, 2)`.
    pub fn relaxation(mut self, omega: f64) -> Self {
        assert!(
            omega > 0.0 && omega < 2.0,
            "SOR relaxation must lie in (0, 2)"
        );
        self.relaxation = omega;
        self
    }

    /// Returns the configured tolerance.
    pub fn tolerance_value(&self) -> f64 {
        self.tolerance
    }

    /// Returns the configured iteration cap.
    pub fn max_iterations_value(&self) -> usize {
        self.max_iterations
    }

    /// Returns the configured relaxation factor.
    pub fn relaxation_value(&self) -> f64 {
        self.relaxation
    }
}

impl Default for IterOptions {
    fn default() -> Self {
        IterOptions::new()
    }
}

/// Outcome of a converged iterative solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSolution {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final max-norm difference between successive iterates.
    pub residual: f64,
}

fn check_system(a: &CsrMatrix, b: &[f64]) -> Result<(), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare { shape: a.shape() });
    }
    if b.len() != a.rows() {
        return Err(LinalgError::ShapeMismatch {
            operation: "iterative_solve",
            left: a.shape(),
            right: (b.len(), 1),
        });
    }
    Ok(())
}

/// Solves `A·x = b` with Jacobi iteration.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::ShapeMismatch`] for bad
///   shapes.
/// * [`LinalgError::Singular`] when a diagonal entry is zero.
/// * [`LinalgError::NotConverged`] if the tolerance is not met within the
///   iteration cap (Jacobi requires diagonal dominance to be guaranteed to
///   converge).
///
/// # Examples
///
/// ```
/// use uavail_linalg::{CsrMatrix, Matrix};
/// use uavail_linalg::iterative::{jacobi, IterOptions};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let a = CsrMatrix::from_dense(&Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?, 0.0);
/// let sol = jacobi(&a, &[1.0, 2.0], IterOptions::new())?;
/// assert!((4.0 * sol.x[0] + sol.x[1] - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn jacobi(a: &CsrMatrix, b: &[f64], opts: IterOptions) -> Result<IterSolution, LinalgError> {
    check_system(a, b)?;
    let n = a.rows();
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0) {
        return Err(LinalgError::Singular { pivot: i });
    }
    let mut x = vec![0.0; n];
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        for r in 0..n {
            let mut sum = b[r];
            for (c, v) in a.row_entries(r) {
                if c != r {
                    sum -= v * x[c];
                }
            }
            next[r] = sum / diag[r];
        }
        residual = max_abs_diff(&x, &next);
        std::mem::swap(&mut x, &mut next);
        if residual <= opts.tolerance {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: opts.max_iterations,
        residual,
        tolerance: opts.tolerance,
    })
}

/// Solves `A·x = b` with Gauss–Seidel (SOR when
/// [`IterOptions::relaxation`] ≠ 1).
///
/// # Errors
///
/// Same contract as [`jacobi`].
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    opts: IterOptions,
) -> Result<IterSolution, LinalgError> {
    check_system(a, b)?;
    let n = a.rows();
    let diag = a.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0) {
        return Err(LinalgError::Singular { pivot: i });
    }
    let omega = opts.relaxation;
    let mut x = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        let mut max_delta = 0.0f64;
        for r in 0..n {
            let mut sum = b[r];
            for (c, v) in a.row_entries(r) {
                if c != r {
                    sum -= v * x[c];
                }
            }
            let new = (1.0 - omega) * x[r] + omega * sum / diag[r];
            max_delta = max_delta.max((new - x[r]).abs());
            x[r] = new;
        }
        residual = max_delta;
        if residual <= opts.tolerance {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: opts.max_iterations,
        residual,
        tolerance: opts.tolerance,
    })
}

/// Power iteration for the stationary row-vector of a stochastic matrix:
/// iterates `x ← x·P` with L1 normalization until the iterates stop moving.
///
/// The caller is responsible for `P` being row-stochastic and the chain being
/// ergodic (irreducible + aperiodic); otherwise the iteration may oscillate
/// and report [`LinalgError::NotConverged`].
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for a non-square matrix.
/// * [`LinalgError::NotConverged`] when the cap is reached.
///
/// # Examples
///
/// ```
/// use uavail_linalg::{CsrMatrix, Matrix};
/// use uavail_linalg::iterative::{power_stationary, IterOptions};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let p = CsrMatrix::from_dense(
///     &Matrix::from_rows(&[&[0.9, 0.1], &[0.5, 0.5]])?, 0.0);
/// let sol = power_stationary(&p, IterOptions::new().tolerance(1e-14))?;
/// assert!((sol.x[0] - 5.0 / 6.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn power_stationary(p: &CsrMatrix, opts: IterOptions) -> Result<IterSolution, LinalgError> {
    if p.rows() != p.cols() {
        return Err(LinalgError::NotSquare { shape: p.shape() });
    }
    let n = p.rows();
    if n == 0 {
        return Err(LinalgError::Empty);
    }
    let mut x = vec![1.0 / n as f64; n];
    let mut next = Vec::with_capacity(n);
    let mut residual = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        p.vec_mul_into(&x, &mut next)?;
        normalize_probability(&mut next).map_err(|_| LinalgError::InvalidInput {
            reason: "matrix is not substochastic-compatible: iterate sum vanished".into(),
        })?;
        residual = max_abs_diff(&x, &next);
        std::mem::swap(&mut x, &mut next);
        if residual <= opts.tolerance {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: opts.max_iterations,
        residual,
        tolerance: opts.tolerance,
    })
}

/// Shape/diagonal validation shared by the stationary sweeps; returns the
/// diagonal of `Qᵀ` (the per-state exit rates, negated).
fn check_stationary(qt: &CsrMatrix) -> Result<Vec<f64>, LinalgError> {
    if qt.rows() != qt.cols() {
        return Err(LinalgError::NotSquare { shape: qt.shape() });
    }
    if qt.rows() == 0 {
        return Err(LinalgError::Empty);
    }
    let diag = qt.diagonal();
    if let Some(i) = diag.iter().position(|&d| d == 0.0) {
        // A zero diagonal means state `i` is absorbing; the stationary
        // sweeps assume an irreducible generator.
        return Err(LinalgError::Singular { pivot: i });
    }
    Ok(diag)
}

/// Jacobi sweep for the stationary distribution of a CTMC generator:
/// solves `π·Q = 0`, `Σπ = 1` given the **transposed** generator `Qᵀ` in
/// CSR form (row `i` of `qt` holds the rates *into* state `i`).
///
/// Each sweep computes `π'ᵢ = (1-ω)·πᵢ + ω·(Σ_{j≠i} πⱼ·qⱼᵢ) / (−qᵢᵢ)` and
/// then renormalizes to unit L1 mass, so stiff chains whose stationary mass
/// spans hundreds of orders of magnitude neither overflow nor drift.
///
/// The undamped sweep (`ω = 1`) is power iteration on a similarity
/// transform of the embedded jump chain, so a *periodic* jump chain (e.g. a
/// 2-state chain with equal rates) oscillates forever. Set
/// [`IterOptions::relaxation`] below 1 to damp it: any `ω ∈ (0, 1)` mixes
/// in the identity and restores aperiodicity, guaranteeing convergence for
/// irreducible generators.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] / [`LinalgError::Empty`] for bad shapes.
/// * [`LinalgError::Singular`] when a diagonal entry of `Qᵀ` is zero
///   (an absorbing state — the chain is not irreducible).
/// * [`LinalgError::NotConverged`] when the cap is reached.
///
/// # Examples
///
/// ```
/// use uavail_linalg::{CsrMatrix, Matrix};
/// use uavail_linalg::iterative::{stationary_jacobi, IterOptions};
///
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// // Qᵀ for a 2-state chain with rates 1 (up→down) and 3 (down→up).
/// let qt = CsrMatrix::from_dense(
///     &Matrix::from_rows(&[&[-1.0, 3.0], &[1.0, -3.0]])?, 0.0);
/// let sol = stationary_jacobi(&qt, IterOptions::new().relaxation(0.5))?;
/// assert!((sol.x[0] - 0.75).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn stationary_jacobi(qt: &CsrMatrix, opts: IterOptions) -> Result<IterSolution, LinalgError> {
    let diag = check_stationary(qt)?;
    let n = qt.rows();
    let omega = opts.relaxation;
    let mut x = vec![1.0 / n as f64; n];
    let mut next = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        for (i, slot) in next.iter_mut().enumerate() {
            let mut sum = 0.0;
            for (j, v) in qt.row_entries(i) {
                if j != i {
                    sum += v * x[j];
                }
            }
            *slot = (1.0 - omega) * x[i] + omega * sum / (-diag[i]);
        }
        normalize_probability(&mut next).map_err(|_| LinalgError::InvalidInput {
            reason: "stationary iterate lost all probability mass".into(),
        })?;
        residual = max_abs_diff(&x, &next);
        std::mem::swap(&mut x, &mut next);
        if residual <= opts.tolerance {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: opts.max_iterations,
        residual,
        tolerance: opts.tolerance,
    })
}

/// Gauss–Seidel sweep for the stationary distribution of a CTMC generator:
/// same contract as [`stationary_jacobi`] (pass `Qᵀ` in CSR form), but each
/// state update sees the already-updated values of earlier states.
///
/// The in-place sweep propagates probability mass across the whole state
/// space in a single pass, which is decisive on long birth–death chains:
/// Jacobi and power iteration move mass one transition per sweep, so a
/// 10⁵-state farm chain needs ~10⁵ sweeps before mass even reaches the far
/// end, while Gauss–Seidel converges in a handful. The sweep is also
/// immune to jump-chain periodicity, so no damping is required (though
/// [`IterOptions::relaxation`] still applies as plain SOR).
///
/// # Errors
///
/// Same contract as [`stationary_jacobi`].
pub fn stationary_gauss_seidel(
    qt: &CsrMatrix,
    opts: IterOptions,
) -> Result<IterSolution, LinalgError> {
    let diag = check_stationary(qt)?;
    let n = qt.rows();
    let omega = opts.relaxation;
    let mut x = vec![1.0 / n as f64; n];
    let mut prev = vec![0.0; n];
    let mut residual = f64::INFINITY;
    for it in 1..=opts.max_iterations {
        prev.copy_from_slice(&x);
        for i in 0..n {
            let mut sum = 0.0;
            for (j, v) in qt.row_entries(i) {
                if j != i {
                    sum += v * x[j];
                }
            }
            x[i] = (1.0 - omega) * x[i] + omega * sum / (-diag[i]);
        }
        normalize_probability(&mut x).map_err(|_| LinalgError::InvalidInput {
            reason: "stationary iterate lost all probability mass".into(),
        })?;
        residual = max_abs_diff(&prev, &x);
        if residual <= opts.tolerance {
            return Ok(IterSolution {
                x,
                iterations: it,
                residual,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: opts.max_iterations,
        residual,
        tolerance: opts.tolerance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn diag_dominant() -> CsrMatrix {
        CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[10.0, -1.0, 2.0], &[-1.0, 11.0, -1.0], &[2.0, -1.0, 10.0]])
                .unwrap(),
            0.0,
        )
    }

    #[test]
    fn jacobi_converges_on_diagonally_dominant() {
        let a = diag_dominant();
        let b = [6.0, 25.0, -11.0];
        let sol = jacobi(&a, &b, IterOptions::new().tolerance(1e-12)).unwrap();
        let ax = a.mul_vec(&sol.x).unwrap();
        assert!(max_abs_diff(&ax, &b) < 1e-9);
    }

    #[test]
    fn gauss_seidel_converges_faster_than_jacobi() {
        let a = diag_dominant();
        let b = [6.0, 25.0, -11.0];
        let opts = IterOptions::new().tolerance(1e-12);
        let j = jacobi(&a, &b, opts).unwrap();
        let gs = gauss_seidel(&a, &b, opts).unwrap();
        assert!(gs.iterations <= j.iterations);
    }

    #[test]
    fn sor_with_relaxation_converges() {
        let a = diag_dominant();
        let b = [6.0, 25.0, -11.0];
        let sol = gauss_seidel(&a, &b, IterOptions::new().relaxation(1.1)).unwrap();
        let ax = a.mul_vec(&sol.x).unwrap();
        assert!(max_abs_diff(&ax, &b) < 1e-9);
    }

    #[test]
    fn zero_diagonal_is_singular_error() {
        let a = CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0]]).unwrap(),
            0.0,
        );
        assert!(matches!(
            jacobi(&a, &[1.0, 1.0], IterOptions::new()),
            Err(LinalgError::Singular { .. })
        ));
        assert!(matches!(
            gauss_seidel(&a, &[1.0, 1.0], IterOptions::new()),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_convergence_is_reported() {
        // Not diagonally dominant; Jacobi diverges.
        let a = CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[1.0, 3.0], &[4.0, 1.0]]).unwrap(),
            0.0,
        );
        let err = jacobi(&a, &[1.0, 1.0], IterOptions::new().max_iterations(50)).unwrap_err();
        assert!(matches!(err, LinalgError::NotConverged { .. }));
    }

    #[test]
    fn power_iteration_two_state_chain() {
        // Birth-death chain with known stationary distribution.
        let p = CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[0.7, 0.3], &[0.6, 0.4]]).unwrap(),
            0.0,
        );
        let sol = power_stationary(&p, IterOptions::new().tolerance(1e-14)).unwrap();
        // pi = (2/3, 1/3)
        assert!((sol.x[0] - 2.0 / 3.0).abs() < 1e-10);
        assert!((sol.x[1] - 1.0 / 3.0).abs() < 1e-10);
    }

    #[test]
    fn power_iteration_shape_check() {
        let p = CsrMatrix::from_dense(&Matrix::zeros(2, 3), 0.0);
        assert!(matches!(
            power_stationary(&p, IterOptions::new()),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "relaxation")]
    fn invalid_relaxation_panics() {
        let _ = IterOptions::new().relaxation(2.5);
    }

    /// Qᵀ for a 3-state birth–death chain with birth rate `lam` and death
    /// rate `mu`; stationary distribution is geometric in `lam/mu`.
    fn birth_death_qt(lam: f64, mu: f64) -> CsrMatrix {
        CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[-lam, mu, 0.0], &[lam, -(lam + mu), mu], &[0.0, lam, -mu]])
                .unwrap(),
            0.0,
        )
    }

    fn birth_death_pi(lam: f64, mu: f64) -> [f64; 3] {
        let r = lam / mu;
        let z = 1.0 + r + r * r;
        [1.0 / z, r / z, r * r / z]
    }

    #[test]
    fn stationary_jacobi_matches_closed_form() {
        let qt = birth_death_qt(1.0, 4.0);
        let want = birth_death_pi(1.0, 4.0);
        let sol = stationary_jacobi(&qt, IterOptions::new().tolerance(1e-14)).unwrap();
        assert!(max_abs_diff(&sol.x, &want) < 1e-10);
    }

    #[test]
    fn stationary_gauss_seidel_matches_closed_form() {
        let qt = birth_death_qt(2.0, 3.0);
        let want = birth_death_pi(2.0, 3.0);
        let sol = stationary_gauss_seidel(&qt, IterOptions::new().tolerance(1e-14)).unwrap();
        assert!(max_abs_diff(&sol.x, &want) < 1e-10);
        // Gauss–Seidel propagates mass in one sweep; it should need no
        // more iterations than damped Jacobi on the same chain.
        let j =
            stationary_jacobi(&qt, IterOptions::new().tolerance(1e-14).relaxation(0.5)).unwrap();
        assert!(sol.iterations <= j.iterations);
    }

    #[test]
    fn stationary_damping_handles_periodic_jump_chain() {
        // Equal rates make the embedded jump chain periodic; damped Jacobi
        // (ω < 1) and Gauss–Seidel must both still converge to (1/2, 1/2).
        let qt = CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[-5.0, 5.0], &[5.0, -5.0]]).unwrap(),
            0.0,
        );
        let opts = IterOptions::new().tolerance(1e-14);
        let j = stationary_jacobi(&qt, opts.relaxation(0.5)).unwrap();
        assert!((j.x[0] - 0.5).abs() < 1e-12);
        let gs = stationary_gauss_seidel(&qt, opts).unwrap();
        assert!((gs.x[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stationary_rejects_absorbing_state() {
        let qt = CsrMatrix::from_dense(
            &Matrix::from_rows(&[&[0.0, 1.0], &[0.0, -1.0]]).unwrap(),
            0.0,
        );
        assert!(matches!(
            stationary_jacobi(&qt, IterOptions::new()),
            Err(LinalgError::Singular { pivot: 0 })
        ));
        assert!(matches!(
            stationary_gauss_seidel(&qt, IterOptions::new()),
            Err(LinalgError::Singular { pivot: 0 })
        ));
    }

    #[test]
    fn stationary_shape_checks() {
        let rect = CsrMatrix::from_dense(&Matrix::zeros(2, 3), 0.0);
        assert!(matches!(
            stationary_jacobi(&rect, IterOptions::new()),
            Err(LinalgError::NotSquare { .. })
        ));
        assert!(matches!(
            stationary_gauss_seidel(&rect, IterOptions::new()),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
