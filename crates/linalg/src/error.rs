use std::fmt;

/// Errors produced by linear-algebra operations in this crate.
///
/// All variants carry enough context to diagnose the failing operation
/// without a debugger; the [`fmt::Display`] representation is lowercase and
/// concise per Rust API guidelines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand shapes are incompatible (e.g. multiplying a 2×3 by a 2×2).
    ShapeMismatch {
        /// Human-readable name of the failing operation.
        operation: &'static str,
        /// Shape of the left/first operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right/second operand as `(rows, cols)`.
        right: (usize, usize),
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Actual shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A zero (or numerically negligible) pivot was encountered; the matrix
    /// is singular to working precision.
    Singular {
        /// Index of the failing pivot.
        pivot: usize,
    },
    /// An iterative method failed to reach the requested tolerance.
    NotConverged {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the last iteration.
        residual: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// Construction input was invalid (e.g. ragged rows, NaN entries,
    /// out-of-bounds indices for sparse triplets).
    InvalidInput {
        /// Explanation of what was wrong.
        reason: String,
    },
    /// An empty matrix or vector was supplied where data is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::ShapeMismatch {
                operation,
                left,
                right,
            } => write!(
                f,
                "shape mismatch in {operation}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            LinalgError::NotSquare { shape } => {
                write!(f, "matrix must be square, got {}x{}", shape.0, shape.1)
            }
            LinalgError::Singular { pivot } => {
                write!(
                    f,
                    "matrix is singular to working precision at pivot {pivot}"
                )
            }
            LinalgError::NotConverged {
                iterations,
                residual,
                tolerance,
            } => write!(
                f,
                "iteration did not converge after {iterations} steps \
                 (residual {residual:.3e} > tolerance {tolerance:.3e})"
            ),
            LinalgError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            LinalgError::Empty => write!(f, "empty matrix or vector"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = LinalgError::ShapeMismatch {
            operation: "mul",
            left: (2, 3),
            right: (2, 2),
        };
        assert_eq!(err.to_string(), "shape mismatch in mul: 2x3 vs 2x2");
        let err = LinalgError::Singular { pivot: 4 };
        assert!(err.to_string().contains("pivot 4"));
        let err = LinalgError::NotConverged {
            iterations: 10,
            residual: 1e-3,
            tolerance: 1e-9,
        };
        assert!(err.to_string().contains("10 steps"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
