//! Small vector utilities shared across the workspace: norms, normalization
//! and comparisons used by probability vectors.

use crate::LinalgError;

/// L1 norm (sum of absolute values).
///
/// # Examples
///
/// ```
/// assert_eq!(uavail_linalg::vector::norm_l1(&[3.0, -4.0]), 7.0);
/// ```
pub fn norm_l1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// L2 (Euclidean) norm.
///
/// # Examples
///
/// ```
/// assert_eq!(uavail_linalg::vector::norm_l2(&[3.0, 4.0]), 5.0);
/// ```
pub fn norm_l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Max (infinity) norm.
///
/// # Examples
///
/// ```
/// assert_eq!(uavail_linalg::vector::norm_max(&[3.0, -4.0]), 4.0);
/// ```
pub fn norm_max(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |acc, v| acc.max(v.abs()))
}

/// Maximum absolute component-wise difference between two vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter()
        .zip(b)
        .map(|(l, r)| (l - r).abs())
        .fold(0.0, f64::max)
}

/// Dot product of two vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(uavail_linalg::vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vector length mismatch");
    a.iter().zip(b).map(|(l, r)| l * r).sum()
}

/// Normalizes `x` in place so its entries sum to one.
///
/// # Errors
///
/// Returns [`LinalgError::InvalidInput`] when the entry sum is zero,
/// non-finite, or negative — a probability vector cannot be recovered then.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), uavail_linalg::LinalgError> {
/// let mut v = vec![2.0, 2.0];
/// uavail_linalg::vector::normalize_probability(&mut v)?;
/// assert_eq!(v, vec![0.5, 0.5]);
/// # Ok(())
/// # }
/// ```
pub fn normalize_probability(x: &mut [f64]) -> Result<(), LinalgError> {
    let sum: f64 = x.iter().sum();
    if !(sum.is_finite() && sum > 0.0) {
        return Err(LinalgError::InvalidInput {
            reason: format!("cannot normalize vector with sum {sum}"),
        });
    }
    for v in x.iter_mut() {
        *v /= sum;
    }
    Ok(())
}

/// Checks that `x` is a probability vector: entries in `[0, 1]` (within
/// `tol` slack) summing to one (within `tol`).
pub fn is_probability_vector(x: &[f64], tol: f64) -> bool {
    if x.is_empty() {
        return false;
    }
    let sum: f64 = x.iter().sum();
    (sum - 1.0).abs() <= tol && x.iter().all(|&v| v >= -tol && v <= 1.0 + tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms() {
        assert_eq!(norm_l1(&[1.0, -2.0, 3.0]), 6.0);
        assert!((norm_l2(&[1.0, 2.0, 2.0]) - 3.0).abs() < 1e-15);
        assert_eq!(norm_max(&[]), 0.0);
    }

    #[test]
    fn diff_and_dot() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[2.0, 5.5]), 1.0);
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn normalize_happy_path() {
        let mut v = vec![1.0, 3.0];
        normalize_probability(&mut v).unwrap();
        assert_eq!(v, vec![0.25, 0.75]);
        assert!(is_probability_vector(&v, 1e-12));
    }

    #[test]
    fn normalize_rejects_zero_sum() {
        let mut v = vec![0.0, 0.0];
        assert!(normalize_probability(&mut v).is_err());
        let mut v = vec![1.0, -1.0];
        assert!(normalize_probability(&mut v).is_err());
    }

    #[test]
    fn probability_vector_detection() {
        assert!(is_probability_vector(&[0.5, 0.5], 1e-12));
        assert!(!is_probability_vector(&[0.5, 0.6], 1e-12));
        assert!(!is_probability_vector(&[1.5, -0.5], 1e-12));
        assert!(!is_probability_vector(&[], 1e-12));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
