//! # uavail-linalg
//!
//! Self-contained dense and sparse linear algebra for dependability models.
//!
//! Availability and performability models (Markov chains, reward models)
//! reduce to small-to-medium linear-algebra problems: solving `Ax = b`,
//! computing stationary vectors `πQ = 0`, and inverting fundamental matrices
//! `(I - Q)^{-1}`. This crate provides exactly the kernels the rest of the
//! `uavail` workspace needs, with no external dependencies:
//!
//! * [`Matrix`] — dense, row-major `f64` matrix with the usual algebra.
//! * [`Lu`] — LU decomposition with partial pivoting (solve, determinant,
//!   inverse).
//! * [`CsrMatrix`] — compressed sparse row matrix with matrix–vector
//!   products for iterative methods.
//! * [`iterative`] — Jacobi, Gauss–Seidel, SOR and power iteration.
//!
//! Numerical robustness matters more than speed here: availability models mix
//! rates spanning many orders of magnitude (failures per hour vs. requests
//! per second). The API surfaces residuals and convergence diagnostics so
//! callers can verify solutions instead of trusting them blindly.
//!
//! # Examples
//!
//! ```
//! use uavail_linalg::{Matrix, Lu};
//!
//! # fn main() -> Result<(), uavail_linalg::LinalgError> {
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let lu = Lu::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![allow(clippy::needless_range_loop)] // index loops mirror the math
pub mod batch;
mod error;
pub mod iterative;
mod lu;
mod matrix;
mod sparse;
mod tridiagonal;
pub mod vector;

pub use batch::TridiagonalLanes;
pub use error::LinalgError;
pub use lu::{solve, Lu, LuWorkspace};
pub use matrix::Matrix;
pub use sparse::{CsrBuilder, CsrMatrix, Triplet};
pub use tridiagonal::Tridiagonal;

/// Default tolerance used by convergence checks throughout the crate.
pub const DEFAULT_TOLERANCE: f64 = 1e-12;

/// Default iteration cap for iterative solvers.
pub const DEFAULT_MAX_ITERATIONS: usize = 100_000;
