//! Property-based tests for `uavail-linalg`: algebraic identities that must
//! hold for arbitrary well-formed inputs.

use proptest::prelude::*;
use uavail_linalg::iterative::{gauss_seidel, jacobi, IterOptions};
use uavail_linalg::vector::max_abs_diff;
use uavail_linalg::{CsrMatrix, Lu, Matrix, Triplet};

/// Strategy: an n×n matrix with entries in [-10, 10], made strictly
/// diagonally dominant so LU and the iterative methods are all applicable.
fn diag_dominant_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, n * n).prop_map(move |mut data| {
        for i in 0..n {
            let row_sum: f64 = (0..n)
                .filter(|&j| j != i)
                .map(|j| data[i * n + j].abs())
                .sum();
            data[i * n + i] = row_sum + 1.0 + data[i * n + i].abs();
        }
        Matrix::from_vec(n, n, data).expect("valid shape")
    })
}

fn vector(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, n)
}

proptest! {
    #[test]
    fn lu_solve_has_small_residual(
        (a, b) in (2usize..7).prop_flat_map(|n| (diag_dominant_matrix(n), vector(n)))
    ) {
        let lu = Lu::new(&a).expect("diag dominant is nonsingular");
        let x = lu.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        prop_assert!(max_abs_diff(&ax, &b) < 1e-8);
    }

    #[test]
    fn inverse_times_matrix_is_identity(
        a in (2usize..6).prop_flat_map(diag_dominant_matrix)
    ) {
        let inv = Lu::new(&a).unwrap().inverse().unwrap();
        let prod = a.mul_matrix(&inv).unwrap();
        let diff = prod.sub_matrix(&Matrix::identity(a.rows())).unwrap();
        prop_assert!(diff.max_abs() < 1e-8);
    }

    #[test]
    fn transposed_solve_agrees_with_transpose(
        (a, b) in (2usize..6).prop_flat_map(|n| (diag_dominant_matrix(n), vector(n)))
    ) {
        let lu = Lu::new(&a).unwrap();
        let x1 = lu.solve_transposed(&b).unwrap();
        let x2 = Lu::new(&a.transpose()).unwrap().solve(&b).unwrap();
        prop_assert!(max_abs_diff(&x1, &x2) < 1e-8);
    }

    #[test]
    fn iterative_methods_agree_with_lu(
        (a, b) in (2usize..6).prop_flat_map(|n| (diag_dominant_matrix(n), vector(n)))
    ) {
        let x_direct = Lu::new(&a).unwrap().solve(&b).unwrap();
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        let opts = IterOptions::new().tolerance(1e-13).max_iterations(200_000);
        let x_j = jacobi(&sparse, &b, opts).unwrap().x;
        let x_gs = gauss_seidel(&sparse, &b, opts).unwrap().x;
        prop_assert!(max_abs_diff(&x_direct, &x_j) < 1e-6);
        prop_assert!(max_abs_diff(&x_direct, &x_gs) < 1e-6);
    }

    #[test]
    fn csr_roundtrip_preserves_matvec(
        (a, x) in (2usize..8).prop_flat_map(|n| (diag_dominant_matrix(n), vector(n)))
    ) {
        let sparse = CsrMatrix::from_dense(&a, 0.0);
        let dense_result = a.mul_vec(&x).unwrap();
        let sparse_result = sparse.mul_vec(&x).unwrap();
        prop_assert!(max_abs_diff(&dense_result, &sparse_result) < 1e-9);
    }

    #[test]
    fn csr_transpose_is_involution(
        entries in prop::collection::vec((0usize..5, 0usize..5, -10.0f64..10.0), 1..20)
    ) {
        let triplets: Vec<Triplet> = entries
            .iter()
            .map(|&(r, c, v)| Triplet::new(r, c, v))
            .collect();
        let m = CsrMatrix::from_triplets(5, 5, &triplets).unwrap();
        prop_assert_eq!(m.transpose().transpose().to_dense(), m.to_dense());
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants(
        (a, b) in (2usize..5).prop_flat_map(|n| (diag_dominant_matrix(n), diag_dominant_matrix(n)))
    ) {
        let da = Lu::new(&a).unwrap().determinant();
        let db = Lu::new(&b).unwrap().determinant();
        let dab = Lu::new(&a.mul_matrix(&b).unwrap()).unwrap().determinant();
        // Relative comparison: determinants can be large.
        let scale = dab.abs().max(1.0);
        prop_assert!(((da * db - dab) / scale).abs() < 1e-6);
    }
}
