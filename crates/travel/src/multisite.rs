//! Geographic distribution — the paper's multi-site option.
//!
//! Section 3.3 notes that "replicated servers can be located at one site
//! or be geographically distributed at distinct sites" and that fault
//! tolerance can provide "redundant accesses to the Internet". This module
//! evaluates that option: the TA deployed at `S` independent sites, each a
//! full Figure-8 stack behind its own Internet uplink and LAN; the user
//! reaches the service while at least one site is fully reachable and
//! serving.
//!
//! External services (reservation systems, payment) remain global — they
//! are third parties, shared by all sites.

use std::collections::HashMap;

use crate::functions;
use crate::user::{self, UserClass};
use crate::{Architecture, TaParameters, TravelAgencyModel, TravelError};

/// A multi-site deployment: `sites` identical replicas of the single-site
/// architecture.
#[derive(Debug, Clone)]
pub struct MultiSiteModel {
    params: TaParameters,
    architecture: Architecture,
    sites: usize,
}

impl MultiSiteModel {
    /// Creates a deployment of `sites` identical replicas.
    ///
    /// # Errors
    ///
    /// * [`TravelError::InvalidParameter`] when `sites == 0`.
    /// * Propagated parameter-validation failures.
    pub fn new(
        params: TaParameters,
        architecture: Architecture,
        sites: usize,
    ) -> Result<Self, TravelError> {
        if sites == 0 {
            return Err(TravelError::InvalidParameter {
                name: "sites",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        params.validate()?;
        Ok(MultiSiteModel {
            params,
            architecture,
            sites,
        })
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// Service availabilities as perceived through the multi-site front
    /// end: per-site internal stacks (uplink + LAN + internal services)
    /// compose in parallel; external (third-party) services stay global.
    ///
    /// The composition is exact under the paper's independence
    /// assumptions: a user request is routed to any *fully working* site,
    /// so the "internal platform" availability becomes
    /// `1 − (1 − A_site)^S` with
    /// `A_site = A_net·A_LAN·A(WS)·A(AS)·A(DS)` — and the user-level
    /// formulas then consume an equivalent environment in which the
    /// internal factors of one site are replaced by the multi-site
    /// platform availability.
    ///
    /// # Errors
    ///
    /// Propagated solver failures.
    pub fn effective_service_availabilities(&self) -> Result<HashMap<String, f64>, TravelError> {
        let single = TravelAgencyModel::new(self.params.clone(), self.architecture)?;
        let env = single.service_availabilities()?;
        // Per-site internal platform: everything the provider hosts.
        let internal = [
            functions::SERVICE_NET,
            functions::SERVICE_LAN,
            functions::SERVICE_WEB,
            functions::SERVICE_APP,
            functions::SERVICE_DB,
        ];
        let site_platform: f64 = internal.iter().map(|s| env[*s]).product();
        let multi_platform = 1.0 - (1.0 - site_platform).powi(self.sites as i32);
        // Equivalent environment: fold the whole platform into the "net"
        // factor (every function uses all internal services of a site
        // together once a request is routed there; Browse's partial paths
        // make this a slight *underestimate* of the true multi-site
        // availability, so the reported gain is conservative).
        let mut effective = env.clone();
        effective.insert(functions::SERVICE_NET.to_string(), multi_platform);
        for s in [
            functions::SERVICE_LAN,
            functions::SERVICE_WEB,
            functions::SERVICE_APP,
            functions::SERVICE_DB,
        ] {
            effective.insert(s.to_string(), 1.0);
        }
        Ok(effective)
    }

    /// User-perceived availability of the multi-site deployment
    /// (conservative; see
    /// [`MultiSiteModel::effective_service_availabilities`]).
    ///
    /// # Errors
    ///
    /// Propagated solver failures.
    pub fn user_availability(&self, class: &UserClass) -> Result<f64, TravelError> {
        let env = self.effective_service_availabilities()?;
        user::user_availability(class, &self.params, &env)
    }

    /// The gain over a single site for the given class (absolute
    /// availability difference).
    ///
    /// # Errors
    ///
    /// Propagated solver failures.
    pub fn gain_over_single_site(&self, class: &UserClass) -> Result<f64, TravelError> {
        let single = TravelAgencyModel::new(self.params.clone(), self.architecture)?
            .user_availability(class)?;
        Ok(self.user_availability(class)? - single)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::{class_a, class_b};

    fn model(sites: usize) -> MultiSiteModel {
        MultiSiteModel::new(
            TaParameters::paper_defaults(),
            Architecture::paper_reference(),
            sites,
        )
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(MultiSiteModel::new(
            TaParameters::paper_defaults(),
            Architecture::paper_reference(),
            0
        )
        .is_err());
        assert_eq!(model(3).sites(), 3);
    }

    #[test]
    fn single_site_is_conservative_bound() {
        // The one-site multi-site model folds the platform into a single
        // factor, which can only *lower* Browse availability (partial
        // paths), so it must not exceed... actually it must closely match
        // the direct model from below.
        let multi = model(1);
        let direct = TravelAgencyModel::new(
            TaParameters::paper_defaults(),
            Architecture::paper_reference(),
        )
        .unwrap();
        for class in [class_a(), class_b()] {
            let m = multi.user_availability(&class).unwrap();
            let d = direct.user_availability(&class).unwrap();
            assert!(m <= d + 1e-12, "class {}: {m} vs {d}", class.name());
            assert!(d - m < 5e-3, "bound should be tight: {m} vs {d}");
        }
    }

    #[test]
    fn more_sites_help_and_saturate() {
        let class = class_b();
        let a1 = model(1).user_availability(&class).unwrap();
        let a2 = model(2).user_availability(&class).unwrap();
        let a3 = model(3).user_availability(&class).unwrap();
        let a6 = model(6).user_availability(&class).unwrap();
        assert!(a2 > a1);
        assert!(a3 > a2);
        // Diminishing returns: external services cap the benefit.
        assert!(a6 - a3 < a2 - a1);
        // The cap: even infinitely many sites cannot beat the external
        // services' availability.
        let params = TaParameters::paper_defaults();
        let direct =
            TravelAgencyModel::new(params.clone(), Architecture::paper_reference()).unwrap();
        let env = direct.service_availabilities().unwrap();
        let mut ideal_env = env.clone();
        for s in [
            functions::SERVICE_NET,
            functions::SERVICE_LAN,
            functions::SERVICE_WEB,
            functions::SERVICE_APP,
            functions::SERVICE_DB,
        ] {
            ideal_env.insert(s.to_string(), 1.0);
        }
        let cap = user::user_availability(&class, &params, &ideal_env).unwrap();
        assert!(a6 <= cap + 1e-12);
        assert!(cap - a6 < 1e-3, "six sites nearly saturate the cap");
    }

    #[test]
    fn gain_positive_for_two_sites() {
        let gain = model(2).gain_over_single_site(&class_a()).unwrap();
        assert!(gain > 0.0);
        // The single-site Internet uplink (0.9966) is a dominant single
        // point of failure; duplicating the site buys whole percentage
        // points? The uplink alone contributes ~0.68% unavailability,
        // so the two-site gain must be at least half of that... it also
        // loses the Browse-partial-path slack; just require a visible win.
        assert!(gain > 2e-3, "gain {gain}");
    }
}
