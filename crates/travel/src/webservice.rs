//! Web-service availability — Table 5 and equations (1)–(9) of the paper.
//!
//! The web service fails in two ways: the hosts fail (availability model)
//! or the input buffer overflows (performance model). This module combines
//! them with the composite approach for three settings:
//!
//! * the **basic** architecture: one host, equation (2);
//! * the **redundant** farm with **perfect coverage**: equations (3)–(5),
//!   the Markov chain of Figure 9;
//! * the **redundant** farm with **imperfect coverage**: equations
//!   (6)–(9), the Markov chain of Figure 10 including the manual-
//!   reconfiguration down states `y_i`.
//!
//! Every steady-state distribution is computed twice internally — by the
//! paper's closed forms and by solving the explicit CTMC with GTH — and
//! the closed forms are asserted against the numeric solution in tests.

use std::sync::OnceLock;

use uavail_core::composite::{
    composite_availability, composite_availability_from_iter, CompositeState,
};
use uavail_linalg::{CsrMatrix, Matrix};
use uavail_markov::{
    gth_steady_state_into, steady_state_mass_drift, BirthDeath, CtmcBuilder, MarkovError,
    SparseCtmc, STEADY_STATE_DRIFT_TOLERANCE,
};
use uavail_queueing::{MMcK, MmckFamily, MM1K};

use crate::context::{EvalContext, FarmStructure};
use crate::loss_cache::{LossKey, ShardedLossCache};
use crate::{TaParameters, TravelError};

/// Process-wide memo for [`loss_probability`].
///
/// The farm-availability formulas (equations 5 and 9) evaluate
/// `p_K(i)` for `i = 1 ..= N_W` at every sweep point, and the figure
/// sweeps revisit the same `(α, ν, i, K)` combinations across their grid
/// (the λ axis does not enter the performance model), so the hit rate in
/// the Figure 11–13 reproductions is high. Values are stored exactly as
/// first computed, so cached and uncached paths — and therefore serial
/// and parallel sweeps — return bit-for-bit identical results.
///
/// The memo is hash-partitioned into [`crate::loss_cache::SHARD_COUNT`]
/// independently-locked shards so parallel sweep workers do not serialize
/// on a single lock; see [`crate::loss_cache`] for the sharding and
/// eviction policy.
fn loss_cache() -> &'static ShardedLossCache {
    static CACHE: OnceLock<ShardedLossCache> = OnceLock::new();
    CACHE.get_or_init(|| ShardedLossCache::new(LOSS_CACHE_CAP, true))
}

/// Bound on the memo size; far beyond any figure sweep (which needs a few
/// hundred entries) but keeps a pathological caller from growing the map
/// without limit. Overflowing shards evict bounded batches of entries
/// (counted individually by `travel.loss_cache.evictions`).
const LOSS_CACHE_CAP: usize = 1 << 16;

/// Empties the [`loss_probability`] memo.
///
/// Results are unaffected (the cache is transparent); this exists for
/// benchmarks that want every timed repetition to pay the same cache
/// misses instead of measuring a warm cache.
pub fn reset_loss_cache() {
    loss_cache().clear();
}

/// Current number of memoized [`loss_probability`] entries.
pub fn loss_cache_len() -> usize {
    loss_cache().len()
}

/// Size bound of the [`loss_probability`] memo; full shards evict bounded
/// batches, each discarded entry recorded by `travel.loss_cache.evictions`.
pub fn loss_cache_capacity() -> usize {
    loss_cache().capacity()
}

/// Loss probability `p_K` of the basic single-server buffer —
/// equation (1).
///
/// # Errors
///
/// Propagates parameter-domain failures from the queueing model.
pub fn loss_probability_basic(params: &TaParameters) -> Result<f64, TravelError> {
    let q = MM1K::new(
        params.arrival_rate_per_second,
        params.service_rate_per_second,
        params.buffer_size,
    )?;
    Ok(q.loss_probability())
}

/// Loss probability `p_K(i)` with `i` operational servers — equation (3).
///
/// # Errors
///
/// Propagates parameter-domain failures; `i` must satisfy
/// `1 ≤ i ≤ buffer_size`.
pub fn loss_probability(params: &TaParameters, operational: usize) -> Result<f64, TravelError> {
    let key = loss_key(params, operational);
    if let Some(p) = loss_cache().get(&key) {
        return Ok(p);
    }
    let q = MMcK::new(
        params.arrival_rate_per_second,
        params.service_rate_per_second,
        operational,
        params.buffer_size,
    )?;
    let p = q.loss_probability();
    loss_cache().insert(key, p);
    Ok(p)
}

/// Loss probability `p_K(i)` reusing `dist_buf` for the M/M/c/K state
/// distribution — the allocation-free twin of [`loss_probability`].
///
/// Shares the same process-wide memo, so cache hits skip the queueing
/// model entirely and cached values are bit-for-bit those of the
/// allocating path (misses run the exact same arithmetic via
/// [`MMcK::with_distribution_buf`]).
///
/// # Errors
///
/// Propagates parameter-domain failures; `i` must satisfy
/// `1 ≤ i ≤ buffer_size`.
pub fn loss_probability_with(
    params: &TaParameters,
    operational: usize,
    dist_buf: &mut Vec<f64>,
) -> Result<f64, TravelError> {
    let key = loss_key(params, operational);
    if let Some(p) = loss_cache().get(&key) {
        return Ok(p);
    }
    let q = MMcK::with_distribution_buf(
        params.arrival_rate_per_second,
        params.service_rate_per_second,
        operational,
        params.buffer_size,
        std::mem::take(dist_buf),
    )?;
    let p = q.loss_probability();
    *dist_buf = q.into_distribution_buf();
    loss_cache().insert(key, p);
    Ok(p)
}

/// Primes the [`loss_probability`] memo for every operational server
/// count `1 ..= max_servers` at `params`' `(α, ν, K)` with one batched
/// [`MmckFamily`] solve (the structure-of-arrays recurrence in
/// `uavail-queueing`), instead of `max_servers` independent incremental
/// [`MMcK`] solves. Each lane is bit-identical to the scalar model, so
/// priming is observationally transparent to every later
/// [`loss_probability`] / [`loss_probability_with`] call. Keys already
/// memoized are left untouched; the family solve is skipped entirely when
/// nothing is missing.
///
/// `buf` is the family's weight workspace, reused across primings.
///
/// # Errors
///
/// Propagates parameter-domain failures from the queueing model.
pub(crate) fn prime_loss_family(
    params: &TaParameters,
    max_servers: usize,
    buf: &mut Vec<f64>,
) -> Result<(), TravelError> {
    let m = max_servers.min(params.buffer_size);
    if m == 0 || (1..=m).all(|i| loss_cache().get(&loss_key(params, i)).is_some()) {
        return Ok(());
    }
    let family = MmckFamily::with_buffer(
        params.arrival_rate_per_second,
        params.service_rate_per_second,
        m,
        params.buffer_size,
        std::mem::take(buf),
    )?;
    for i in 1..=m {
        let key = loss_key(params, i);
        if loss_cache().get(&key).is_none() {
            loss_cache().insert(key, family.loss_probability(i));
        }
    }
    uavail_obs::counter_add("travel.batch.primed_families", 1);
    *buf = family.into_buffer();
    Ok(())
}

/// Farm state count (`2·N_W + 1`) above which the imperfect-coverage
/// chain is assembled and solved through the sparse pipeline instead of
/// the dense GTH path. At or below the cutoff the dense path runs
/// unchanged, so every pinned paper value keeps its exact bits.
const SPARSE_FARM_CUTOFF: usize = 1024;

/// Stationary mass below which [`redundant_imperfect_availability_sparse`]
/// treats a farm state's service contribution as zero instead of
/// evaluating its M/M/i/K loss probability. The resulting availability
/// underestimate is bounded by `(2·N_W + 1) × NEGLIGIBLE_MASS` — around
/// 1e-10 even for a 10⁵-state farm, far below the solver tolerance.
const NEGLIGIBLE_MASS: f64 = 1e-15;

/// Appends the Figure 10 transitions in the canonical order of the dense
/// builder path: operational state `i` at row `i` (`0 ..= N_W`),
/// reconfiguration state `y_i` at row `N_W + i` (`1 ..= N_W`). Keeping
/// the insertion order identical to [`CtmcBuilder::build`]'s accumulation
/// makes the sparse generator bit-identical to the dense one.
fn push_imperfect_transitions(params: &TaParameters, out: &mut Vec<(usize, usize, f64)>) {
    let n = params.web_servers;
    let lambda = params.failure_rate_per_hour;
    let mu = params.repair_rate_per_hour;
    let c = params.coverage;
    let beta = params.reconfiguration_rate_per_hour;
    for i in 1..=n {
        if c > 0.0 {
            out.push((i, i - 1, i as f64 * c * lambda));
        }
        if c < 1.0 {
            out.push((i, n + i, i as f64 * (1.0 - c) * lambda));
            out.push((n + i, i - 1, beta));
        }
        out.push((i - 1, i, mu));
    }
}

/// Splits a Figure 10 stationary vector into `(operational, reconfiguring)`.
fn split_farm_pi(n: usize, pi: &[f64]) -> (Vec<f64>, Vec<f64>) {
    (pi[..=n].to_vec(), pi[n + 1..].to_vec())
}

fn loss_key(params: &TaParameters, operational: usize) -> LossKey {
    (
        params.arrival_rate_per_second.to_bits(),
        params.service_rate_per_second.to_bits(),
        operational,
        params.buffer_size,
    )
}

/// Basic-architecture web-service availability — equation (2):
/// `A(WS) = A(C_WS) · (1 − p_K)`.
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn basic_availability(params: &TaParameters) -> Result<f64, TravelError> {
    params.validate()?;
    Ok(params.a_cws * (1.0 - loss_probability_basic(params)?))
}

/// Steady-state probabilities `Π_0 ..= Π_{N_W}` of the perfect-coverage
/// farm (Figure 9 / equation 4), indexed by the number of operational
/// servers.
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn farm_distribution_perfect(params: &TaParameters) -> Result<Vec<f64>, TravelError> {
    Ok(BirthDeath::shared_repair_farm(
        params.web_servers,
        params.failure_rate_per_hour,
        params.repair_rate_per_hour,
    )?)
}

/// Writes the perfect-coverage farm distribution into `ctx.farm_op`,
/// reusing the context's birth/death-rate buffers — the allocation-free
/// twin of [`farm_distribution_perfect`], bit-for-bit identical.
fn farm_distribution_perfect_into(
    params: &TaParameters,
    ctx: &mut EvalContext,
) -> Result<(), TravelError> {
    let n = params.web_servers;
    if n == 0 {
        // Mirror `BirthDeath::shared_repair_farm`'s domain check.
        BirthDeath::shared_repair_farm(0, 1.0, 1.0)?;
        unreachable!("shared_repair_farm rejects n = 0");
    }
    let mut births = std::mem::take(&mut ctx.births);
    let mut deaths = std::mem::take(&mut ctx.deaths);
    births.clear();
    births.resize(n, params.repair_rate_per_hour);
    deaths.clear();
    deaths.extend((1..=n).map(|i| i as f64 * params.failure_rate_per_hour));
    let bd = BirthDeath::new(births, deaths)?;
    bd.steady_state_into(&mut ctx.farm_op);
    let (births, deaths) = bd.into_rates();
    ctx.births = births;
    ctx.deaths = deaths;
    Ok(())
}

/// Steady-state solution of the imperfect-coverage farm
/// (Figure 10 / equations 6–8).
///
/// Returns `(operational, reconfiguring)`:
/// `operational[i]` is `Π_i` (i operational servers, `0 ..= N_W`);
/// `reconfiguring[i]` is `Π_{y_i}` for `i = 1 ..= N_W` (stored at
/// `i - 1`), the down states awaiting manual reconfiguration.
///
/// The chain is solved numerically with GTH rather than by the printed
/// closed forms; the closed forms of equations (6)–(7) are verified
/// against this solution in the crate tests (the paper's printed
/// summation bound `N_W − 2` in equations (7)–(9) is a typographical slip
/// — reproducing `A(WS) = 0.999995587` from Table 7 requires including
/// every `y_i` state, which this solver does by construction).
///
/// # Errors
///
/// Propagates parameter-domain and chain-construction failures.
pub fn farm_distribution_imperfect(
    params: &TaParameters,
) -> Result<(Vec<f64>, Vec<f64>), TravelError> {
    params.validate()?;
    let n = params.web_servers;
    let lambda = params.failure_rate_per_hour;
    let mu = params.repair_rate_per_hour;
    let c = params.coverage;
    let beta = params.reconfiguration_rate_per_hour;

    if c >= 1.0 {
        // Perfect coverage: the y states are unreachable; Figure 10
        // degenerates to Figure 9.
        return Ok((farm_distribution_perfect(params)?, vec![0.0; n]));
    }
    if 2 * n + 1 > SPARSE_FARM_CUTOFF {
        // Large farm: a dense generator would need O(n²) memory; the
        // sparse pipeline assembles and solves it in O(nnz).
        return farm_distribution_imperfect_sparse(params);
    }

    let mut b = CtmcBuilder::new();
    let op: Vec<_> = (0..=n).map(|i| b.add_state(format!("up{i}"))).collect();
    let y: Vec<_> = (1..=n).map(|i| b.add_state(format!("y{i}"))).collect();
    for i in 1..=n {
        // Covered failure: i -> i-1 at rate i·c·λ.
        if c > 0.0 {
            b.add_transition(op[i], op[i - 1], i as f64 * c * lambda)?;
        }
        // Uncovered failure: i -> y_i at rate i·(1-c)·λ.
        if c < 1.0 {
            b.add_transition(op[i], y[i - 1], i as f64 * (1.0 - c) * lambda)?;
        }
        // Manual reconfiguration: y_i -> i-1 at rate β.
        if c < 1.0 {
            b.add_transition(y[i - 1], op[i - 1], beta)?;
        }
        // Shared repair: i-1 -> i at rate µ.
        b.add_transition(op[i - 1], op[i], mu)?;
    }
    let chain = b.build()?;
    // Health-gated solve: the default (GTH) solution is accepted only when
    // its probability mass survived intact; otherwise fall through to the
    // LU → GTH → scaled-GTH chain. On the healthy path this recomputes
    // nothing, so results stay bit-for-bit identical to a plain solve.
    let pi = match chain.steady_state() {
        Ok(pi) if steady_state_mass_drift(&pi) <= STEADY_STATE_DRIFT_TOLERANCE => pi,
        _ => {
            uavail_obs::counter_add("travel.farm.pi_fallbacks", 1);
            uavail_obs::slo_degraded(1);
            let pi = chain.steady_state_resilient()?;
            uavail_obs::counter_add("travel.farm.pi_recovered", 1);
            pi
        }
    };
    let operational: Vec<f64> = (0..=n).map(|i| pi[op[i].index()]).collect();
    let reconfiguring: Vec<f64> = (0..n).map(|i| pi[y[i].index()]).collect();
    Ok((operational, reconfiguring))
}

/// Sparse solution of the imperfect-coverage farm: the generator is
/// assembled straight into CSR form ([`SparseCtmc::from_transitions`],
/// same state layout and insertion order as the dense path, so the
/// generators are bit-identical) and solved through the state-count-keyed
/// sparse solver heuristic. No dense `(2N_W+1)²` matrix is ever
/// allocated, which is what lets farms with 10⁵+ composite states solve
/// in seconds.
///
/// [`farm_distribution_imperfect`] routes here automatically past 1024
/// states; calling this directly forces the sparse path on any size.
///
/// # Errors
///
/// Propagates parameter-domain and chain-construction failures.
pub fn farm_distribution_imperfect_sparse(
    params: &TaParameters,
) -> Result<(Vec<f64>, Vec<f64>), TravelError> {
    params.validate()?;
    let n = params.web_servers;
    if params.coverage >= 1.0 {
        return Ok((farm_distribution_perfect(params)?, vec![0.0; n]));
    }
    let mut transitions = Vec::with_capacity(4 * n);
    push_imperfect_transitions(params, &mut transitions);
    let chain = SparseCtmc::from_transitions(2 * n + 1, &transitions)?;
    let pi = chain.steady_state()?;
    let (operational, reconfiguring) = split_farm_pi(n, &pi);
    Ok((operational, reconfiguring))
}

/// Buffer-reusing twin of [`farm_distribution_imperfect`]: solves the
/// farm into `ctx.farm_op` / `ctx.farm_y`, reusing the context's
/// generator (small farms) or transition-list (large farms) buffers.
/// Bit-for-bit identical to the allocating path. Like
/// [`redundant_imperfect_availability_with`], a per-context memo fronts
/// the solve: a repeated parameter point replays the exact stored bits of
/// the first computation instead of re-running the solver, and
/// same-shape large farms reuse the cached CSR sparsity pattern of the
/// previous assembly.
///
/// # Errors
///
/// Propagates parameter-domain and chain-construction failures.
pub fn farm_distribution_imperfect_with(
    params: &TaParameters,
    ctx: &mut EvalContext,
) -> Result<(), TravelError> {
    params.validate()?;
    ctx.note_use();
    farm_distribution_imperfect_into(params, ctx)
}

/// Memo-fronted farm solve: replays a stored solution when the parameter
/// point has been seen before, otherwise computes and records it. The
/// caller must have validated `params` already.
fn farm_distribution_imperfect_into(
    params: &TaParameters,
    ctx: &mut EvalContext,
) -> Result<(), TravelError> {
    let key = EvalContext::farm_key(params);
    if ctx.recall_farm(&key) {
        uavail_obs::trace_instant("travel.farm.memo_hit");
        uavail_obs::counter_add("travel.farm.memo_hits", 1);
        return Ok(());
    }
    farm_distribution_imperfect_compute(params, ctx)?;
    ctx.remember_farm(key);
    Ok(())
}

/// Solves the imperfect-coverage farm into `ctx.farm_op` / `ctx.farm_y`,
/// assembling the generator in `ctx.generator` and running GTH in
/// `ctx.gth_scratch` — the allocation-free twin of
/// [`farm_distribution_imperfect`], bit-for-bit identical.
///
/// The caller must have validated `params` already. State indexing mirrors
/// the builder path exactly: operational state `i` at row `i`
/// (`0 ..= N_W`), reconfiguration state `y_i` at row `N_W + i`
/// (`1 ..= N_W`), and the generator accumulates transitions in the same
/// insertion order as [`CtmcBuilder::build`].
fn farm_distribution_imperfect_compute(
    params: &TaParameters,
    ctx: &mut EvalContext,
) -> Result<(), TravelError> {
    let n = params.web_servers;
    let lambda = params.failure_rate_per_hour;
    let mu = params.repair_rate_per_hour;
    let c = params.coverage;
    let beta = params.reconfiguration_rate_per_hour;

    if c >= 1.0 {
        // Perfect coverage: the y states are unreachable; Figure 10
        // degenerates to Figure 9.
        farm_distribution_perfect_into(params, ctx)?;
        ctx.farm_y.clear();
        ctx.farm_y.resize(n, 0.0);
        return Ok(());
    }
    if 2 * n + 1 > SPARSE_FARM_CUTOFF {
        // Large farm: assemble the transition list in the context's
        // reusable buffer and solve through the sparse pipeline; the
        // dense `generator`/`gth_scratch` buffers are never grown to
        // O(n²). Same-shape points reuse the cached CSR pattern instead
        // of re-running the triplet sort-and-merge.
        let mut transitions = std::mem::take(&mut ctx.farm_transitions);
        transitions.clear();
        push_imperfect_transitions(params, &mut transitions);
        let chain = assemble_sparse_farm(n, c, &transitions, ctx);
        ctx.farm_transitions = transitions;
        let pi = chain?.steady_state()?;
        ctx.farm_op.clear();
        ctx.farm_op.extend_from_slice(&pi[..=n]);
        ctx.farm_y.clear();
        ctx.farm_y.extend_from_slice(&pi[n + 1..]);
        return Ok(());
    }

    let q = &mut ctx.generator;
    q.reset_zeros(2 * n + 1, 2 * n + 1);
    // Same transition order as the builder path; op state i sits at row i,
    // y_i at row n + i. Each transition adds to (from, to) and subtracts
    // from the diagonal, exactly like `CtmcBuilder::build`.
    let mut apply = |from: usize, to: usize, rate: f64| {
        q[(from, to)] += rate;
        q[(from, from)] -= rate;
    };
    for i in 1..=n {
        if c > 0.0 {
            apply(i, i - 1, i as f64 * c * lambda);
        }
        if c < 1.0 {
            apply(i, n + i, i as f64 * (1.0 - c) * lambda);
        }
        if c < 1.0 {
            apply(n + i, i - 1, beta);
        }
        apply(i - 1, i, mu);
    }
    gth_steady_state_into(&ctx.generator, &mut ctx.gth_scratch, &mut ctx.pi)?;
    if steady_state_mass_drift(&ctx.pi) > STEADY_STATE_DRIFT_TOLERANCE {
        uavail_obs::counter_add("travel.farm.pi_fallbacks", 1);
        uavail_obs::slo_degraded(1);
        retry_scaled_gth(&ctx.generator, &mut ctx.gth_scratch, &mut ctx.pi)?;
        uavail_obs::counter_add("travel.farm.pi_recovered", 1);
    }
    ctx.farm_op.clear();
    ctx.farm_op.extend_from_slice(&ctx.pi[..=n]);
    ctx.farm_y.clear();
    ctx.farm_y.extend_from_slice(&ctx.pi[n + 1..]);
    Ok(())
}

/// Assembles the sparse farm generator, reusing the context's cached CSR
/// pattern when the farm shape (server count, presence of covered-failure
/// transitions) matches the previous assembly.
///
/// The cached-pattern refill replays [`CsrMatrix::from_triplets`]'
/// duplicate merge bitwise: each stored value starts at `0.0` and
/// accumulates its triplet contributions in insertion order, which is the
/// exact sequence of additions the sort-and-merge performs (a leading
/// `0.0 +` is exact for every non-zero addend). The refilled buffer is
/// revalidated through [`CsrMatrix::from_raw_parts`]; if validation
/// rejects it — only possible when rates cancel to an explicit stored
/// zero — the full triplet assembly runs instead.
fn assemble_sparse_farm(
    n: usize,
    coverage: f64,
    transitions: &[(usize, usize, f64)],
    ctx: &mut EvalContext,
) -> Result<SparseCtmc, TravelError> {
    let covered = coverage > 0.0;
    let reusable = matches!(
        &ctx.farm_structure,
        Some(s) if s.web_servers == n
            && s.covered == covered
            && s.slots.len() == 2 * transitions.len()
    );
    if !reusable {
        let chain = SparseCtmc::from_transitions(2 * n + 1, transitions)?;
        ctx.farm_structure = FarmStructure::extract(n, covered, transitions, chain.generator());
        return Ok(chain);
    }
    let s = ctx.farm_structure.as_ref().expect("checked above");
    let mut values = vec![0.0; s.col_indices.len()];
    for (k, &(_, _, rate)) in transitions.iter().enumerate() {
        values[s.slots[2 * k]] += rate;
        values[s.slots[2 * k + 1]] += -rate;
    }
    let refilled = CsrMatrix::from_raw_parts(
        2 * n + 1,
        2 * n + 1,
        s.row_offsets.clone(),
        s.col_indices.clone(),
        values,
    )
    .ok()
    .and_then(|q| SparseCtmc::from_csr(q).ok());
    match refilled {
        Some(chain) => {
            uavail_obs::counter_add("travel.farm.csr_reuses", 1);
            Ok(chain)
        }
        None => Ok(SparseCtmc::from_transitions(2 * n + 1, transitions)?),
    }
}

/// Second-chance GTH solve for the context path: rescale the generator by
/// its largest diagonal magnitude (π is scale-invariant) and solve again.
/// Besides reconditioning, the retry is a fresh solver invocation, so a
/// transient fault injected into the first solve does not recur here.
/// A still-unhealthy vector is reported as a typed structural error
/// rather than propagated into the availability formulas.
#[cold]
fn retry_scaled_gth(
    q: &Matrix,
    scratch: &mut Matrix,
    pi: &mut Vec<f64>,
) -> Result<(), TravelError> {
    let n = q.rows();
    let scale = (0..n).map(|i| q[(i, i)].abs()).fold(0.0f64, f64::max);
    if !(scale.is_finite() && scale > 0.0) {
        return Err(MarkovError::BadStructure {
            reason: "farm generator has no usable diagonal to rescale".into(),
        }
        .into());
    }
    let mut scaled = q.clone();
    for r in 0..n {
        for c in 0..n {
            scaled[(r, c)] /= scale;
        }
    }
    gth_steady_state_into(&scaled, scratch, pi)?;
    if steady_state_mass_drift(pi) > STEADY_STATE_DRIFT_TOLERANCE {
        return Err(MarkovError::BadStructure {
            reason: "farm steady-state vector unhealthy even after a scaled retry".into(),
        }
        .into());
    }
    Ok(())
}

/// Closed-form state probabilities of the imperfect-coverage farm —
/// the corrected equations (6)–(8): `Π_i = (1/i!)(µ/λ)^i Π_0` and
/// `Π_{y_i} = µ(1−c)/(β(i−1)!) (µ/λ)^{i−1} Π_0` for `i = 1 ..= N_W`.
///
/// Exists to cross-check the numeric solver; see
/// [`farm_distribution_imperfect`].
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn farm_distribution_imperfect_closed_form(
    params: &TaParameters,
) -> Result<(Vec<f64>, Vec<f64>), TravelError> {
    params.validate()?;
    let n = params.web_servers;
    let ratio = params.repair_rate_per_hour / params.failure_rate_per_hour;
    let c = params.coverage;
    let mu = params.repair_rate_per_hour;
    let beta = params.reconfiguration_rate_per_hour;
    // Work relative to Π_0 = 1, normalize at the end. Use logs to survive
    // extreme µ/λ ratios.
    let mut log_op = Vec::with_capacity(n + 1);
    let mut log_fact = 0.0;
    for i in 0..=n {
        if i > 0 {
            log_fact += (i as f64).ln();
        }
        log_op.push(i as f64 * ratio.ln() - log_fact);
    }
    let log_y: Vec<f64> = (1..=n)
        .map(|i| {
            // µ(1-c)/β · (µ/λ)^{i-1} / (i-1)!
            let mut lf = 0.0;
            for k in 2..i {
                lf += (k as f64).ln();
            }
            if (1.0 - c) == 0.0 {
                f64::NEG_INFINITY
            } else {
                (mu * (1.0 - c) / beta).ln() + (i as f64 - 1.0) * ratio.ln() - lf
            }
        })
        .collect();
    let max = log_op
        .iter()
        .chain(log_y.iter())
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let op: Vec<f64> = log_op.iter().map(|l| (l - max).exp()).collect();
    let y: Vec<f64> = log_y.iter().map(|l| (l - max).exp()).collect();
    let total: f64 = op.iter().sum::<f64>() + y.iter().sum::<f64>();
    Ok((
        op.into_iter().map(|v| v / total).collect(),
        y.into_iter().map(|v| v / total).collect(),
    ))
}

/// Redundant-farm web-service availability with perfect coverage —
/// equation (5): `A(WS) = 1 − [Σ_i Π_i p_K(i) + Π_0]`.
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn redundant_perfect_availability(params: &TaParameters) -> Result<f64, TravelError> {
    params.validate()?;
    let pi = farm_distribution_perfect(params)?;
    let mut states = Vec::with_capacity(pi.len());
    states.push(CompositeState::new(pi[0], 0.0)); // all servers down
    for (i, &p) in pi.iter().enumerate().skip(1) {
        states.push(CompositeState::new(p, 1.0 - loss_probability(params, i)?));
    }
    Ok(composite_availability(&states)?)
}

/// Redundant-farm web-service availability with perfect coverage,
/// computed entirely in `ctx`'s reusable buffers — the allocation-free
/// twin of [`redundant_perfect_availability`], bit-for-bit identical.
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn redundant_perfect_availability_with(
    params: &TaParameters,
    ctx: &mut EvalContext,
) -> Result<f64, TravelError> {
    params.validate()?;
    ctx.note_use();
    let key = EvalContext::avail_key(true, params);
    if let Some(&a) = ctx.avail_memo.get(&key) {
        uavail_obs::trace_instant("travel.eval_context.memo_hit");
        return Ok(a);
    }
    farm_distribution_perfect_into(params, ctx)?;
    let EvalContext {
        farm_op,
        states,
        dist_buf,
        ..
    } = ctx;
    states.clear();
    states.push(CompositeState::new(farm_op[0], 0.0)); // all servers down
    for (i, &p) in farm_op.iter().enumerate().skip(1) {
        states.push(CompositeState::new(
            p,
            1.0 - loss_probability_with(params, i, dist_buf)?,
        ));
    }
    let a = composite_availability(states)?;
    ctx.remember_availability(key, a);
    Ok(a)
}

/// Redundant-farm web-service availability with imperfect coverage —
/// equation (9):
/// `A(WS) = 1 − [Σ_i Π_i p_K(i) + Σ_i Π_{y_i} + Π_0]`.
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn redundant_imperfect_availability(params: &TaParameters) -> Result<f64, TravelError> {
    params.validate()?;
    let (op, y) = farm_distribution_imperfect(params)?;
    let mut states = Vec::with_capacity(op.len() + y.len());
    states.push(CompositeState::new(op[0], 0.0));
    for (i, &p) in op.iter().enumerate().skip(1) {
        states.push(CompositeState::new(p, 1.0 - loss_probability(params, i)?));
    }
    for &p in &y {
        states.push(CompositeState::new(p, 0.0)); // reconfiguration = down
    }
    Ok(composite_availability(&states)?)
}

/// Redundant-farm web-service availability with imperfect coverage,
/// computed entirely in `ctx`'s reusable buffers — the allocation-free
/// twin of [`redundant_imperfect_availability`], bit-for-bit identical.
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn redundant_imperfect_availability_with(
    params: &TaParameters,
    ctx: &mut EvalContext,
) -> Result<f64, TravelError> {
    params.validate()?;
    ctx.note_use();
    let key = EvalContext::avail_key(false, params);
    if let Some(&a) = ctx.avail_memo.get(&key) {
        uavail_obs::trace_instant("travel.eval_context.memo_hit");
        return Ok(a);
    }
    farm_distribution_imperfect_into(params, ctx)?;
    let EvalContext {
        farm_op,
        farm_y,
        states,
        dist_buf,
        ..
    } = ctx;
    states.clear();
    states.push(CompositeState::new(farm_op[0], 0.0));
    for (i, &p) in farm_op.iter().enumerate().skip(1) {
        states.push(CompositeState::new(
            p,
            1.0 - loss_probability_with(params, i, dist_buf)?,
        ));
    }
    for &p in farm_y.iter() {
        states.push(CompositeState::new(p, 0.0)); // reconfiguration = down
    }
    let a = composite_availability(states)?;
    ctx.remember_availability(key, a);
    Ok(a)
}

/// Redundant-farm availability with imperfect coverage — equation (9) —
/// evaluated end to end through the sparse pipeline for large farms.
///
/// Differs from [`redundant_imperfect_availability`] in two ways that
/// matter past ~10³ states:
///
/// 1. the farm chain is always solved sparsely
///    ([`farm_distribution_imperfect_sparse`]);
/// 2. states whose stationary mass is below `1e-15` contribute service
///    `0.0` without evaluating their M/M/i/K loss model, so the cost of
///    the performance layer scales with the states that actually carry
///    mass (a handful near all-up for the paper's stiff rates) instead
///    of with `N_W × K`. The availability underestimate this introduces
///    is bounded by `(2·N_W + 1) × 1e-15`.
///
/// The composite combination itself streams through
/// [`composite_availability_from_iter`] without materializing the
/// `2·N_W + 1` composite states.
///
/// # Errors
///
/// Propagates parameter-domain failures.
pub fn redundant_imperfect_availability_sparse(params: &TaParameters) -> Result<f64, TravelError> {
    params.validate()?;
    let (op, y) = farm_distribution_imperfect_sparse(params)?;
    // Evaluate the performance model only where the availability model
    // leaves non-negligible mass; state 0 (all down) serves nothing.
    let mut service = vec![0.0f64; op.len()];
    for (i, &p) in op.iter().enumerate().skip(1) {
        if p >= NEGLIGIBLE_MASS {
            service[i] = 1.0 - loss_probability(params, i)?;
        }
    }
    let states = op
        .iter()
        .enumerate()
        .map(|(i, &p)| CompositeState::new(p, service[i]))
        .chain(y.iter().map(|&p| CompositeState::new(p, 0.0)));
    Ok(composite_availability_from_iter(states)?)
}

/// Mean time (hours) from the all-up state until the web service is
/// structurally down — all servers failed or a manual reconfiguration in
/// progress (the Figure 10 down states).
///
/// Complements the steady-state availability: two architectures with the
/// same availability can have very different outage frequencies.
///
/// # Errors
///
/// Propagates parameter-domain and chain failures.
pub fn mean_time_to_web_down(params: &TaParameters) -> Result<f64, TravelError> {
    params.validate()?;
    let n = params.web_servers;
    let lambda = params.failure_rate_per_hour;
    let mu = params.repair_rate_per_hour;
    let c = params.coverage;
    let beta = params.reconfiguration_rate_per_hour;

    if c >= 1.0 {
        // Pure birth-death descent: use the numerically stable closed
        // form — at λ = 1e-4, µ = 1 and N_W ≥ 6 the MTTF exceeds 1e20 h
        // and dense hitting-time solvers cancel catastrophically.
        let births = vec![mu; n];
        let deaths: Vec<f64> = (1..=n).map(|i| i as f64 * lambda).collect();
        return Ok(BirthDeath::new(births, deaths)?.mean_passage_to_zero(n)?);
    }

    let mut b = CtmcBuilder::new();
    let op: Vec<_> = (0..=n).map(|i| b.add_state(format!("up{i}"))).collect();
    let y: Vec<_> = (1..=n).map(|i| b.add_state(format!("y{i}"))).collect();
    for i in 1..=n {
        if c > 0.0 {
            b.add_transition(op[i], op[i - 1], i as f64 * c * lambda)?;
        }
        if c < 1.0 {
            b.add_transition(op[i], y[i - 1], i as f64 * (1.0 - c) * lambda)?;
            b.add_transition(y[i - 1], op[i - 1], beta)?;
        }
        b.add_transition(op[i - 1], op[i], mu)?;
    }
    let chain = b.build()?;
    // Down = state 0 plus every reconfiguration state.
    let mut targets = vec![op[0]];
    targets.extend(y.iter().copied());
    Ok(chain.mean_time_to(op[n], &targets)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TaParameters {
        TaParameters::paper_defaults()
    }

    #[test]
    fn equation_1_at_full_load() {
        // rho = 1, K = 10: p_K = 1/11.
        let p = loss_probability_basic(&params()).unwrap();
        assert!((p - 1.0 / 11.0).abs() < 1e-14);
    }

    #[test]
    fn equation_2_basic_architecture() {
        let a = basic_availability(&params()).unwrap();
        let expected = 0.996 * (1.0 - 1.0 / 11.0);
        assert!((a - expected).abs() < 1e-14);
    }

    #[test]
    fn equation_3_known_value() {
        // Hand-computed in the reproduction notes: p_K(4) ≈ 3.737e-6 for
        // a = 1, K = 10.
        let p = loss_probability(&params(), 4).unwrap();
        assert!((p - 3.737e-6).abs() < 0.01e-6, "{p}");
    }

    #[test]
    fn loss_probability_memo_is_transparent() {
        let p = params();
        let first = loss_probability(&p, 3).unwrap();
        let cached = loss_probability(&p, 3).unwrap();
        assert_eq!(first.to_bits(), cached.to_bits());
        let direct = MMcK::new(
            p.arrival_rate_per_second,
            p.service_rate_per_second,
            3,
            p.buffer_size,
        )
        .unwrap()
        .loss_probability();
        assert_eq!(first.to_bits(), direct.to_bits());
    }

    #[test]
    fn loss_cache_stays_under_cap_with_bounded_eviction() {
        // Feed more distinct keys than the cap by perturbing the arrival
        // rate one ulp-ish step at a time; overflowing shards must evict
        // bounded batches rather than grow without bound. (Other tests
        // share the process-wide cache, but eviction is transparent to
        // them.)
        let cap = loss_cache_capacity();
        for i in 0..(cap + 16) {
            let p = TaParameters::builder()
                .arrival_rate_per_second(50.0 + i as f64 * 1e-7)
                .build()
                .unwrap();
            loss_probability(&p, 2).unwrap();
        }
        assert!(
            loss_cache_len() <= cap,
            "cache len {} exceeds cap {cap}",
            loss_cache_len()
        );
    }

    #[test]
    fn equation_4_shape() {
        let pi = farm_distribution_perfect(&params()).unwrap();
        assert_eq!(pi.len(), 5);
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // Overwhelming mass at all-up for λ = 1e-4, µ = 1.
        assert!(pi[4] > 0.999);
    }

    #[test]
    fn closed_form_matches_gth_solution() {
        for coverage in [0.5, 0.9, 0.98] {
            let p = TaParameters::builder().coverage(coverage).build().unwrap();
            let (op_num, y_num) = farm_distribution_imperfect(&p).unwrap();
            let (op_cf, y_cf) = farm_distribution_imperfect_closed_form(&p).unwrap();
            for (a, b) in op_num.iter().zip(&op_cf) {
                let scale = a.abs().max(1e-300);
                assert!(
                    ((a - b) / scale).abs() < 1e-8,
                    "coverage {coverage}: {a} vs {b}"
                );
            }
            for (a, b) in y_num.iter().zip(&y_cf) {
                let scale = a.abs().max(1e-300);
                assert!(
                    ((a - b) / scale).abs() < 1e-8,
                    "coverage {coverage} y: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn paper_headline_ws_availability() {
        // Table 7: A(WS) = 0.999995587 for the reference parameters.
        let a = redundant_imperfect_availability(&params()).unwrap();
        assert!(
            (a - 0.999995587).abs() < 1e-8,
            "A(WS) = {a:.9}, expected 0.999995587"
        );
    }

    #[test]
    fn perfect_coverage_beats_imperfect() {
        let p = params();
        let perfect = redundant_perfect_availability(&p).unwrap();
        let imperfect = redundant_imperfect_availability(&p).unwrap();
        assert!(perfect > imperfect);
    }

    #[test]
    fn imperfect_with_full_coverage_equals_perfect() {
        let p = TaParameters::builder().coverage(1.0).build().unwrap();
        let a = redundant_imperfect_availability(&p).unwrap();
        let b = redundant_perfect_availability(&p).unwrap();
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn single_server_farm_matches_basic_performance_part() {
        // With one server, the M/M/i/K part must equal equation (1).
        let p = TaParameters::builder().web_servers(1).build().unwrap();
        let pk1 = loss_probability(&p, 1).unwrap();
        let pk_basic = loss_probability_basic(&p).unwrap();
        assert!((pk1 - pk_basic).abs() < 1e-14);
    }

    #[test]
    fn redundancy_helps_at_moderate_load() {
        // At alpha = 50/s, more servers monotonically improve A(WS) under
        // perfect coverage.
        let mut prev = 0.0;
        for nw in 1..=6 {
            let p = TaParameters::builder()
                .web_servers(nw)
                .arrival_rate_per_second(50.0)
                .build()
                .unwrap();
            let a = redundant_perfect_availability(&p).unwrap();
            assert!(a > prev, "NW = {nw}: {a} !> {prev}");
            prev = a;
        }
    }

    #[test]
    fn mttf_two_server_perfect_coverage_closed_form() {
        // Known result for 2 machines, shared repair, perfect coverage:
        // MTTF = (3λ + µ) / (2λ²).
        let (lambda, mu) = (0.01, 1.0);
        let p = TaParameters::builder()
            .web_servers(2)
            .failure_rate_per_hour(lambda)
            .repair_rate_per_hour(mu)
            .coverage(1.0)
            .build()
            .unwrap();
        let mttf = mean_time_to_web_down(&p).unwrap();
        let expected = (3.0 * lambda + mu) / (2.0 * lambda * lambda);
        assert!(
            ((mttf - expected) / expected).abs() < 1e-12,
            "{mttf} vs {expected}"
        );
    }

    #[test]
    fn imperfect_coverage_slashes_mttf() {
        // Uncovered failures create a much nearer down state: MTTF drops
        // by orders of magnitude relative to perfect coverage.
        let perfect = TaParameters::builder().coverage(1.0).build().unwrap();
        let imperfect = params(); // c = 0.98
        let mttf_perfect = mean_time_to_web_down(&perfect).unwrap();
        let mttf_imperfect = mean_time_to_web_down(&imperfect).unwrap();
        assert!(
            mttf_imperfect < mttf_perfect / 100.0,
            "perfect {mttf_perfect:.3e} vs imperfect {mttf_imperfect:.3e}"
        );
        // Roughly 1 / (N λ (1-c)) for the first uncovered failure.
        let rough = 1.0 / (4.0 * 1e-4 * 0.02);
        assert!(
            mttf_imperfect > 0.5 * rough && mttf_imperfect < 2.0 * rough,
            "{mttf_imperfect} vs rough {rough}"
        );
    }

    #[test]
    fn more_servers_longer_mttf_under_perfect_coverage() {
        let mttf = |nw: usize| {
            let p = TaParameters::builder()
                .web_servers(nw)
                .coverage(1.0)
                .failure_rate_per_hour(1e-2)
                .build()
                .unwrap();
            mean_time_to_web_down(&p).unwrap()
        };
        assert!(mttf(3) > mttf(2));
        assert!(mttf(4) > mttf(3));
    }

    #[test]
    fn sparse_farm_distribution_is_bit_identical_to_dense() {
        // Below the sparse heuristic's dense cutoff the sparse path
        // densifies a bit-identical generator and runs the same GTH, so
        // the distributions must match bit for bit.
        let p = params();
        let (op_d, y_d) = farm_distribution_imperfect(&p).unwrap();
        let (op_s, y_s) = farm_distribution_imperfect_sparse(&p).unwrap();
        for (a, b) in op_d.iter().zip(&op_s) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in y_d.iter().zip(&y_s) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sparse_availability_matches_dense_on_small_farm() {
        let p = params();
        let dense = redundant_imperfect_availability(&p).unwrap();
        let sparse = redundant_imperfect_availability_sparse(&p).unwrap();
        assert_eq!(dense.to_bits(), sparse.to_bits());
    }

    #[test]
    fn large_farm_routes_sparse_and_matches_closed_form() {
        // 600 servers → 1201 composite states: past the sparse cutoff,
        // so farm_distribution_imperfect itself takes the sparse route.
        let p = TaParameters::builder()
            .web_servers(600)
            .buffer_size(600)
            .build()
            .unwrap();
        let (op, y) = farm_distribution_imperfect(&p).unwrap();
        let (op_cf, y_cf) = farm_distribution_imperfect_closed_form(&p).unwrap();
        assert_eq!(op.len(), 601);
        assert_eq!(y.len(), 600);
        // States carrying real mass must agree tightly in relative
        // terms; negligible-mass states only need absolute agreement
        // (their relative error is irrelevant to any availability sum).
        for (a, b) in op.iter().zip(&op_cf).chain(y.iter().zip(&y_cf)) {
            if *b > 1e-9 {
                assert!(((a - b) / b).abs() < 1e-6, "{a} vs {b}");
            } else {
                assert!((a - b).abs() < 1e-12, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn farm_memo_replays_exact_bits() {
        // A repeated parameter point must replay the stored solution of
        // the first computation bit for bit — and both must equal the
        // cold allocating path.
        let p = params();
        let (op_cold, y_cold) = farm_distribution_imperfect(&p).unwrap();
        let mut ctx = EvalContext::new();
        for _ in 0..2 {
            farm_distribution_imperfect_with(&p, &mut ctx).unwrap();
            for (a, b) in ctx.farm_op.iter().zip(&op_cold) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            for (a, b) in ctx.farm_y.iter().zip(&y_cold) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn sparse_structure_reuse_is_bit_identical_across_rate_changes() {
        // 600 servers routes the context path through the sparse
        // assembler. Two different failure rates share the farm shape, so
        // the second solve refills the cached CSR pattern — and must
        // still produce the exact bits of the from-scratch sparse path.
        let point = |lambda: f64| {
            TaParameters::builder()
                .web_servers(600)
                .buffer_size(600)
                .failure_rate_per_hour(lambda)
                .build()
                .unwrap()
        };
        let mut ctx = EvalContext::new();
        farm_distribution_imperfect_with(&point(1e-6), &mut ctx).unwrap();
        assert!(
            ctx.farm_structure.is_some(),
            "first sparse solve must cache the CSR pattern"
        );
        farm_distribution_imperfect_with(&point(2e-6), &mut ctx).unwrap();
        let (op_cold, y_cold) = farm_distribution_imperfect_sparse(&point(2e-6)).unwrap();
        for (a, b) in ctx.farm_op.iter().zip(&op_cold) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in ctx.farm_y.iter().zip(&y_cold) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn primed_loss_family_is_transparent_to_scalar_lookups() {
        // Prime with a fresh arrival rate (unique cache keys), then check
        // every memoized lane against a direct incremental M/M/c/K solve.
        let p = TaParameters::builder()
            .web_servers(10)
            .arrival_rate_per_second(123.456)
            .build()
            .unwrap();
        let mut buf = Vec::new();
        prime_loss_family(&p, 10, &mut buf).unwrap();
        for i in 1..=10 {
            let cached = loss_probability(&p, i).unwrap();
            let direct = MMcK::new(
                p.arrival_rate_per_second,
                p.service_rate_per_second,
                i,
                p.buffer_size,
            )
            .unwrap()
            .loss_probability();
            assert_eq!(cached.to_bits(), direct.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn imperfect_coverage_reversal_at_high_server_count() {
        // Figure 12's key finding: with imperfect coverage, adding servers
        // beyond ~4 *hurts*, because uncovered failures scale with N_W.
        let availability = |nw: usize| {
            let p = TaParameters::builder()
                .web_servers(nw)
                .arrival_rate_per_second(50.0)
                .failure_rate_per_hour(1e-2)
                .build()
                .unwrap();
            redundant_imperfect_availability(&p).unwrap()
        };
        let a4 = availability(4);
        let a10 = availability(10);
        assert!(
            a10 < a4,
            "expected reversal: A(10) = {a10} should be below A(4) = {a4}"
        );
    }
}
