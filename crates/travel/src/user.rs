//! User-level model — Table 1 and equation (10) of the paper.
//!
//! Two implementations of the user-perceived availability are provided and
//! tested against each other:
//!
//! * [`equation_10`] — the paper's closed form, transcribed literally;
//! * [`user_availability`] — a *generic* composition that, for every user
//!   scenario, enumerates the joint function-scenario combinations and
//!   multiplies the availabilities of the **distinct** services used. This
//!   performs mechanically the "careful analysis of the dependencies …
//!   due to shared services" the paper calls for, and reproduces
//!   equation (10) exactly (shared services counted once; Browse's
//!   conditional availability collapsing to 1 in Search scenarios).

use std::collections::{BTreeSet, HashMap};

use uavail_profile::{Scenario, ScenarioCategory, ScenarioTable};

use crate::context::{EvalContext, ScenarioKey};
use crate::functions::{self, TaFunction};
use crate::{TaParameters, TravelError};

/// A named user class: an operational profile in scenario-table form.
#[derive(Debug, Clone, PartialEq)]
pub struct UserClass {
    name: String,
    table: ScenarioTable,
}

impl UserClass {
    /// Wraps a validated scenario table under a display name.
    pub fn new(name: impl Into<String>, table: ScenarioTable) -> Self {
        UserClass {
            name: name.into(),
            table,
        }
    }

    /// The class name (`"A"` or `"B"` for the paper's profiles).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario table.
    pub fn table(&self) -> &ScenarioTable {
        &self.table
    }
}

fn scenario(label: &str, functions: &[TaFunction], percent: f64) -> Scenario {
    Scenario::new(
        label,
        functions.iter().map(|f| f.name()).collect::<Vec<_>>(),
        percent / 100.0,
    )
}

/// The twelve Table 1 scenarios with a class-specific probability column.
fn table1(percentages: [f64; 12]) -> ScenarioTable {
    use TaFunction::{Book, Browse, Home, Pay, Search};
    let rows: [(&str, &[TaFunction]); 12] = [
        ("St-Ho-Ex", &[Home]),
        ("St-Br-Ex", &[Browse]),
        ("St-{Ho-Br}*-Ex", &[Home, Browse]),
        ("St-Ho-Se-Ex", &[Home, Search]),
        ("St-Br-Se-Ex", &[Browse, Search]),
        ("St-{Ho-Br}*-Se-Ex", &[Home, Browse, Search]),
        ("St-Ho-{Se-Bo}*-Ex", &[Home, Search, Book]),
        ("St-Br-{Se-Bo}*-Ex", &[Browse, Search, Book]),
        ("St-{Ho-Br}*-{Se-Bo}*-Ex", &[Home, Browse, Search, Book]),
        ("St-Ho-{Se-Bo}*-Pa-Ex", &[Home, Search, Book, Pay]),
        ("St-Br-{Se-Bo}*-Pa-Ex", &[Browse, Search, Book, Pay]),
        (
            "St-{Ho-Br}*-{Se-Bo}*-Pa-Ex",
            &[Home, Browse, Search, Book, Pay],
        ),
    ];
    let scenarios = rows
        .iter()
        .zip(percentages)
        .map(|((label, fns), pct)| scenario(label, fns, pct))
        .collect();
    ScenarioTable::new(scenarios).expect("Table 1 percentages sum to 100")
}

/// The paper's class A profile (information seekers; Table 1, column A).
pub fn class_a() -> UserClass {
    UserClass::new(
        "A",
        table1([
            10.0, 26.7, 11.3, 18.4, 12.2, 7.6, 3.0, 2.0, 1.3, 3.6, 2.4, 1.5,
        ]),
    )
}

/// The paper's class B profile (buyers; Table 1, column B).
pub fn class_b() -> UserClass {
    UserClass::new(
        "B",
        table1([
            10.0, 6.6, 4.2, 13.9, 20.4, 9.7, 4.7, 6.9, 3.3, 6.4, 9.4, 4.5,
        ]),
    )
}

fn parse_function(name: &str) -> Result<TaFunction, TravelError> {
    TaFunction::all()
        .into_iter()
        .find(|f| f.name() == name)
        .ok_or(TravelError::InvalidParameter {
            name: "scenario function",
            value: f64::NAN,
            requirement: "one of Home/Browse/Search/Book/Pay",
        })
}

/// Availability of one user scenario given per-service availabilities:
/// the expectation, over the functions' internal path choices, of the
/// probability that every *distinct* service used is available.
///
/// # Errors
///
/// Propagates diagram failures and missing service availabilities.
pub fn scenario_availability(
    scenario: &Scenario,
    params: &TaParameters,
    services: &HashMap<String, f64>,
) -> Result<f64, TravelError> {
    // Path lists per function in the scenario.
    let mut per_function: Vec<Vec<(f64, Vec<String>)>> = Vec::new();
    for fname in &scenario.functions {
        let function = parse_function(fname)?;
        per_function.push(functions::function_scenarios(function, params)?);
    }
    // Cartesian expansion over the functions' path choices.
    let mut total = 0.0;
    let mut stack: Vec<(usize, f64, BTreeSet<String>)> = vec![(0, 1.0, BTreeSet::new())];
    while let Some((depth, prob, used)) = stack.pop() {
        if depth == per_function.len() {
            let mut product = prob;
            for svc in &used {
                let a = services.get(svc).copied().ok_or_else(|| {
                    TravelError::Core(uavail_core::CoreError::Undefined { name: svc.clone() })
                })?;
                product *= a;
            }
            total += product;
            continue;
        }
        for (p, svcs) in &per_function[depth] {
            let mut next = used.clone();
            next.extend(svcs.iter().cloned());
            stack.push((depth + 1, prob * p, next));
        }
    }
    Ok(total)
}

/// The Cartesian service expansion of one scenario: the DFS terminals of
/// [`scenario_availability`]'s stack loop, recorded in exact pop order so
/// a replay multiplies the same factors in the same order and reproduces
/// the cold result bit for bit.
fn expand_scenario(
    scenario: &Scenario,
    params: &TaParameters,
) -> Result<Vec<(f64, Vec<String>)>, TravelError> {
    let mut per_function: Vec<Vec<(f64, Vec<String>)>> = Vec::new();
    for fname in &scenario.functions {
        let function = parse_function(fname)?;
        per_function.push(functions::function_scenarios(function, params)?);
    }
    let mut terms = Vec::new();
    let mut stack: Vec<(usize, f64, BTreeSet<String>)> = vec![(0, 1.0, BTreeSet::new())];
    while let Some((depth, prob, used)) = stack.pop() {
        if depth == per_function.len() {
            // BTreeSet iterates sorted, so the stored Vec preserves the
            // cold path's multiplication order.
            terms.push((prob, used.into_iter().collect()));
            continue;
        }
        for (p, svcs) in &per_function[depth] {
            let mut next = used.clone();
            next.extend(svcs.iter().cloned());
            stack.push((depth + 1, prob * p, next));
        }
    }
    Ok(terms)
}

/// [`scenario_availability`] backed by `ctx`'s scenario-expansion memo:
/// the Cartesian expansion over function path choices — which depends only
/// on the scenario's function list and the `q23`/`q24`/`q45`/`q47` branch
/// probabilities, not on the service environment — is computed once and
/// replayed for every subsequent environment, bit-for-bit.
///
/// # Errors
///
/// Propagates diagram failures and missing service availabilities.
pub fn scenario_availability_with(
    scenario: &Scenario,
    params: &TaParameters,
    services: &HashMap<String, f64>,
    ctx: &mut EvalContext,
) -> Result<f64, TravelError> {
    let key: ScenarioKey = (
        scenario.functions.clone(),
        [
            params.q23.to_bits(),
            params.q24.to_bits(),
            params.q45.to_bits(),
            params.q47.to_bits(),
        ],
    );
    if !ctx.scenario_memo.contains_key(&key) {
        let terms = expand_scenario(scenario, params)?;
        ctx.remember_scenario(key.clone(), terms);
    }
    let terms = ctx
        .scenario_memo
        .get(&key)
        .expect("expansion just memoized");
    let mut total = 0.0;
    for (prob, svcs) in terms {
        let mut product = *prob;
        for svc in svcs {
            let a = services.get(svc).copied().ok_or_else(|| {
                TravelError::Core(uavail_core::CoreError::Undefined { name: svc.clone() })
            })?;
            product *= a;
        }
        total += product;
    }
    Ok(total)
}

/// [`user_availability`] backed by `ctx`'s scenario-expansion memo — see
/// [`scenario_availability_with`].
///
/// # Errors
///
/// Propagates scenario-availability failures.
pub fn user_availability_with(
    class: &UserClass,
    params: &TaParameters,
    services: &HashMap<String, f64>,
    ctx: &mut EvalContext,
) -> Result<f64, TravelError> {
    let mut total = 0.0;
    for s in class.table.scenarios() {
        total += s.probability * scenario_availability_with(s, params, services, ctx)?;
    }
    Ok(total)
}

/// User-perceived availability for a class: `Σ_i π_i · A(scenario_i)`
/// with [`scenario_availability`] — the generic composition.
///
/// # Errors
///
/// Propagates scenario-availability failures.
pub fn user_availability(
    class: &UserClass,
    params: &TaParameters,
    services: &HashMap<String, f64>,
) -> Result<f64, TravelError> {
    let mut total = 0.0;
    for s in class.table.scenarios() {
        total += s.probability * scenario_availability(s, params, services)?;
    }
    Ok(total)
}

/// The paper's equation (10), transcribed literally.
///
/// # Errors
///
/// [`TravelError::Core`] when a service availability is missing from the
/// environment.
pub fn equation_10(
    class: &UserClass,
    params: &TaParameters,
    services: &HashMap<String, f64>,
) -> Result<f64, TravelError> {
    let get = |name: &str| -> Result<f64, TravelError> {
        services.get(name).copied().ok_or_else(|| {
            TravelError::Core(uavail_core::CoreError::Undefined { name: name.into() })
        })
    };
    let a_net = get(functions::SERVICE_NET)?;
    let a_lan = get(functions::SERVICE_LAN)?;
    let a_ws = get(functions::SERVICE_WEB)?;
    let a_as = get(functions::SERVICE_APP)?;
    let a_ds = get(functions::SERVICE_DB)?;
    let a_f = get(functions::SERVICE_FLIGHT)?;
    let a_h = get(functions::SERVICE_HOTEL)?;
    let a_c = get(functions::SERVICE_CAR)?;
    let a_ps = get(functions::SERVICE_PAYMENT)?;

    let table = class.table();
    let pi1 =
        table.probability_where(|s| s.functions.len() == 1 && s.invokes(TaFunction::Home.name()));
    let cats = table.by_category(
        TaFunction::Search.name(),
        TaFunction::Book.name(),
        TaFunction::Pay.name(),
    );
    let sc1 = cats
        .get(&ScenarioCategory::Sc1InformationOnly)
        .copied()
        .unwrap_or(0.0);
    let pi23 = sc1 - pi1;
    let sc23 = cats
        .get(&ScenarioCategory::Sc2SearchOnly)
        .copied()
        .unwrap_or(0.0)
        + cats
            .get(&ScenarioCategory::Sc3BookWithoutPay)
            .copied()
            .unwrap_or(0.0);
    let sc4 = cats.get(&ScenarioCategory::Sc4Pay).copied().unwrap_or(0.0);

    let browse_bracket =
        params.q23 + a_as * (params.q24 * params.q45 + params.q24 * params.q47 * a_ds);
    let reservation = a_as * a_ds * a_f * a_h * a_c;
    Ok(a_net * a_lan * a_ws * (pi1 + pi23 * browse_bracket + reservation * (sc23 + sc4 * a_ps)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functions::{
        SERVICE_APP, SERVICE_CAR, SERVICE_DB, SERVICE_FLIGHT, SERVICE_HOTEL, SERVICE_LAN,
        SERVICE_NET, SERVICE_PAYMENT, SERVICE_WEB,
    };

    fn env() -> HashMap<String, f64> {
        let mut env = HashMap::new();
        env.insert(SERVICE_NET.to_string(), 0.9966);
        env.insert(SERVICE_LAN.to_string(), 0.9966);
        env.insert(SERVICE_WEB.to_string(), 0.999995587);
        env.insert(SERVICE_APP.to_string(), 0.999984);
        env.insert(SERVICE_DB.to_string(), 0.98998416);
        env.insert(SERVICE_FLIGHT.to_string(), 0.9);
        env.insert(SERVICE_HOTEL.to_string(), 0.9);
        env.insert(SERVICE_CAR.to_string(), 0.9);
        env.insert(SERVICE_PAYMENT.to_string(), 0.9);
        env
    }

    #[test]
    fn table1_probabilities_sum_to_one() {
        for class in [class_a(), class_b()] {
            let total: f64 = class
                .table()
                .scenarios()
                .iter()
                .map(|s| s.probability)
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "class {}", class.name());
            assert_eq!(class.table().len(), 12);
        }
    }

    #[test]
    fn class_b_buys_more() {
        // The paper: ~20% of class B sessions pay vs ~7.5% for class A.
        let pay = |class: &UserClass| class.table().probability_where(|s| s.invokes("Pay"));
        assert!((pay(&class_b()) - 0.203).abs() < 1e-9);
        assert!((pay(&class_a()) - 0.075).abs() < 1e-9);
    }

    #[test]
    fn class_b_uses_reservation_systems_more() {
        // 80% of class B sessions invoke Search/Book/Pay vs 50% for A.
        let heavy = |class: &UserClass| class.table().probability_where(|s| s.invokes("Search"));
        assert!((heavy(&class_b()) - 0.792).abs() < 1e-9);
        assert!((heavy(&class_a()) - 0.52).abs() < 1e-9);
    }

    #[test]
    fn generic_composition_matches_equation_10() {
        let params = TaParameters::paper_defaults();
        let env = env();
        for class in [class_a(), class_b()] {
            let generic = user_availability(&class, &params, &env).unwrap();
            let closed = equation_10(&class, &params, &env).unwrap();
            assert!(
                (generic - closed).abs() < 1e-12,
                "class {}: generic {generic} vs eq10 {closed}",
                class.name()
            );
        }
    }

    #[test]
    fn scenario_availability_home_only() {
        let params = TaParameters::paper_defaults();
        let env = env();
        let class = class_a();
        let s = &class.table().scenarios()[0]; // St-Ho-Ex
        let a = scenario_availability(s, &params, &env).unwrap();
        let expected = 0.9966 * 0.9966 * 0.999995587;
        assert!((a - expected).abs() < 1e-12);
    }

    #[test]
    fn search_scenarios_unaffected_by_browse_branching() {
        // In a {Browse, Search} scenario the Browse bracket collapses to 1.
        let params = TaParameters::paper_defaults();
        let env = env();
        let table = class_a();
        let with_browse = table
            .table()
            .scenarios()
            .iter()
            .find(|s| s.label == "St-Br-Se-Ex")
            .unwrap();
        let without_browse = table
            .table()
            .scenarios()
            .iter()
            .find(|s| s.label == "St-Ho-Se-Ex")
            .unwrap();
        let a1 = scenario_availability(with_browse, &params, &env).unwrap();
        let a2 = scenario_availability(without_browse, &params, &env).unwrap();
        assert!((a1 - a2).abs() < 1e-15);
    }

    #[test]
    fn class_a_availability_exceeds_class_b() {
        // Buyers touch more services, so class B perceives lower
        // availability (Table 8's consistent ordering).
        let params = TaParameters::paper_defaults();
        let env = env();
        let a = user_availability(&class_a(), &params, &env).unwrap();
        let b = user_availability(&class_b(), &params, &env).unwrap();
        assert!(a > b, "A {a} vs B {b}");
    }

    #[test]
    fn memoized_user_availability_is_bit_identical() {
        let params = TaParameters::paper_defaults();
        let env = env();
        let mut ctx = EvalContext::new();
        for class in [class_a(), class_b()] {
            let cold = user_availability(&class, &params, &env).unwrap();
            // First call builds the expansion memo; later calls replay it.
            for _ in 0..3 {
                let warm = user_availability_with(&class, &params, &env, &mut ctx).unwrap();
                assert_eq!(warm.to_bits(), cold.to_bits());
            }
        }
    }

    #[test]
    fn memoized_path_still_reports_missing_services() {
        let params = TaParameters::paper_defaults();
        let mut bad_env = env();
        bad_env.remove(SERVICE_DB);
        let mut ctx = EvalContext::new();
        assert!(user_availability_with(&class_a(), &params, &bad_env, &mut ctx).is_err());
    }

    #[test]
    fn missing_service_is_reported() {
        let params = TaParameters::paper_defaults();
        let mut bad_env = env();
        bad_env.remove(SERVICE_DB);
        assert!(user_availability(&class_a(), &params, &bad_env).is_err());
        assert!(equation_10(&class_a(), &params, &bad_env).is_err());
    }

    #[test]
    fn paper_table8_class_a_single_reservation_system() {
        // Table 8 row N=1, class A: 0.84235. Our model reproduces it to
        // ~1e-4 absolute (the paper's own intermediate values are printed
        // rounded).
        let params = TaParameters::paper_defaults().with_reservation_systems(1);
        let env = env(); // env already uses A(system) = 0.9, N = 1
        let a = user_availability(&class_a(), &params, &env).unwrap();
        assert!((a - 0.84235).abs() < 2e-4, "got {a}, paper 0.84235");
    }
}
