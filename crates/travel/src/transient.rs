//! Transient (time-dependent) user-perceived availability.
//!
//! The paper evaluates steady-state measures. This module adds the time
//! dimension: starting from a freshly deployed (all-up) system, each
//! service degrades toward its steady state as a two-state Markov process
//! calibrated to the service's analytic availability; the user-perceived
//! availability at time `t` follows by evaluating the user-level
//! composition against the time-dependent service availabilities, and the
//! *interval* measure averages it over a campaign window.

use std::collections::HashMap;

use uavail_markov::{transient, CtmcBuilder};

use crate::user::{self, UserClass};
use crate::{Architecture, TaParameters, TravelAgencyModel, TravelError};

/// Time-dependent service availability: a two-state chain starting up,
/// with repair rate `repair_rate` (per hour) and failure rate calibrated
/// so the steady state equals `steady`.
fn service_availability_at(
    steady: f64,
    repair_rate: f64,
    t_hours: f64,
) -> Result<f64, TravelError> {
    if steady >= 1.0 {
        return Ok(1.0);
    }
    let failure_rate = repair_rate * (1.0 - steady) / steady;
    let mut b = CtmcBuilder::new();
    let up = b.add_state("up");
    let down = b.add_state("down");
    b.add_transition(up, down, failure_rate)?;
    b.add_transition(down, up, repair_rate)?;
    let chain = b.build()?;
    let curve = transient::point_availability(&chain, &[1.0, 0.0], &[1.0, 0.0], &[t_hours])?;
    Ok(curve[0])
}

/// One point of a user-availability ramp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RampPoint {
    /// Hours since deployment.
    pub t_hours: f64,
    /// User-perceived availability at that instant.
    pub availability: f64,
}

/// The user-perceived availability curve `A_user(t)` after a fresh
/// deployment (every service up at `t = 0`), sampled at `ts` (hours).
///
/// `repair_rate_per_hour` sets the common recovery time scale of the
/// calibrated service processes (the paper's µ = 1/h is the natural
/// choice).
///
/// # Errors
///
/// Propagated solver failures; [`TravelError::InvalidParameter`] for
/// negative times or a non-positive repair rate.
pub fn user_availability_ramp(
    class: &UserClass,
    params: &TaParameters,
    architecture: Architecture,
    repair_rate_per_hour: f64,
    ts: &[f64],
) -> Result<Vec<RampPoint>, TravelError> {
    if !(repair_rate_per_hour.is_finite() && repair_rate_per_hour > 0.0) {
        return Err(TravelError::InvalidParameter {
            name: "repair_rate_per_hour",
            value: repair_rate_per_hour,
            requirement: "finite and > 0",
        });
    }
    let model = TravelAgencyModel::new(params.clone(), architecture)?;
    let steady_env = model.service_availabilities()?;
    let mut out = Vec::with_capacity(ts.len());
    for &t in ts {
        if !(t.is_finite() && t >= 0.0) {
            return Err(TravelError::InvalidParameter {
                name: "t",
                value: t,
                requirement: "finite and >= 0",
            });
        }
        let mut env = HashMap::with_capacity(steady_env.len());
        for (name, &steady) in &steady_env {
            env.insert(
                name.clone(),
                service_availability_at(steady, repair_rate_per_hour, t)?,
            );
        }
        out.push(RampPoint {
            t_hours: t,
            availability: user::user_availability(class, params, &env)?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::class_a;

    fn ramp(ts: &[f64]) -> Vec<RampPoint> {
        user_availability_ramp(
            &class_a(),
            &TaParameters::paper_defaults(),
            Architecture::paper_reference(),
            1.0,
            ts,
        )
        .unwrap()
    }

    #[test]
    fn starts_perfect_and_decays_to_steady_state() {
        let points = ramp(&[0.0, 0.5, 1.0, 2.0, 5.0, 50.0]);
        assert!((points[0].availability - 1.0).abs() < 1e-12);
        // Monotone non-increasing from the all-up start.
        for w in points.windows(2) {
            assert!(w[1].availability <= w[0].availability + 1e-12);
        }
        // Converges to the steady-state user availability.
        let steady = TravelAgencyModel::new(
            TaParameters::paper_defaults(),
            Architecture::paper_reference(),
        )
        .unwrap()
        .user_availability(&class_a())
        .unwrap();
        let last = points.last().unwrap().availability;
        assert!((last - steady).abs() < 1e-6, "{last} vs {steady}");
    }

    #[test]
    fn relaxation_time_scale_is_hours() {
        // With µ = 1/h the ramp settles within a few hours: at t = 5 h
        // the availability is within 1% of steady state.
        let points = ramp(&[5.0, 100.0]);
        let diff = points[0].availability - points[1].availability;
        assert!(diff.abs() < 0.01, "diff {diff}");
    }

    #[test]
    fn validation() {
        let class = class_a();
        let p = TaParameters::paper_defaults();
        assert!(
            user_availability_ramp(&class, &p, Architecture::paper_reference(), 0.0, &[1.0])
                .is_err()
        );
        assert!(
            user_availability_ramp(&class, &p, Architecture::paper_reference(), 1.0, &[-1.0])
                .is_err()
        );
    }
}
