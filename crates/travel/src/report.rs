//! Plain-text and CSV rendering for reproduced tables and figures.

use std::fmt;

/// A simple titled table with headers and string rows, rendering as
/// aligned ASCII (for the terminal) or CSV (for plotting).
///
/// # Examples
///
/// ```
/// use uavail_travel::report::Table;
///
/// let mut t = Table::new("Table 8", vec!["N", "A(A users)", "A(B users)"]);
/// t.add_row(vec!["1".into(), "0.84235".into(), "0.76875".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Table 8"));
/// assert!(t.to_csv().starts_with("N,A(A users),A(B users)"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(title: impl Into<String>, headers: Vec<S>) -> Self {
        Table {
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} does not match header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// CSV rendering (header line first). Fields containing commas or
    /// quotes are quoted.
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats an availability with 5 decimal places, the paper's Table 8
/// convention.
pub fn fmt_availability(a: f64) -> String {
    format!("{a:.5}")
}

/// Formats an unavailability in scientific notation, the Figures 11–12
/// convention.
pub fn fmt_unavailability(u: f64) -> String {
    format!("{u:.3e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_rendering_aligns() {
        let mut t = Table::new("T", vec!["a", "long_header"]);
        t.add_row(vec!["1".into(), "2".into()]);
        t.add_row(vec!["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.contains("== T =="));
        assert!(s.contains("long_header"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "T");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("T", vec!["x"]);
        t.add_row(vec!["a,b".into()]);
        t.add_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", vec!["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_availability(0.842349), "0.84235");
        assert_eq!(fmt_unavailability(4.415e-6), "4.415e-6");
    }
}
