//! Cross-validation of the analytic composite model against the joint
//! discrete-event simulation (our addition to the paper — E15 in
//! DESIGN.md).
//!
//! The paper's equations (5)/(9) rest on a quasi-steady-state separation
//! argument. The [`uavail_sim::FarmSimulation`] runs the *joint* model
//! with no separation, so agreement between the two is evidence for both
//! the implementation and the assumption. Because simulating 100 req/s
//! over enough failure events is infeasible at the paper's real rates,
//! validation uses time-compressed parameters that keep the separation
//! ratio large enough (≥ ~50×) for the assumption to hold approximately.

use rand::rngs::StdRng;
use rand::SeedableRng;
use uavail_core::par::default_threads;
use uavail_sim::replicate::{replicate, replicate_fold_threads, replicate_parallel_threads};
use uavail_sim::stats::{OnlineStats, StreamingBatchMeans};
use uavail_sim::{FarmObservation, FarmSimulation, SimContext};

use crate::{webservice, TaParameters, TravelError};

/// Result of one analytic-vs-simulation comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Analytic web-service unavailability (equation 9).
    pub analytic_unavailability: f64,
    /// Simulated request-loss fraction.
    pub simulated_unavailability: f64,
    /// 99.99% binomial confidence half-interval on the simulated value.
    pub confidence_interval: (f64, f64),
    /// Requests observed.
    pub arrivals: u64,
    /// Ratio of the slowest performance rate to the fastest
    /// failure/recovery rate (the separation the composite model assumes).
    pub separation_ratio: f64,
}

impl ValidationReport {
    /// Whether the analytic value lies inside the simulation confidence
    /// interval widened by `slack` (relative), accounting for the residual
    /// quasi-steady-state error at compressed time scales.
    pub fn agrees(&self, slack: f64) -> bool {
        let (lo, hi) = self.confidence_interval;
        let lo = lo * (1.0 - slack);
        let hi = hi * (1.0 + slack);
        self.analytic_unavailability >= lo && self.analytic_unavailability <= hi
    }
}

/// Compares equation (9) against the joint simulation.
///
/// `params` must use *time-compressed* rates: everything in the same time
/// unit, with arrival/service rates interpreted per-unit rather than
/// per-second (the analytic side only consumes ratios, so this is exact
/// for it; the simulation needs enough failure events per unit of CPU).
///
/// # Errors
///
/// Propagates analytic and simulation failures.
pub fn validate_web_service(
    params: &TaParameters,
    horizon: f64,
    seed: u64,
) -> Result<ValidationReport, TravelError> {
    let _span = uavail_obs::span("travel.validate");
    let analytic = 1.0 - webservice::redundant_imperfect_availability(params)?;
    let sim = farm_simulation(params)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let obs = sim.run(&mut rng, horizon)?;
    Ok(pooled_report(params, analytic, std::slice::from_ref(&obs)))
}

/// Builds the [`FarmSimulation`] corresponding to a parameter set —
/// shared by the single-run and replicated validators.
fn farm_simulation(params: &TaParameters) -> Result<FarmSimulation, TravelError> {
    Ok(FarmSimulation::new(
        params.web_servers,
        params.failure_rate_per_hour,
        params.repair_rate_per_hour,
        params.coverage,
        params.reconfiguration_rate_per_hour,
        params.arrival_rate_per_second,
        params.service_rate_per_second,
        params.buffer_size,
    )?)
}

/// Ratio of the slowest performance rate to the fastest failure/recovery
/// rate — the time-scale separation the composite model assumes.
fn separation_ratio(params: &TaParameters) -> f64 {
    params
        .arrival_rate_per_second
        .min(params.service_rate_per_second)
        / params
            .failure_rate_per_hour
            .max(params.repair_rate_per_hour)
            .max(params.reconfiguration_rate_per_hour)
}

/// Pools per-replication farm observations into one [`ValidationReport`].
fn pooled_report(
    params: &TaParameters,
    analytic: f64,
    observations: &[FarmObservation],
) -> ValidationReport {
    let arrivals: u64 = observations.iter().map(|o| o.arrivals).sum();
    let losses: u64 = observations.iter().map(|o| o.losses).sum();
    uavail_obs::counter_add("travel.validate.arrivals", arrivals);
    uavail_obs::counter_add("travel.validate.losses", losses);
    // Feed the live SLO monitor the same observed outcomes the report is
    // built from: successes are arrivals that were not lost. Reads only
    // already-computed counts, so recording cannot perturb the report.
    uavail_obs::slo_record_outcomes("farm", arrivals.saturating_sub(losses), losses, 0);
    let pooled = uavail_sim::stats::Proportion::new(losses, arrivals);
    ValidationReport {
        analytic_unavailability: analytic,
        simulated_unavailability: pooled.estimate(),
        confidence_interval: pooled.confidence_interval(3.9),
        arrivals,
        separation_ratio: separation_ratio(params),
    }
}

/// Replicated [`validate_web_service`]: runs `replications` independent
/// simulations of `horizon` time units each — on all available cores —
/// and pools their arrival/loss counts into one report with a
/// correspondingly tighter confidence interval.
///
/// Each replication owns an RNG stream derived from `base_seed` (see
/// [`uavail_sim::replicate`]), so the pooled counts are identical no
/// matter how many threads run the batch, and identical to running the
/// replications one after another.
///
/// # Errors
///
/// Propagates analytic and simulation failures (the error of the lowest
/// failing replication index).
pub fn validate_web_service_replicated(
    params: &TaParameters,
    horizon: f64,
    base_seed: u64,
    replications: usize,
) -> Result<ValidationReport, TravelError> {
    validate_web_service_replicated_threads(
        params,
        horizon,
        base_seed,
        replications,
        default_threads(),
    )
}

/// [`validate_web_service_replicated`] with an explicit worker-thread
/// cap; `threads <= 1` runs the replications serially.
///
/// # Errors
///
/// Propagates analytic and simulation failures.
pub fn validate_web_service_replicated_threads(
    params: &TaParameters,
    horizon: f64,
    base_seed: u64,
    replications: usize,
    threads: usize,
) -> Result<ValidationReport, TravelError> {
    let _span = uavail_obs::span("travel.validate");
    let analytic = 1.0 - webservice::redundant_imperfect_availability(params)?;
    let sim = farm_simulation(params)?;
    let run = |rng: &mut StdRng, _: usize| sim.run(rng, horizon);
    let observations = if threads <= 1 {
        replicate(base_seed, replications, run)?
    } else {
        replicate_parallel_threads(base_seed, replications, threads, run)?
    };
    Ok(pooled_report(params, analytic, &observations))
}
/// Result of the streaming analytic-vs-simulation comparison: the pooled
/// Wilson report plus batch-means statistics over the per-replication
/// loss fractions, the two interval constructions the CI gate checks.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingValidationReport {
    /// Pooled counts and Wilson interval, as in [`validate_web_service`].
    /// Arrival/loss totals here are *expected* counts from the epoch
    /// kernel, rounded — a conservative binomial envelope (the kernel's
    /// conditional-expectation estimates have strictly smaller variance
    /// than the realized counts the interval assumes).
    pub report: ValidationReport,
    /// Batch means over the per-replication loss fractions.
    pub batch_stats: OnlineStats,
    /// Replications folded.
    pub replications: usize,
    /// Batch count used by the streaming reducer.
    pub batches: usize,
}

impl StreamingValidationReport {
    /// Batch-means confidence interval on the mean loss fraction at the
    /// given normal quantile (e.g. 3.9 for 99.99%).
    pub fn batch_interval(&self, z: f64) -> (f64, f64) {
        let half = self.batch_stats.confidence_half_width(z);
        (
            self.batch_stats.mean() - half,
            self.batch_stats.mean() + half,
        )
    }

    /// Whether the analytic value lies inside the batch-means interval at
    /// quantile `z`, widened by `slack` (relative) for the residual
    /// quasi-steady-state error at compressed time scales.
    pub fn batch_agrees(&self, z: f64, slack: f64) -> bool {
        let (lo, hi) = self.batch_interval(z);
        let analytic = self.report.analytic_unavailability;
        analytic >= lo * (1.0 - slack) && analytic <= hi * (1.0 + slack)
    }
}

/// Production-scale streaming validator: replicated farm runs through the
/// epoch-resolvent counting kernel
/// ([`FarmSimulation::run_counts_with`][uavail_sim::FarmSimulation]), one
/// [`SimContext`] per worker thread, observations folded into streaming
/// reducers ([`StreamingBatchMeans`] plus pooled expected counts) without
/// ever materializing a per-replication history.
///
/// The fold order is the replication-index order, so the resulting report
/// is **bit-for-bit identical** for any `threads` value, including the
/// serial `threads <= 1` path.
///
/// # Errors
///
/// Propagates analytic and simulation failures;
/// [`uavail_sim::SimError::NoObservations`] when `replications == 0`.
pub fn validate_web_service_streaming(
    params: &TaParameters,
    horizon: f64,
    base_seed: u64,
    replications: usize,
    threads: usize,
) -> Result<StreamingValidationReport, TravelError> {
    let _span = uavail_obs::span("travel.validate_streaming");
    let analytic = 1.0 - webservice::redundant_imperfect_availability(params)?;
    let sim = farm_simulation(params)?;
    // At most 10 batches, never more than one replication per batch.
    let batches = replications.clamp(1, 10);
    let reducer = StreamingBatchMeans::new(replications, batches)
        .ok_or(TravelError::Sim(uavail_sim::SimError::NoObservations))?;
    struct Acc {
        arrivals: f64,
        losses: f64,
        reducer: StreamingBatchMeans,
    }
    let acc = replicate_fold_threads(
        base_seed,
        replications,
        threads,
        SimContext::new,
        |ctx, rng, _| sim.run_counts_with(ctx, rng, horizon),
        Acc {
            arrivals: 0.0,
            losses: 0.0,
            reducer,
        },
        |acc, counts| {
            acc.arrivals += counts.arrivals;
            acc.losses += counts.losses;
            acc.reducer.push(counts.loss_fraction());
        },
    )?;
    let arrivals = acc.arrivals.round() as u64;
    let losses = acc.losses.round() as u64;
    uavail_obs::counter_add("travel.validate.arrivals", arrivals);
    uavail_obs::counter_add("travel.validate.losses", losses);
    // Feed the live SLO monitor the same observed outcomes the report is
    // built from: successes are arrivals that were not lost. Reads only
    // already-computed counts, so recording cannot perturb the report.
    uavail_obs::slo_record_outcomes("farm", arrivals.saturating_sub(losses), losses, 0);
    let pooled = uavail_sim::stats::Proportion::new(losses, arrivals);
    let batch_stats = acc
        .reducer
        .finish()
        .expect("every replication was folded exactly once");
    Ok(StreamingValidationReport {
        report: ValidationReport {
            analytic_unavailability: analytic,
            simulated_unavailability: pooled.estimate(),
            confidence_interval: pooled.confidence_interval(3.9),
            arrivals,
            separation_ratio: separation_ratio(params),
        },
        batch_stats,
        replications,
        batches,
    })
}

/// Time-compressed validation parameters for the joint simulation, with
/// the same structure as the paper's farm, with failure dynamics sped up
/// so a few hundred thousand time units contain thousands of
/// failure/repair cycles while the separation ratio stays ≥ 50.
pub fn compressed_parameters() -> TaParameters {
    TaParameters::builder()
        .web_servers(3)
        .failure_rate_per_hour(0.02)
        .repair_rate_per_hour(1.0)
        .coverage(0.9)
        .reconfiguration_rate_per_hour(6.0)
        .arrival_rate_per_second(300.0)
        .service_rate_per_second(150.0)
        .buffer_size(8)
        .build()
        .expect("compressed parameters are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_matches_joint_simulation() {
        let params = compressed_parameters();
        let report = validate_web_service(&params, 30_000.0, 20240601).unwrap();
        assert!(report.arrivals > 1_000_000);
        assert!(
            report.agrees(0.15),
            "analytic {} vs simulated {} (CI {:?})",
            report.analytic_unavailability,
            report.simulated_unavailability,
            report.confidence_interval
        );
    }

    #[test]
    fn perfect_coverage_agreement_is_tighter() {
        let params = TaParameters::builder()
            .web_servers(2)
            .failure_rate_per_hour(0.05)
            .repair_rate_per_hour(2.0)
            .coverage(1.0)
            .arrival_rate_per_second(200.0)
            .service_rate_per_second(150.0)
            .buffer_size(6)
            .build()
            .unwrap();
        let analytic = 1.0 - webservice::redundant_perfect_availability(&params).unwrap();
        let report = validate_web_service(&params, 30_000.0, 7).unwrap();
        // With c = 1 the imperfect model equals the perfect one.
        assert!((report.analytic_unavailability - analytic).abs() < 1e-12);
        assert!(report.agrees(0.15), "{report:?}");
    }

    #[test]
    fn replicated_validation_parallel_matches_serial() {
        let params = compressed_parameters();
        let serial = validate_web_service_replicated_threads(&params, 800.0, 11, 5, 1).unwrap();
        for threads in [2, 4] {
            let parallel =
                validate_web_service_replicated_threads(&params, 800.0, 11, 5, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
        assert!(serial.arrivals > 100_000);
    }

    #[test]
    fn replicated_validation_agrees_with_analytic() {
        let params = compressed_parameters();
        let report = validate_web_service_replicated(&params, 5_000.0, 20240601, 6).unwrap();
        assert!(report.arrivals > 1_000_000);
        assert!(
            report.agrees(0.15),
            "analytic {} vs pooled {} (CI {:?})",
            report.analytic_unavailability,
            report.simulated_unavailability,
            report.confidence_interval
        );
    }

    #[test]
    fn streaming_validation_parallel_matches_serial() {
        let params = compressed_parameters();
        let serial = validate_web_service_streaming(&params, 2_000.0, 11, 24, 1).unwrap();
        for threads in [2, 4] {
            let parallel =
                validate_web_service_streaming(&params, 2_000.0, 11, 24, threads).unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
        assert!(serial.report.arrivals > 1_000_000);
        assert_eq!(serial.replications, 24);
        assert_eq!(serial.batch_stats.count(), serial.batches as u64);
    }

    #[test]
    fn streaming_validation_agrees_with_analytic() {
        // The epoch kernel folds out the queue noise, so even a modest
        // replication budget pins the analytic value tightly: the batch
        // interval and the (conservative) pooled Wilson interval must
        // both cover it with the usual quasi-steady-state slack.
        let params = compressed_parameters();
        let report = validate_web_service_streaming(&params, 10_000.0, 20240601, 32, 2).unwrap();
        assert!(
            report.batch_agrees(3.9, 0.15),
            "analytic {} vs batch mean {} (interval {:?})",
            report.report.analytic_unavailability,
            report.batch_stats.mean(),
            report.batch_interval(3.9)
        );
        assert!(
            report.report.agrees(0.15),
            "analytic {} vs pooled {} (CI {:?})",
            report.report.analytic_unavailability,
            report.report.simulated_unavailability,
            report.report.confidence_interval
        );
    }

    #[test]
    fn streaming_validation_rejects_zero_replications() {
        let params = compressed_parameters();
        assert!(validate_web_service_streaming(&params, 1_000.0, 1, 0, 1).is_err());
    }

    #[test]
    fn separation_ratio_reported() {
        let params = compressed_parameters();
        let report = validate_web_service(&params, 2_000.0, 3).unwrap();
        assert!(report.separation_ratio >= 25.0);
    }
}
