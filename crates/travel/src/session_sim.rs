//! End-to-end user-session simulation — independent validation of the
//! user-level equation (10).
//!
//! The analytic user measure composes steady-state service availabilities.
//! This simulator builds the *dynamic* picture instead: every service is an
//! alternating-renewal up/down process calibrated to its analytic
//! availability; user sessions arrive as a Poisson stream; each session
//! samples a Table 1 scenario and the per-function interaction-diagram
//! paths, and succeeds iff every *distinct* service it needs is up at that
//! moment. The long-run success fraction must converge to equation (10)
//! (sessions treated as instantaneous, matching the paper's steady-state
//! measure).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;

use uavail_core::par::default_threads;
use uavail_sim::replicate::{replicate, replicate_parallel_threads};
use uavail_sim::rng::exponential;
use uavail_sim::stats::Proportion;

use crate::functions::{self, TaFunction};
use crate::user::UserClass;
use crate::{Architecture, TaParameters, TravelAgencyModel, TravelError};

/// Result of a session-level simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionObservation {
    /// Sessions attempted.
    pub sessions: u64,
    /// Sessions for which every required service was up.
    pub successes: u64,
    /// Analytic user availability (equation 10) for comparison.
    pub analytic: f64,
}

impl SessionObservation {
    /// Observed user-perceived availability.
    pub fn availability(&self) -> f64 {
        Proportion::new(self.successes, self.sessions).estimate()
    }

    /// Binomial confidence interval on the observed availability.
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        Proportion::new(self.successes, self.sessions).confidence_interval(z)
    }

    /// Whether the analytic value falls inside the z-interval.
    pub fn agrees(&self, z: f64) -> bool {
        let (lo, hi) = self.confidence_interval(z);
        (lo..=hi).contains(&self.analytic)
    }
}

/// Per-service up/down process calibrated to a target availability.
#[derive(Debug, Clone)]
struct ServiceProcess {
    name: String,
    up: bool,
    /// Failure rate, chosen as `repair_rate (1 − A) / A` so the
    /// steady-state availability equals `A`.
    failure_rate: f64,
    repair_rate: f64,
}

/// Simulates `sessions` user sessions of `class` against dynamically
/// failing services, on the given architecture.
///
/// `mean_cycles` controls how many failure/repair cycles each service goes
/// through across the run (higher = less correlated samples). Services
/// with analytic availability exactly 1.0 never fail.
///
/// # Errors
///
/// * [`TravelError::InvalidParameter`] for `sessions == 0`.
/// * Propagated model failures.
pub fn simulate_user_availability<R: Rng + ?Sized>(
    rng: &mut R,
    class: &UserClass,
    params: &TaParameters,
    architecture: Architecture,
    sessions: u64,
) -> Result<SessionObservation, TravelError> {
    if sessions == 0 {
        return Err(TravelError::InvalidParameter {
            name: "sessions",
            value: 0.0,
            requirement: "at least 1",
        });
    }
    let model = TravelAgencyModel::new(params.clone(), architecture)?;
    let env = model.service_availabilities()?;
    let analytic = model.user_availability(class)?;

    // Calibrate the service processes: repair rate 1.0 per time unit,
    // failure rate matched to the availability.
    let mut services: Vec<ServiceProcess> = env
        .iter()
        .map(|(name, &a)| ServiceProcess {
            name: name.clone(),
            up: true,
            failure_rate: if a >= 1.0 { 0.0 } else { (1.0 - a) / a },
            repair_rate: 1.0,
        })
        .collect();
    services.sort_by(|a, b| a.name.cmp(&b.name));
    let index: HashMap<String, usize> = services
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.clone(), i))
        .collect();

    // Precompute per-function path tables once.
    let mut paths_per_function: HashMap<&'static str, Vec<(f64, Vec<usize>)>> = HashMap::new();
    for f in TaFunction::all() {
        let scenarios = functions::function_scenarios(f, params)?;
        let resolved = scenarios
            .into_iter()
            .map(|(p, svcs)| {
                let ids = svcs.iter().map(|s| index[s]).collect();
                (p, ids)
            })
            .collect();
        paths_per_function.insert(f.name(), resolved);
    }

    // Session arrivals: Poisson with rate chosen so the expected number of
    // service failure/repair events between sessions is small but nonzero,
    // giving each session a fresh-ish service state.
    let session_rate = 2.0;

    let mut successes = 0u64;
    let mut completed = 0u64;
    let scenario_probs: Vec<f64> = class
        .table()
        .scenarios()
        .iter()
        .map(|s| s.probability)
        .collect();

    let mut clock = 0.0f64;
    while completed < sessions {
        // Advance the world to the next session arrival, playing service
        // transitions in between (race of exponentials).
        let mut until_session = exponential(rng, session_rate);
        loop {
            let total_rate: f64 = services
                .iter()
                .map(|s| if s.up { s.failure_rate } else { s.repair_rate })
                .sum();
            if total_rate <= 0.0 {
                break; // nothing ever fails
            }
            let dt = exponential(rng, total_rate);
            if dt >= until_session {
                break;
            }
            until_session -= dt;
            clock += dt;
            // Pick the transitioning service.
            let mut u: f64 = rng.random::<f64>() * total_rate;
            for s in services.iter_mut() {
                let rate = if s.up { s.failure_rate } else { s.repair_rate };
                if u < rate {
                    s.up = !s.up;
                    break;
                }
                u -= rate;
            }
        }
        clock += until_session;

        // Sample a scenario.
        let mut u: f64 = rng.random();
        let mut chosen = scenario_probs.len() - 1;
        for (i, &p) in scenario_probs.iter().enumerate() {
            if u < p {
                chosen = i;
                break;
            }
            u -= p;
        }
        let scenario = &class.table().scenarios()[chosen];

        // Sample each function's path and collect the distinct services.
        let mut ok = true;
        'functions: for fname in &scenario.functions {
            let paths = &paths_per_function[fname.as_str()];
            let mut u: f64 = rng.random();
            let mut path = &paths[paths.len() - 1].1;
            for (p, ids) in paths {
                if u < *p {
                    path = ids;
                    break;
                }
                u -= p;
            }
            for &svc in path {
                if !services[svc].up {
                    ok = false;
                    break 'functions;
                }
            }
        }
        if ok {
            successes += 1;
        }
        completed += 1;
    }
    let _ = clock; // simulated time; kept for debugging symmetry
    uavail_obs::counter_add("travel.session_sim.sessions", sessions);
    uavail_obs::counter_add("travel.session_sim.successes", successes);
    Ok(SessionObservation {
        sessions,
        successes,
        analytic,
    })
}

/// Replicated [`simulate_user_availability`]: runs `replications`
/// independent batches of `sessions_per_replication` sessions on all
/// available cores and pools the success counts.
///
/// Each replication owns a deterministic RNG stream derived from
/// `base_seed` (see [`uavail_sim::replicate`]), so the pooled observation
/// is identical regardless of thread count or scheduling — and identical
/// to running the batches one after another.
///
/// # Errors
///
/// * [`TravelError::InvalidParameter`] for `replications == 0` or
///   `sessions_per_replication == 0`.
/// * Propagated model failures.
pub fn simulate_user_availability_replicated(
    base_seed: u64,
    class: &UserClass,
    params: &TaParameters,
    architecture: Architecture,
    sessions_per_replication: u64,
    replications: usize,
) -> Result<SessionObservation, TravelError> {
    simulate_user_availability_replicated_threads(
        base_seed,
        class,
        params,
        architecture,
        sessions_per_replication,
        replications,
        default_threads(),
    )
}

/// [`simulate_user_availability_replicated`] with an explicit
/// worker-thread cap; `threads <= 1` runs the batches serially.
///
/// # Errors
///
/// See [`simulate_user_availability_replicated`].
pub fn simulate_user_availability_replicated_threads(
    base_seed: u64,
    class: &UserClass,
    params: &TaParameters,
    architecture: Architecture,
    sessions_per_replication: u64,
    replications: usize,
    threads: usize,
) -> Result<SessionObservation, TravelError> {
    if replications == 0 {
        return Err(TravelError::InvalidParameter {
            name: "replications",
            value: 0.0,
            requirement: "at least 1",
        });
    }
    let _span = uavail_obs::span("travel.session_sim");
    let run = |rng: &mut StdRng, _: usize| {
        simulate_user_availability(rng, class, params, architecture, sessions_per_replication)
    };
    let observations = if threads <= 1 {
        replicate(base_seed, replications, run)?
    } else {
        replicate_parallel_threads(base_seed, replications, threads, run)?
    };
    Ok(SessionObservation {
        sessions: observations.iter().map(|o| o.sessions).sum(),
        successes: observations.iter().map(|o| o.successes).sum(),
        analytic: observations[0].analytic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::{class_a, class_b};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_sessions() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(simulate_user_availability(
            &mut rng,
            &class_a(),
            &TaParameters::paper_defaults(),
            Architecture::paper_reference(),
            0,
        )
        .is_err());
    }

    #[test]
    fn converges_to_equation_10_class_a() {
        let mut rng = StdRng::seed_from_u64(42);
        let obs = simulate_user_availability(
            &mut rng,
            &class_a(),
            &TaParameters::paper_defaults(),
            Architecture::paper_reference(),
            150_000,
        )
        .unwrap();
        assert!(
            obs.agrees(4.0),
            "analytic {} vs simulated {} (CI {:?})",
            obs.analytic,
            obs.availability(),
            obs.confidence_interval(4.0)
        );
    }

    #[test]
    fn converges_to_equation_10_class_b_basic_architecture() {
        let mut rng = StdRng::seed_from_u64(7);
        let obs = simulate_user_availability(
            &mut rng,
            &class_b(),
            &TaParameters::paper_defaults(),
            Architecture::Basic,
            150_000,
        )
        .unwrap();
        assert!(
            obs.agrees(4.0),
            "analytic {} vs simulated {} (CI {:?})",
            obs.analytic,
            obs.availability(),
            obs.confidence_interval(4.0)
        );
    }

    #[test]
    fn replicated_sessions_parallel_matches_serial() {
        let params = TaParameters::paper_defaults();
        let serial = simulate_user_availability_replicated_threads(
            3,
            &class_a(),
            &params,
            Architecture::paper_reference(),
            4_000,
            6,
            1,
        )
        .unwrap();
        for threads in [2, 4] {
            let parallel = simulate_user_availability_replicated_threads(
                3,
                &class_a(),
                &params,
                Architecture::paper_reference(),
                4_000,
                6,
                threads,
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
        assert_eq!(serial.sessions, 24_000);
        assert!(serial.agrees(5.0));
    }

    #[test]
    fn replicated_sessions_reject_zero_replications() {
        assert!(simulate_user_availability_replicated(
            1,
            &class_a(),
            &TaParameters::paper_defaults(),
            Architecture::paper_reference(),
            100,
            0,
        )
        .is_err());
    }

    #[test]
    fn ordering_preserved_in_simulation() {
        // Class A must beat class B in simulation too.
        let params = TaParameters::paper_defaults();
        let mut rng = StdRng::seed_from_u64(99);
        let a = simulate_user_availability(
            &mut rng,
            &class_a(),
            &params,
            Architecture::paper_reference(),
            60_000,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let b = simulate_user_availability(
            &mut rng,
            &class_b(),
            &params,
            Architecture::paper_reference(),
            60_000,
        )
        .unwrap();
        assert!(a.availability() > b.availability());
    }
}
