use std::fmt;

/// Coverage assumption for the redundant web-server farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Coverage {
    /// Every failure is detected and reconfigured automatically
    /// (Figure 9).
    Perfect,
    /// A fraction `1 − c` of failures requires manual reconfiguration
    /// (Figure 10). The paper's reference setting.
    #[default]
    Imperfect,
}

impl fmt::Display for Coverage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Coverage::Perfect => f.write_str("perfect coverage"),
            Coverage::Imperfect => f.write_str("imperfect coverage"),
        }
    }
}

/// The two candidate TA architectures of Figures 7 and 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// Figure 7: one dedicated host per server, no redundancy anywhere.
    Basic,
    /// Figure 8: a web farm of `N_W` servers, duplicated application and
    /// database servers, mirrored disks.
    Redundant(Coverage),
}

impl Architecture {
    /// The paper's reference configuration: redundant with imperfect
    /// coverage.
    pub fn paper_reference() -> Self {
        Architecture::Redundant(Coverage::Imperfect)
    }

    /// Whether this architecture replicates the internal servers.
    pub fn is_redundant(&self) -> bool {
        matches!(self, Architecture::Redundant(_))
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Architecture::Basic => f.write_str("basic architecture"),
            Architecture::Redundant(c) => write!(f, "redundant architecture ({c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_is_redundant_imperfect() {
        let a = Architecture::paper_reference();
        assert!(a.is_redundant());
        assert_eq!(a, Architecture::Redundant(Coverage::Imperfect));
        assert!(!Architecture::Basic.is_redundant());
    }

    #[test]
    fn display() {
        assert_eq!(Architecture::Basic.to_string(), "basic architecture");
        assert!(Architecture::Redundant(Coverage::Perfect)
            .to_string()
            .contains("perfect"));
        assert_eq!(Coverage::default(), Coverage::Imperfect);
    }
}
