//! Fault-tree view of the travel agency.
//!
//! Section 2 of the paper lists fault trees among the techniques available
//! at each modeling level. This module builds them for the TA: the top
//! event "a user transaction of a given function fails", with basic events
//! for every resource. Cut sets identify the single points of failure the
//! RBD analysis also finds, and the Fussell–Vesely ranking mirrors the
//! sensitivity ordering of the hierarchical model — three independent
//! engines, one answer.

use std::collections::HashMap;

use uavail_faulttree::{and_gate, basic_event, or_gate, FaultTree, FtSpec};

use crate::functions::TaFunction;
use crate::{Architecture, TaParameters, TravelError};

/// Basic-event failure probabilities for the TA resources under the given
/// architecture's structure (keys match the fault-tree event names).
///
/// # Errors
///
/// Propagates parameter-validation failures.
pub fn failure_probabilities(
    params: &TaParameters,
    architecture: Architecture,
) -> Result<HashMap<String, f64>, TravelError> {
    params.validate()?;
    let mut q = HashMap::new();
    let mut put = |name: &str, availability: f64| {
        q.insert(name.to_string(), 1.0 - availability);
    };
    put("net", params.a_net);
    put("lan", params.a_lan);
    // Web hosts: use the basic-architecture host availability as the
    // per-host basic event; the farm's performance behaviour is outside a
    // combinatorial fault tree's scope (documented limitation).
    put("web_host_1", params.a_cws);
    put("web_host_2", params.a_cws);
    put("app_host_1", params.a_cas);
    put("app_host_2", params.a_cas);
    put("db_host_1", params.a_cds);
    put("db_host_2", params.a_cds);
    put("disk_1", params.a_disk);
    put("disk_2", params.a_disk);
    put("payment", params.a_payment);
    for i in 1..=params.num_flight_systems {
        put(&format!("flight_{i}"), params.a_flight_system);
    }
    for i in 1..=params.num_hotel_systems {
        put(&format!("hotel_{i}"), params.a_hotel_system);
    }
    for i in 1..=params.num_car_systems {
        put(&format!("car_{i}"), params.a_car_system);
    }
    let _ = architecture;
    Ok(q)
}

fn duplicated(prefix: &str, redundant: bool) -> FtSpec {
    if redundant {
        and_gate(vec![
            basic_event(format!("{prefix}_1")),
            basic_event(format!("{prefix}_2")),
        ])
    } else {
        basic_event(format!("{prefix}_1"))
    }
}

fn reservation_bank(prefix: &str, n: usize) -> FtSpec {
    and_gate(
        (1..=n)
            .map(|i| basic_event(format!("{prefix}_{i}")))
            .collect(),
    )
}

/// Builds the fault tree whose top event is "a transaction of `function`
/// fails structurally" (a resource needed on every path is down).
///
/// For Browse, whose availability is path-dependent, the tree models the
/// *worst-case* path (the one needing the application and database
/// services) — fault trees are combinatorial and cannot express the
/// probabilistic path mix, which is exactly why the paper's framework
/// pairs them with interaction diagrams.
///
/// # Errors
///
/// Propagates parameter-validation failures; tree construction cannot fail
/// for this fixed structure.
pub fn function_fault_tree(
    function: TaFunction,
    params: &TaParameters,
    architecture: Architecture,
) -> Result<FaultTree, TravelError> {
    params.validate()?;
    let redundant = architecture.is_redundant();
    let infra = vec![basic_event("net"), basic_event("lan")];
    let web = duplicated("web_host", redundant);
    let app = duplicated("app_host", redundant);
    let db = or_gate(vec![
        duplicated("db_host", redundant),
        duplicated("disk", redundant),
    ]);
    let mut inputs = infra;
    inputs.push(web);
    match function {
        TaFunction::Home => {}
        TaFunction::Browse => {
            inputs.push(app);
            inputs.push(db);
        }
        TaFunction::Search | TaFunction::Book => {
            inputs.push(app);
            inputs.push(db);
            inputs.push(reservation_bank("flight", params.num_flight_systems));
            inputs.push(reservation_bank("hotel", params.num_hotel_systems));
            inputs.push(reservation_bank("car", params.num_car_systems));
        }
        TaFunction::Pay => {
            inputs.push(app);
            inputs.push(db);
            inputs.push(basic_event("payment"));
        }
    }
    Ok(FaultTree::new(or_gate(inputs))?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::services;

    fn params() -> TaParameters {
        TaParameters::paper_defaults().with_reservation_systems(2)
    }

    #[test]
    fn pay_tree_top_event_matches_structural_availability() {
        // The fault tree's top-event probability must equal
        // 1 − Anet·ALAN·A(web pair)·A(AS)·A(DS)·A(PS) with the Table 4
        // redundant formulas (web service availability here is the pure
        // structural pair, without the performance model).
        let p = params();
        let arch = Architecture::paper_reference();
        let tree = function_fault_tree(TaFunction::Pay, &p, arch).unwrap();
        let q = failure_probabilities(&p, arch).unwrap();
        let top = tree.top_event_probability(&q).unwrap();
        let web_pair = 1.0 - (1.0 - p.a_cws).powi(2);
        let expected_avail = p.a_net
            * p.a_lan
            * web_pair
            * services::application(&p, arch).unwrap()
            * services::database(&p, arch).unwrap()
            * p.a_payment;
        assert!(
            (top - (1.0 - expected_avail)).abs() < 1e-12,
            "top {top} vs {}",
            1.0 - expected_avail
        );
    }

    #[test]
    fn search_tree_includes_reservation_banks() {
        let p = params();
        let arch = Architecture::paper_reference();
        let tree = function_fault_tree(TaFunction::Search, &p, arch).unwrap();
        let q = failure_probabilities(&p, arch).unwrap();
        let top = tree.top_event_probability(&q).unwrap();
        let web_pair = 1.0 - (1.0 - p.a_cws).powi(2);
        let bank = services::flight(&p).unwrap();
        let expected_avail = p.a_net
            * p.a_lan
            * web_pair
            * services::application(&p, arch).unwrap()
            * services::database(&p, arch).unwrap()
            * bank.powi(3);
        assert!((top - (1.0 - expected_avail)).abs() < 1e-12);
    }

    #[test]
    fn single_points_of_failure_by_architecture() {
        let p = params();
        // Redundant: only net and lan are SPOFs for Home.
        let tree =
            function_fault_tree(TaFunction::Home, &p, Architecture::paper_reference()).unwrap();
        let mut spof = tree.single_points_of_failure();
        spof.sort();
        assert_eq!(spof, vec!["lan", "net"]);
        // Basic: the single web host joins them.
        let tree = function_fault_tree(TaFunction::Home, &p, Architecture::Basic).unwrap();
        let mut spof = tree.single_points_of_failure();
        spof.sort();
        assert_eq!(spof, vec!["lan", "net", "web_host_1"]);
    }

    #[test]
    fn pay_spofs_include_payment_system() {
        let p = params();
        let tree =
            function_fault_tree(TaFunction::Pay, &p, Architecture::paper_reference()).unwrap();
        let spof = tree.single_points_of_failure();
        assert!(spof.contains(&"payment".to_string()));
        assert!(spof.contains(&"net".to_string()));
        assert!(!spof.contains(&"db_host_1".to_string())); // duplicated
    }

    #[test]
    fn importance_ranking_matches_intuition() {
        let p = params();
        let arch = Architecture::paper_reference();
        let tree = function_fault_tree(TaFunction::Pay, &p, arch).unwrap();
        let q = failure_probabilities(&p, arch).unwrap();
        let importance = tree.importance(&q).unwrap();
        // The Fussell-Vesely top contributor must be the payment system:
        // q = 0.1 and it is a SPOF.
        let top_fv = importance
            .iter()
            .max_by(|a, b| a.fussell_vesely.partial_cmp(&b.fussell_vesely).unwrap())
            .unwrap();
        assert_eq!(top_fv.name, "payment");
    }

    #[test]
    fn basic_architecture_worse_top_event() {
        let p = params();
        for f in TaFunction::all() {
            let q_basic = failure_probabilities(&p, Architecture::Basic).unwrap();
            let top_basic = function_fault_tree(f, &p, Architecture::Basic)
                .unwrap()
                .top_event_probability(&q_basic)
                .unwrap();
            let q_red = failure_probabilities(&p, Architecture::paper_reference()).unwrap();
            let top_red = function_fault_tree(f, &p, Architecture::paper_reference())
                .unwrap()
                .top_event_probability(&q_red)
                .unwrap();
            assert!(top_red <= top_basic, "{f}: {top_red} vs {top_basic}");
        }
    }
}
