//! Reusable evaluation scratch for dense parameter sweeps.
//!
//! Every point of a figure sweep rebuilds the same machinery: a CTMC
//! generator for the web-server farm, a GTH elimination scratch matrix, a
//! stationary vector, an M/M/c/K state distribution, and a composite-state
//! list. [`EvalContext`] owns all of those buffers so a sweep loop — or one
//! worker thread of a parallel sweep — allocates them once and reuses them
//! for every subsequent point.
//!
//! The context is transparent: the `*_with` evaluation paths in
//! [`crate::webservice`] and [`crate::evaluation`] run the exact same
//! floating-point operations as their allocating counterparts on a fresh
//! buffer, and the context's private memos (per-point web availabilities,
//! per-scenario service expansions) replay the exact bits of the first
//! computation, so results are bit-for-bit identical (property-tested in
//! the crate's integration tests). Reuse is instrumented through the
//! `uavail-obs` counters `travel.eval_context.created` and
//! `travel.eval_context.reuses`.

use std::collections::HashMap;

use uavail_core::composite::CompositeState;
use uavail_linalg::{CsrMatrix, Matrix};

use crate::TaParameters;

/// Memo key for a redundant-farm availability: the architecture flavor
/// plus the bit patterns of every parameter the result depends on.
pub(crate) type AvailKey = (bool, usize, usize, [u64; 6]);

/// Memo key for a user-scenario service expansion: the scenario's function
/// list plus the path-choice probabilities (`q23`, `q24`, `q45`, `q47`)
/// the interaction diagrams branch on.
pub(crate) type ScenarioKey = (Vec<String>, [u64; 4]);

/// Bound on the per-context availability memo; dense custom sweeps can
/// exceed it, at which point it simply starts over.
const AVAIL_MEMO_CAP: usize = 1 << 14;

/// Bound on the scenario-expansion memo (12 entries cover both paper
/// classes; the cap only matters for callers sweeping the `q` parameters).
const SCENARIO_MEMO_CAP: usize = 256;

/// Memo key for one imperfect-farm solve: the farm size plus the bit
/// patterns of the four rates the Figure 10 chain depends on
/// (`λ`, `µ`, `c`, `β`).
pub(crate) type FarmKey = (usize, [u64; 4]);

/// Bound on the farm-solution memo. Entries for a sparse-cutoff farm hold
/// `2n + 1` probabilities (~32 KiB at `n = 2000`), so the cap is kept far
/// below the availability memo's.
const FARM_MEMO_CAP: usize = 64;

/// Cached CSR sparsity pattern of the Figure 10 farm generator.
///
/// The pattern depends only on the farm *shape* — the server count and
/// whether covered-failure transitions exist (`c > 0`) — not on the rates,
/// so consecutive same-shape sweep points can skip the triplet
/// sort-and-merge assembly and refill a value buffer in place. `slots[k]`
/// is the value index that triplet `k` of the canonical transition
/// expansion accumulates into ([`crate::webservice`] pushes two triplets
/// per transition: the off-diagonal rate, then its diagonal compensation).
#[derive(Debug)]
pub(crate) struct FarmStructure {
    /// Farm size the pattern was extracted for.
    pub(crate) web_servers: usize,
    /// Whether covered-failure transitions were present (`c > 0`).
    pub(crate) covered: bool,
    /// CSR row offsets of the assembled generator.
    pub(crate) row_offsets: Vec<usize>,
    /// CSR column indices of the assembled generator.
    pub(crate) col_indices: Vec<usize>,
    /// Value index each canonical triplet accumulates into.
    pub(crate) slots: Vec<usize>,
}

impl FarmStructure {
    /// Extracts the sparsity pattern of `q` and the triplet→slot map for
    /// the canonical `transitions` expansion. Returns `None` if any
    /// coordinate is missing from the assembled matrix (possible only if
    /// merged entries cancelled to exact zero and were dropped) — callers
    /// then simply skip caching.
    pub(crate) fn extract(
        web_servers: usize,
        covered: bool,
        transitions: &[(usize, usize, f64)],
        q: &CsrMatrix,
    ) -> Option<Self> {
        let (row_offsets, col_indices, _) = q.raw_parts();
        let slot = |row: usize, col: usize| -> Option<usize> {
            let (lo, hi) = (row_offsets[row], row_offsets[row + 1]);
            col_indices[lo..hi].binary_search(&col).ok().map(|k| lo + k)
        };
        let mut slots = Vec::with_capacity(2 * transitions.len());
        for &(from, to, _) in transitions {
            slots.push(slot(from, to)?);
            slots.push(slot(from, from)?);
        }
        Some(FarmStructure {
            web_servers,
            covered,
            row_offsets: row_offsets.to_vec(),
            col_indices: col_indices.to_vec(),
            slots,
        })
    }
}

/// Per-thread scratch arena for the travel-agency evaluation paths.
///
/// Thread one context through [`crate::evaluation::figure_sweep_with`],
/// [`crate::evaluation::table8_with`] or the lower-level
/// `*_availability_with` functions; for parallel sweeps, give each worker
/// its own (e.g. via [`uavail_core::sweep::sweep_parallel_with`]'s `make`
/// closure). A context is cheap to create — buffers grow lazily on first
/// use.
///
/// # Examples
///
/// ```
/// use uavail_travel::{EvalContext, TaParameters, webservice};
///
/// # fn main() -> Result<(), uavail_travel::TravelError> {
/// let mut ctx = EvalContext::new();
/// let params = TaParameters::paper_defaults();
/// let warm = webservice::redundant_imperfect_availability_with(&params, &mut ctx)?;
/// let cold = webservice::redundant_imperfect_availability(&params)?;
/// assert_eq!(warm.to_bits(), cold.to_bits());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct EvalContext {
    /// Generator assembly for the imperfect-coverage farm CTMC.
    pub(crate) generator: Matrix,
    /// GTH elimination scratch.
    pub(crate) gth_scratch: Matrix,
    /// Stationary-distribution output.
    pub(crate) pi: Vec<f64>,
    /// Farm operational-state probabilities `Π_0 ..= Π_{N_W}`.
    pub(crate) farm_op: Vec<f64>,
    /// Farm reconfiguration-state probabilities `Π_{y_1} ..= Π_{y_{N_W}}`.
    pub(crate) farm_y: Vec<f64>,
    /// Composite-availability state list.
    pub(crate) states: Vec<CompositeState>,
    /// M/M/c/K state-distribution buffer.
    pub(crate) dist_buf: Vec<f64>,
    /// Birth-death birth-rate buffer.
    pub(crate) births: Vec<f64>,
    /// Birth-death death-rate buffer.
    pub(crate) deaths: Vec<f64>,
    /// Transition-list buffer for the sparse farm assembly path (farms
    /// past the sparse cutoff never touch the dense `generator` buffer).
    pub(crate) farm_transitions: Vec<(usize, usize, f64)>,
    /// Cached CSR pattern of the last sparse farm generator; reused for
    /// every subsequent same-shape point.
    pub(crate) farm_structure: Option<FarmStructure>,
    /// Memoized imperfect-farm solutions `(farm_op, farm_y)`; values are
    /// the exact bits of the first computation.
    pub(crate) farm_memo: HashMap<FarmKey, (Vec<f64>, Vec<f64>)>,
    /// Memoized redundant-farm availabilities, keyed by every parameter
    /// bit the result depends on; values are the exact bits of the first
    /// computation.
    pub(crate) avail_memo: HashMap<AvailKey, f64>,
    /// Memoized user-scenario service expansions: the DFS terminals of
    /// [`crate::user::scenario_availability`] in exact pop order, so a
    /// replay multiplies the same factors in the same order.
    pub(crate) scenario_memo: HashMap<ScenarioKey, Vec<(f64, Vec<String>)>>,
    /// Whether this context has served at least one evaluation.
    used: bool,
    /// Evaluations served beyond the first (storage actually reused).
    reuses: u64,
}

impl EvalContext {
    /// Creates an empty context; buffers grow on first use.
    pub fn new() -> Self {
        EvalContext::default()
    }

    /// Number of evaluations that reused previously-warmed storage (every
    /// evaluation after the first).
    pub fn reuse_count(&self) -> u64 {
        self.reuses
    }

    /// Memo key for one redundant-farm evaluation.
    pub(crate) fn avail_key(perfect: bool, params: &TaParameters) -> AvailKey {
        (
            perfect,
            params.web_servers,
            params.buffer_size,
            [
                params.failure_rate_per_hour.to_bits(),
                params.repair_rate_per_hour.to_bits(),
                params.arrival_rate_per_second.to_bits(),
                params.service_rate_per_second.to_bits(),
                params.coverage.to_bits(),
                params.reconfiguration_rate_per_hour.to_bits(),
            ],
        )
    }

    /// Stores a freshly computed availability, restarting the memo when it
    /// reaches its bound so dense open-ended sweeps cannot grow it forever.
    pub(crate) fn remember_availability(&mut self, key: AvailKey, value: f64) {
        if self.avail_memo.len() >= AVAIL_MEMO_CAP {
            self.avail_memo.clear();
        }
        self.avail_memo.insert(key, value);
    }

    /// Memo key for one imperfect-farm solve.
    pub(crate) fn farm_key(params: &TaParameters) -> FarmKey {
        (
            params.web_servers,
            [
                params.failure_rate_per_hour.to_bits(),
                params.repair_rate_per_hour.to_bits(),
                params.coverage.to_bits(),
                params.reconfiguration_rate_per_hour.to_bits(),
            ],
        )
    }

    /// Copies a memoized farm solution into `farm_op` / `farm_y`. Returns
    /// `false` (leaving the buffers untouched) on a miss.
    pub(crate) fn recall_farm(&mut self, key: &FarmKey) -> bool {
        match self.farm_memo.get(key) {
            Some((op, y)) => {
                self.farm_op.clear();
                self.farm_op.extend_from_slice(op);
                self.farm_y.clear();
                self.farm_y.extend_from_slice(y);
                true
            }
            None => false,
        }
    }

    /// Stores the current `farm_op` / `farm_y` under `key`, restarting the
    /// memo at its (deliberately small) bound.
    pub(crate) fn remember_farm(&mut self, key: FarmKey) {
        if self.farm_memo.len() >= FARM_MEMO_CAP {
            self.farm_memo.clear();
        }
        self.farm_memo
            .insert(key, (self.farm_op.clone(), self.farm_y.clone()));
    }

    /// Stores a freshly expanded scenario, bounded like the availability
    /// memo.
    pub(crate) fn remember_scenario(&mut self, key: ScenarioKey, terms: Vec<(f64, Vec<String>)>) {
        if self.scenario_memo.len() >= SCENARIO_MEMO_CAP {
            self.scenario_memo.clear();
        }
        self.scenario_memo.insert(key, terms);
    }

    /// Records one evaluation served by this context, feeding the
    /// `travel.eval_context.*` obs counters.
    pub(crate) fn note_use(&mut self) {
        if self.used {
            self.reuses += 1;
            uavail_obs::counter_add("travel.eval_context.reuses", 1);
        } else {
            self.used = true;
            uavail_obs::counter_add("travel.eval_context.created", 1);
        }
    }
}
