//! Maintenance-strategy ablations.
//!
//! Section 3.3 of the paper notes that "the architecture solutions might be
//! compared with regards to the maintenance strategy adopted by the TA
//! provider (e.g., immediate vs. deferred maintenance, dedicated vs.
//! shared repair resources)" but evaluates only shared immediate repair.
//! This module builds the comparison: three repair policies for the web
//! farm, all solved as explicit CTMCs (with the Figure 10 imperfect-
//! coverage structure where applicable).

use std::fmt;

use uavail_core::composite::{composite_availability, CompositeState};
use uavail_markov::CtmcBuilder;

use crate::{webservice, TaParameters, TravelError};

/// Repair policy for the web-server farm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairStrategy {
    /// One shared repair facility, engaged as soon as anything fails —
    /// the paper's model (repair rate `µ` whenever `i < N_W`).
    SharedImmediate,
    /// One repair facility per server (repair rate `(N_W − i)·µ`).
    DedicatedImmediate,
    /// Deferred maintenance with hysteresis: repairs begin only once the
    /// number of operational servers drops to `start_below` or fewer, and
    /// continue until the farm is fully restored.
    Deferred {
        /// Repairs start when `operational <= start_below`.
        start_below: usize,
    },
}

impl fmt::Display for RepairStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairStrategy::SharedImmediate => f.write_str("shared immediate repair"),
            RepairStrategy::DedicatedImmediate => f.write_str("dedicated immediate repair"),
            RepairStrategy::Deferred { start_below } => {
                write!(f, "deferred repair (start at <= {start_below} up)")
            }
        }
    }
}

/// Steady-state distribution of the farm under a repair strategy, with the
/// Figure 10 imperfect-coverage structure.
///
/// Returns `(operational, reconfiguring)` exactly like
/// [`webservice::farm_distribution_imperfect`]. For
/// [`RepairStrategy::Deferred`] the "repair in progress" flag doubles the
/// operational state space internally; the returned vector aggregates the
/// flag out.
///
/// # Errors
///
/// * [`TravelError::InvalidParameter`] for a deferred threshold ≥ `N_W`
///   that would never let repairs finish restoring full redundancy (the
///   threshold must be < `N_W`).
/// * Propagated chain-construction failures.
pub fn farm_distribution(
    params: &TaParameters,
    strategy: RepairStrategy,
) -> Result<(Vec<f64>, Vec<f64>), TravelError> {
    params.validate()?;
    match strategy {
        RepairStrategy::SharedImmediate => webservice::farm_distribution_imperfect(params),
        RepairStrategy::DedicatedImmediate => dedicated_distribution(params),
        RepairStrategy::Deferred { start_below } => {
            if start_below >= params.web_servers {
                return Err(TravelError::InvalidParameter {
                    name: "start_below",
                    value: start_below as f64,
                    requirement: "strictly less than the number of web servers",
                });
            }
            deferred_distribution(params, start_below)
        }
    }
}

fn dedicated_distribution(params: &TaParameters) -> Result<(Vec<f64>, Vec<f64>), TravelError> {
    let n = params.web_servers;
    let lambda = params.failure_rate_per_hour;
    let mu = params.repair_rate_per_hour;
    let c = params.coverage;
    let beta = params.reconfiguration_rate_per_hour;
    let mut b = CtmcBuilder::new();
    let op: Vec<_> = (0..=n).map(|i| b.add_state(format!("up{i}"))).collect();
    let y: Vec<_> = (1..=n).map(|i| b.add_state(format!("y{i}"))).collect();
    for i in 1..=n {
        if c > 0.0 {
            b.add_transition(op[i], op[i - 1], i as f64 * c * lambda)?;
        }
        if c < 1.0 {
            b.add_transition(op[i], y[i - 1], i as f64 * (1.0 - c) * lambda)?;
            b.add_transition(y[i - 1], op[i - 1], beta)?;
        }
        // Dedicated repair: every failed server is being repaired.
        b.add_transition(op[i - 1], op[i], (n - (i - 1)) as f64 * mu)?;
    }
    let chain = b.build()?;
    let pi = chain.steady_state()?;
    let operational = (0..=n).map(|i| pi[op[i].index()]).collect();
    let reconfiguring = if c < 1.0 {
        (0..n).map(|i| pi[y[i].index()]).collect()
    } else {
        vec![0.0; n]
    };
    Ok((operational, reconfiguring))
}

fn deferred_distribution(
    params: &TaParameters,
    start_below: usize,
) -> Result<(Vec<f64>, Vec<f64>), TravelError> {
    let n = params.web_servers;
    let lambda = params.failure_rate_per_hour;
    let mu = params.repair_rate_per_hour;
    let c = params.coverage;
    let beta = params.reconfiguration_rate_per_hour;
    // States: (operational i, repairing flag r). r flips on when
    // i <= start_below and off again only at i = n.
    // Also the y_i reconfiguration states (flag preserved through them is
    // irrelevant: after reconfiguration i - 1 <= start_below may or may
    // not hold; carry the flag).
    let mut b = CtmcBuilder::new();
    let idle: Vec<_> = (0..=n)
        .map(|i| b.add_state(format!("up{i}/idle")))
        .collect();
    let fixing: Vec<_> = (0..=n)
        .map(|i| b.add_state(format!("up{i}/repairing")))
        .collect();
    let y_idle: Vec<_> = (1..=n).map(|i| b.add_state(format!("y{i}/idle"))).collect();
    let y_fixing: Vec<_> = (1..=n)
        .map(|i| b.add_state(format!("y{i}/repairing")))
        .collect();

    // Failure target: does the destination trigger repair?
    let flag_after_drop =
        |i_next: usize, currently: bool| -> bool { currently || i_next <= start_below };
    for i in 1..=n {
        for &repairing in &[false, true] {
            let from = if repairing { fixing[i] } else { idle[i] };
            // Covered failure.
            if c > 0.0 {
                let to_flag = flag_after_drop(i - 1, repairing);
                let to = if to_flag { fixing[i - 1] } else { idle[i - 1] };
                b.add_transition(from, to, i as f64 * c * lambda)?;
            }
            // Uncovered failure: into the y state, preserving the flag
            // decision for after reconfiguration.
            if c < 1.0 {
                let to_flag = flag_after_drop(i - 1, repairing);
                let y_to = if to_flag {
                    y_fixing[i - 1]
                } else {
                    y_idle[i - 1]
                };
                b.add_transition(from, y_to, i as f64 * (1.0 - c) * lambda)?;
            }
        }
    }
    if c < 1.0 {
        for i in 1..=n {
            b.add_transition(y_idle[i - 1], idle[i - 1], beta)?;
            b.add_transition(y_fixing[i - 1], fixing[i - 1], beta)?;
        }
    }
    // Repairs: only in `fixing` states; completion of the last repair
    // (reaching n) turns the flag off.
    for i in 0..n {
        let to = if i + 1 == n { idle[n] } else { fixing[i + 1] };
        b.add_transition(fixing[i], to, mu)?;
    }
    // `idle` states with i < n simply wait (no repair) — but i = 0 idle is
    // only reachable if start_below permits, i.e. start_below >= 0 always
    // flips the flag at i <= start_below, so idle[i] for i <= start_below
    // is unreachable; the solver drops unreachable states? GTH requires
    // irreducibility over *reachable* states — prune unreachable states by
    // restricting to the reachable set. Simplest robust approach: make
    // unreachable idle states weakly connected by a tiny epsilon? No — we
    // instead build only reachable states below.
    let chain = b.build()?;
    // Prune unreachable states: compute reachability from "all up, idle".
    let pi = prune_and_solve(&chain, idle[n].index())?;
    let mut operational = vec![0.0; n + 1];
    let mut reconfiguring = vec![0.0; n];
    for i in 0..=n {
        operational[i] = pi[idle[i].index()] + pi[fixing[i].index()];
    }
    if c < 1.0 {
        for i in 1..=n {
            reconfiguring[i - 1] = pi[y_idle[i - 1].index()] + pi[y_fixing[i - 1].index()];
        }
    }
    Ok((operational, reconfiguring))
}

/// Solves the steady state of `chain` restricted to the states reachable
/// from `start`, returning a full-length vector with zeros for
/// unreachable states.
fn prune_and_solve(chain: &uavail_markov::Ctmc, start: usize) -> Result<Vec<f64>, TravelError> {
    let q = chain.generator();
    let n = q.rows();
    let mut reachable = vec![false; n];
    let mut stack = vec![start];
    reachable[start] = true;
    while let Some(i) = stack.pop() {
        for j in 0..n {
            if i != j && q[(i, j)] > 0.0 && !reachable[j] {
                reachable[j] = true;
                stack.push(j);
            }
        }
    }
    let members: Vec<usize> = (0..n).filter(|&i| reachable[i]).collect();
    let mut sub = uavail_linalg::Matrix::zeros(members.len(), members.len());
    for (r, &i) in members.iter().enumerate() {
        for (cc, &j) in members.iter().enumerate() {
            sub[(r, cc)] = q[(i, j)];
        }
        // Re-zero the diagonal against pruned leak (none exists: leaks to
        // unreachable states are impossible from reachable ones by
        // definition of reachability... transitions *to* unreachable
        // states cannot exist from reachable ones).
    }
    let pi_sub = uavail_markov::gth_steady_state(&sub).map_err(TravelError::Markov)?;
    let mut pi = vec![0.0; n];
    for (r, &i) in members.iter().enumerate() {
        pi[i] = pi_sub[r];
    }
    Ok(pi)
}

/// Web-service availability under a repair strategy (the composite
/// equation 9 with the strategy's state distribution).
///
/// # Errors
///
/// Propagates solver failures.
pub fn web_availability(
    params: &TaParameters,
    strategy: RepairStrategy,
) -> Result<f64, TravelError> {
    let (op, y) = farm_distribution(params, strategy)?;
    let mut states = Vec::with_capacity(op.len() + y.len());
    states.push(CompositeState::new(op[0], 0.0));
    for (i, &p) in op.iter().enumerate().skip(1) {
        states.push(CompositeState::new(
            p,
            1.0 - webservice::loss_probability(params, i)?,
        ));
    }
    for &p in &y {
        states.push(CompositeState::new(p, 0.0));
    }
    Ok(composite_availability(&states)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TaParameters {
        TaParameters::paper_defaults()
    }

    #[test]
    fn shared_immediate_matches_paper_model() {
        let p = params();
        let via_strategy = web_availability(&p, RepairStrategy::SharedImmediate).unwrap();
        let direct = webservice::redundant_imperfect_availability(&p).unwrap();
        assert!((via_strategy - direct).abs() < 1e-15);
    }

    #[test]
    fn dedicated_beats_shared() {
        let p = params();
        let shared = web_availability(&p, RepairStrategy::SharedImmediate).unwrap();
        let dedicated = web_availability(&p, RepairStrategy::DedicatedImmediate).unwrap();
        assert!(
            dedicated >= shared,
            "dedicated {dedicated} vs shared {shared}"
        );
    }

    #[test]
    fn deferred_is_worse_than_immediate() {
        let p = TaParameters::builder()
            .failure_rate_per_hour(1e-2) // visible failure dynamics
            .build()
            .unwrap();
        let immediate = web_availability(&p, RepairStrategy::SharedImmediate).unwrap();
        let deferred = web_availability(&p, RepairStrategy::Deferred { start_below: 2 }).unwrap();
        assert!(
            deferred < immediate,
            "deferred {deferred} vs immediate {immediate}"
        );
    }

    #[test]
    fn later_deferral_is_worse() {
        let p = TaParameters::builder()
            .failure_rate_per_hour(1e-2)
            .web_servers(6)
            .build()
            .unwrap();
        let lax = web_availability(&p, RepairStrategy::Deferred { start_below: 1 }).unwrap();
        let eager = web_availability(&p, RepairStrategy::Deferred { start_below: 5 }).unwrap();
        assert!(
            eager > lax,
            "starting repairs earlier must help: eager {eager} vs lax {lax}"
        );
    }

    #[test]
    fn deferred_threshold_validation() {
        let p = params();
        assert!(matches!(
            web_availability(&p, RepairStrategy::Deferred { start_below: 4 }),
            Err(TravelError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn distributions_are_normalized() {
        let p = TaParameters::builder()
            .failure_rate_per_hour(5e-3)
            .build()
            .unwrap();
        for strategy in [
            RepairStrategy::SharedImmediate,
            RepairStrategy::DedicatedImmediate,
            RepairStrategy::Deferred { start_below: 1 },
            RepairStrategy::Deferred { start_below: 3 },
        ] {
            let (op, y) = farm_distribution(&p, strategy).unwrap();
            let total: f64 = op.iter().sum::<f64>() + y.iter().sum::<f64>();
            assert!((total - 1.0).abs() < 1e-9, "{strategy}: total {total}");
            assert!(op.iter().chain(y.iter()).all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn perfect_coverage_deferred_works_too() {
        let p = TaParameters::builder()
            .coverage(1.0)
            .failure_rate_per_hour(1e-2)
            .build()
            .unwrap();
        let a = web_availability(&p, RepairStrategy::Deferred { start_below: 2 }).unwrap();
        assert!(a > 0.9 && a < 1.0);
    }

    #[test]
    fn display_names() {
        assert!(RepairStrategy::SharedImmediate
            .to_string()
            .contains("shared"));
        assert!(RepairStrategy::Deferred { start_below: 2 }
            .to_string()
            .contains("<= 2"));
    }
}
