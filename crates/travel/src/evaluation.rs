//! Evaluation drivers — Section 5 of the paper: Table 8, Figures 11–13,
//! the revenue analysis, and the §5.1 capacity-planning rules.

use std::collections::HashMap;

use uavail_core::downtime::{RevenueModel, HOURS_PER_YEAR};
use uavail_core::par::{
    default_threads, par_map_threads, par_map_threads_capture, par_map_threads_with,
};
use uavail_obs::json::JsonValue;
use uavail_profile::ScenarioCategory;

use crate::user::{class_a, class_b, scenario_availability, UserClass};
use crate::{
    functions, services, user, webservice, Architecture, EvalContext, TaParameters,
    TravelAgencyModel, TravelError,
};

/// One row of Table 8: user availability for both classes at a common
/// reservation-system count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table8Row {
    /// `N_F = N_H = N_C`.
    pub reservation_systems: usize,
    /// Class A user availability.
    pub class_a: f64,
    /// Class B user availability.
    pub class_b: f64,
}

/// Reproduces Table 8: user availability vs. number of reservation
/// systems, classes A and B, on the paper's reference architecture.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table8() -> Result<Vec<Table8Row>, TravelError> {
    let _span = uavail_obs::span("travel.table8");
    let counts = [1usize, 2, 3, 4, 5, 10];
    uavail_obs::counter_add("travel.table8.rows", counts.len() as u64);
    let mut rows = Vec::with_capacity(counts.len());
    for n in counts {
        let params = TaParameters::paper_defaults().with_reservation_systems(n);
        let model = TravelAgencyModel::new(params, Architecture::paper_reference())?;
        rows.push(Table8Row {
            reservation_systems: n,
            class_a: model.user_availability(&class_a())?,
            class_b: model.user_availability(&class_b())?,
        });
    }
    Ok(rows)
}

/// Reproduces Table 8 reusing `ctx`'s buffers for every row — the
/// allocation-free twin of [`table8`], bit-for-bit identical.
///
/// The web-service availability does not depend on the reservation-system
/// count, so it is solved once in `ctx` and shared by all six rows; the
/// reservation-bank availabilities are recomputed per row exactly as the
/// allocating path does. The user-scenario service expansions — also
/// independent of the system counts — are expanded once into `ctx`'s memo
/// and replayed against each row's environment.
///
/// # Errors
///
/// Propagates solver failures.
pub fn table8_with(ctx: &mut EvalContext) -> Result<Vec<Table8Row>, TravelError> {
    let _span = uavail_obs::span("travel.table8");
    let counts = [1usize, 2, 3, 4, 5, 10];
    uavail_obs::counter_add("travel.table8.rows", counts.len() as u64);

    // The paper-reference architecture is the imperfect-coverage farm;
    // its A(WS) is independent of N_F = N_H = N_C, so one context solve
    // serves every row (the allocating path recomputes the same value —
    // deterministically, hence bit-for-bit equal — per class and row).
    let base = TaParameters::paper_defaults();
    let a_web = webservice::redundant_imperfect_availability_with(&base, ctx)?;

    let mut rows = Vec::with_capacity(counts.len());
    let mut env = HashMap::new();
    for n in counts {
        let params = TaParameters::paper_defaults().with_reservation_systems(n);
        params.validate()?;
        // Same entries as `TravelAgencyModel::service_availabilities` for
        // `Architecture::paper_reference()`, with the memoized A(WS).
        env.clear();
        env.insert(functions::SERVICE_NET.to_string(), params.a_net);
        env.insert(functions::SERVICE_LAN.to_string(), params.a_lan);
        env.insert(functions::SERVICE_WEB.to_string(), a_web);
        env.insert(
            functions::SERVICE_APP.to_string(),
            services::application(&params, Architecture::paper_reference())?,
        );
        env.insert(
            functions::SERVICE_DB.to_string(),
            services::database(&params, Architecture::paper_reference())?,
        );
        env.insert(
            functions::SERVICE_FLIGHT.to_string(),
            services::flight(&params)?,
        );
        env.insert(
            functions::SERVICE_HOTEL.to_string(),
            services::hotel(&params)?,
        );
        env.insert(functions::SERVICE_CAR.to_string(), services::car(&params)?);
        env.insert(
            functions::SERVICE_PAYMENT.to_string(),
            services::payment(&params),
        );
        rows.push(Table8Row {
            reservation_systems: n,
            class_a: user::user_availability_with(&class_a(), &params, &env, ctx)?,
            class_b: user::user_availability_with(&class_b(), &params, &env, ctx)?,
        });
    }
    Ok(rows)
}

/// One point of Figures 11–12: web-service unavailability at a given farm
/// size for one (failure rate, arrival rate) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigurePoint {
    /// Web-server failure rate `λ` (per hour).
    pub failure_rate_per_hour: f64,
    /// Request arrival rate `α` (per second).
    pub arrival_rate_per_second: f64,
    /// Number of web servers `N_W`.
    pub web_servers: usize,
    /// Web-service unavailability `1 − A(WS)`.
    pub unavailability: f64,
}

/// The sensitivity grids of Figures 11–12: `λ ∈ {1e-2, 1e-3, 1e-4}`,
/// `α ∈ {50, 100, 150}`.
pub fn figure_grid() -> (Vec<f64>, Vec<f64>) {
    (vec![1e-2, 1e-3, 1e-4], vec![50.0, 100.0, 150.0])
}

/// The flattened `(λ, α, N_W)` evaluation grid of Figures 11–12, in the
/// order the serial sweep visits it.
pub(crate) fn figure_points_grid() -> Vec<(f64, f64, usize)> {
    let (lambdas, alphas) = figure_grid();
    let mut grid = Vec::with_capacity(lambdas.len() * alphas.len() * 10);
    for &lambda in &lambdas {
        for &alpha in &alphas {
            for nw in 1..=10usize {
                grid.push((lambda, alpha, nw));
            }
        }
    }
    grid
}

/// Evaluates one point of the Figure 11/12 grid — shared by the serial
/// and parallel sweeps so both produce bit-for-bit identical points.
fn figure_point(
    perfect: bool,
    lambda: f64,
    alpha: f64,
    nw: usize,
) -> Result<FigurePoint, TravelError> {
    let _point = uavail_obs::Stopwatch::start("travel.figure.point_ns");
    let _trace = uavail_obs::TraceSpan::enter_with_arg("travel.figure.point", "nw", nw as f64);
    let params = TaParameters::builder()
        .web_servers(nw)
        .failure_rate_per_hour(lambda)
        .arrival_rate_per_second(alpha)
        .build()?;
    let a = if perfect {
        webservice::redundant_perfect_availability(&params)?
    } else {
        webservice::redundant_imperfect_availability(&params)?
    };
    Ok(FigurePoint {
        failure_rate_per_hour: lambda,
        arrival_rate_per_second: alpha,
        web_servers: nw,
        unavailability: 1.0 - a,
    })
}

/// Context-reusing twin of [`figure_point`] — same parameters, same
/// instrumentation, bit-for-bit the same result, but every solver buffer
/// comes from `ctx`.
pub(crate) fn figure_point_with(
    perfect: bool,
    lambda: f64,
    alpha: f64,
    nw: usize,
    ctx: &mut EvalContext,
) -> Result<FigurePoint, TravelError> {
    let _point = uavail_obs::Stopwatch::start("travel.figure.point_ns");
    let _trace = uavail_obs::TraceSpan::enter_with_arg("travel.figure.point", "nw", nw as f64);
    let params = TaParameters::builder()
        .web_servers(nw)
        .failure_rate_per_hour(lambda)
        .arrival_rate_per_second(alpha)
        .build()?;
    let a = if perfect {
        webservice::redundant_perfect_availability_with(&params, ctx)?
    } else {
        webservice::redundant_imperfect_availability_with(&params, ctx)?
    };
    Ok(FigurePoint {
        failure_rate_per_hour: lambda,
        arrival_rate_per_second: alpha,
        web_servers: nw,
        unavailability: 1.0 - a,
    })
}

/// Counts the points of one figure sweep under the figure's own name, so
/// the metrics artifact reports per-figure coverage.
pub(crate) fn count_figure_points(perfect: bool, points: usize) {
    let name = if perfect {
        "travel.fig11.points"
    } else {
        "travel.fig12.points"
    };
    uavail_obs::counter_add(name, points as u64);
}

fn figure_sweep(perfect: bool) -> Result<Vec<FigurePoint>, TravelError> {
    let _span = uavail_obs::span("travel.figure_sweep");
    let grid = figure_points_grid();
    count_figure_points(perfect, grid.len());
    grid.into_iter()
        .map(|(lambda, alpha, nw)| figure_point(perfect, lambda, alpha, nw))
        .collect()
}

/// Parallel [`figure_sweep`]: evaluates the 90-point grid on up to
/// `threads` scoped worker threads, returning exactly the serial result.
pub(crate) fn figure_sweep_parallel_threads(
    perfect: bool,
    threads: usize,
) -> Result<Vec<FigurePoint>, TravelError> {
    let _span = uavail_obs::span("travel.figure_sweep_parallel");
    let grid = figure_points_grid();
    count_figure_points(perfect, grid.len());
    par_map_threads(&grid, threads, |&(lambda, alpha, nw)| {
        figure_point(perfect, lambda, alpha, nw)
    })
}

/// Context-reusing twin of [`figure_sweep`]: every point of the 90-point
/// grid is solved in `ctx`'s buffers, producing bit-for-bit the serial
/// sweep's result without its per-point allocations.
pub(crate) fn figure_sweep_with(
    perfect: bool,
    ctx: &mut EvalContext,
) -> Result<Vec<FigurePoint>, TravelError> {
    let _span = uavail_obs::span("travel.figure_sweep");
    let grid = figure_points_grid();
    count_figure_points(perfect, grid.len());
    grid.into_iter()
        .map(|(lambda, alpha, nw)| figure_point_with(perfect, lambda, alpha, nw, ctx))
        .collect()
}

/// Context-reusing twin of [`figure_sweep_parallel_threads`]: each worker
/// thread owns one [`EvalContext`] for its whole share of the grid.
pub(crate) fn figure_sweep_parallel_threads_with(
    perfect: bool,
    threads: usize,
) -> Result<Vec<FigurePoint>, TravelError> {
    let _span = uavail_obs::span("travel.figure_sweep_parallel");
    let grid = figure_points_grid();
    count_figure_points(perfect, grid.len());
    par_map_threads_with(
        &grid,
        threads,
        EvalContext::new,
        |ctx, &(lambda, alpha, nw)| figure_point_with(perfect, lambda, alpha, nw, ctx),
    )
}

/// Reproduces Figure 11: web-service unavailability vs. `N_W` under
/// **perfect** coverage, for the full λ × α grid.
///
/// # Errors
///
/// Propagates solver failures.
pub fn figure11() -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep(true)
}

/// Parallel [`figure11`]: same 90 points, bit for bit, computed on all
/// available cores.
///
/// # Errors
///
/// Exactly the errors [`figure11`] would produce.
pub fn figure11_parallel() -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_parallel_threads(true, default_threads())
}

/// Context-reusing [`figure11`]: same 90 points, bit for bit, computed in
/// `ctx`'s buffers without per-point allocation.
///
/// # Errors
///
/// Exactly the errors [`figure11`] would produce.
pub fn figure11_with(ctx: &mut EvalContext) -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_with(true, ctx)
}

/// Context-reusing [`figure11_parallel`]: one [`EvalContext`] per worker
/// thread, bit-for-bit the serial result.
///
/// # Errors
///
/// Exactly the errors [`figure11`] would produce.
pub fn figure11_parallel_with() -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_parallel_threads_with(true, default_threads())
}

/// Reproduces Figure 12: the same sweep under **imperfect** coverage
/// (`c = 0.98`, `β = 12/h`).
///
/// # Errors
///
/// Propagates solver failures.
pub fn figure12() -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep(false)
}

/// Parallel [`figure12`]: same 90 points, bit for bit, computed on all
/// available cores.
///
/// # Errors
///
/// Exactly the errors [`figure12`] would produce.
pub fn figure12_parallel() -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_parallel_threads(false, default_threads())
}

/// Context-reusing [`figure12`]: same 90 points, bit for bit, computed in
/// `ctx`'s buffers without per-point allocation.
///
/// # Errors
///
/// Exactly the errors [`figure12`] would produce.
pub fn figure12_with(ctx: &mut EvalContext) -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_with(false, ctx)
}

/// Context-reusing [`figure12_parallel`]: one [`EvalContext`] per worker
/// thread, bit-for-bit the serial result.
///
/// # Errors
///
/// Exactly the errors [`figure12`] would produce.
pub fn figure12_parallel_with() -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_parallel_threads_with(false, default_threads())
}

/// One failed point of a resilient figure sweep: which grid point failed
/// and the typed error it failed with.
#[derive(Debug)]
pub struct FigureFailure {
    /// Index of the point in the flattened `(λ, α, N_W)` grid.
    pub index: usize,
    /// Web-server failure rate `λ` (per hour) at the failing point.
    pub failure_rate_per_hour: f64,
    /// Request arrival rate `α` (per second) at the failing point.
    pub arrival_rate_per_second: f64,
    /// Number of web servers `N_W` at the failing point.
    pub web_servers: usize,
    /// Why the point failed (a caught panic surfaces as
    /// `TravelError::Core(CoreError::WorkerPanicked { .. })`).
    pub error: TravelError,
}

/// Outcome of a resilient figure sweep: every successfully evaluated
/// point plus a typed record of every point that failed — the graceful
/// degradation the paper argues for, applied to the evaluation stack
/// itself.
#[derive(Debug, Default)]
pub struct FigureReport {
    /// Successfully evaluated points, in grid order.
    pub points: Vec<FigurePoint>,
    /// Failed points, in grid order.
    pub failures: Vec<FigureFailure>,
}

impl FigureReport {
    /// `true` when every grid point evaluated successfully.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Serializes the report as one JSON object (schema
    /// `uavail-figure-report/v1`); failures carry their grid coordinates
    /// and the error rendered as text.
    pub fn to_json(&self) -> JsonValue {
        let point_json = |lambda: f64, alpha: f64, nw: usize| {
            vec![
                ("lambda", JsonValue::Float(lambda)),
                ("alpha", JsonValue::Float(alpha)),
                ("web_servers", JsonValue::UInt(nw as u64)),
            ]
        };
        JsonValue::object(vec![
            ("schema", JsonValue::str("uavail-figure-report/v1")),
            (
                "points",
                JsonValue::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            let mut fields = point_json(
                                p.failure_rate_per_hour,
                                p.arrival_rate_per_second,
                                p.web_servers,
                            );
                            fields.push(("unavailability", JsonValue::Float(p.unavailability)));
                            JsonValue::object(fields)
                        })
                        .collect(),
                ),
            ),
            (
                "failures",
                JsonValue::Array(
                    self.failures
                        .iter()
                        .map(|fail| {
                            let mut fields = vec![("index", JsonValue::UInt(fail.index as u64))];
                            fields.extend(point_json(
                                fail.failure_rate_per_hour,
                                fail.arrival_rate_per_second,
                                fail.web_servers,
                            ));
                            fields.push(("error", JsonValue::Str(fail.error.to_string())));
                            JsonValue::object(fields)
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// Fault-tolerant figure sweep: evaluates the full 90-point grid,
/// recording per-point failures (including caught panics) into a
/// [`FigureReport`] instead of aborting at the first one. Points that
/// evaluate successfully are bit-for-bit the points the plain sweep
/// produces.
pub(crate) fn figure_sweep_resilient_threads(perfect: bool, threads: usize) -> FigureReport {
    let _span = uavail_obs::span("travel.figure_sweep_resilient");
    let grid = figure_points_grid();
    count_figure_points(perfect, grid.len());
    let outcomes = par_map_threads_capture(&grid, threads, |&(lambda, alpha, nw)| {
        figure_point(perfect, lambda, alpha, nw)
    });
    let mut report = FigureReport::default();
    for (index, (&(lambda, alpha, nw), outcome)) in grid.iter().zip(outcomes).enumerate() {
        match outcome {
            Ok(point) => report.points.push(point),
            Err(error) => report.failures.push(FigureFailure {
                index,
                failure_rate_per_hour: lambda,
                arrival_rate_per_second: alpha,
                web_servers: nw,
                error,
            }),
        }
    }
    // Recorded unconditionally (a zero is still a record), so a metrics
    // artifact always shows whether the resilient machinery ran.
    uavail_obs::counter_add("travel.figure.resilient.points", report.points.len() as u64);
    uavail_obs::counter_add(
        "travel.figure.resilient.failures",
        report.failures.len() as u64,
    );
    report
}

/// Resilient [`figure12`]: the imperfect-coverage sweep that degrades
/// gracefully — every point that can be evaluated is, and every point
/// that cannot is reported as a typed [`FigureFailure`] instead of
/// aborting the study.
pub fn figure12_resilient() -> FigureReport {
    figure_sweep_resilient_threads(false, default_threads())
}

/// Per-category user-unavailability contributions (Figure 13) for one
/// user class.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryBreakdown {
    /// The class name.
    pub class_name: String,
    /// Total user unavailability.
    pub total_unavailability: f64,
    /// `(category, unavailability contribution, downtime hours/year)` in
    /// SC1..SC4 order.
    pub categories: Vec<(ScenarioCategory, f64, f64)>,
}

/// Reproduces Figure 13: the contribution of each scenario category
/// SC1–SC4 to the user-perceived unavailability, for one class on the
/// reference architecture.
///
/// # Errors
///
/// Propagates solver failures.
pub fn figure13(class: &UserClass) -> Result<CategoryBreakdown, TravelError> {
    let _span = uavail_obs::span("travel.figure13");
    let params = TaParameters::paper_defaults();
    let model = TravelAgencyModel::new(params.clone(), Architecture::paper_reference())?;
    let env = model.service_availabilities()?;
    let mut per_category: HashMap<ScenarioCategory, f64> = HashMap::new();
    let mut total = 0.0;
    for s in class.table().scenarios() {
        let a = scenario_availability(s, &params, &env)?;
        let contribution = s.probability * (1.0 - a);
        total += contribution;
        let cat = ScenarioCategory::classify(s, "Search", "Book", "Pay");
        *per_category.entry(cat).or_insert(0.0) += contribution;
    }
    let categories = ScenarioCategory::all()
        .into_iter()
        .map(|c| {
            let u = per_category.get(&c).copied().unwrap_or(0.0);
            (c, u, u * HOURS_PER_YEAR)
        })
        .collect();
    Ok(CategoryBreakdown {
        class_name: class.name().to_string(),
        total_unavailability: total,
        categories,
    })
}

/// The Section 5.2 revenue analysis for one class: transactions and
/// revenue lost to SC4 (payment-scenario) downtime.
#[derive(Debug, Clone, PartialEq)]
pub struct RevenueAnalysis {
    /// The class name.
    pub class_name: String,
    /// SC4 downtime in hours per year.
    pub sc4_downtime_hours: f64,
    /// Payment transactions lost per year.
    pub lost_transactions: f64,
    /// Revenue lost per year (dollars).
    pub lost_revenue: f64,
}

/// Reproduces the Section 5.2 loss-of-revenue estimate: a transaction
/// rate of 100/s and $100 average revenue applied to the SC4 downtime.
///
/// # Errors
///
/// Propagates solver failures.
pub fn revenue_analysis(class: &UserClass) -> Result<RevenueAnalysis, TravelError> {
    let breakdown = figure13(class)?;
    let (_, sc4_unavail, sc4_hours) = breakdown
        .categories
        .iter()
        .find(|(c, _, _)| *c == ScenarioCategory::Sc4Pay)
        .copied()
        .expect("SC4 always present");
    let model = RevenueModel::new(100.0, 100.0)?;
    let loss = model.annual_loss(1.0 - sc4_unavail)?;
    Ok(RevenueAnalysis {
        class_name: breakdown.class_name,
        sc4_downtime_hours: sc4_hours,
        lost_transactions: loss.lost_transactions,
        lost_revenue: loss.lost_revenue,
    })
}

/// Section 5.1 capacity planning: the smallest `N_W` (up to `max_servers`)
/// whose **web-service** unavailability under imperfect coverage is below
/// `target_unavailability`, or `None` if no size qualifies.
///
/// # Errors
///
/// Propagates solver failures.
pub fn min_web_servers_for(
    target_unavailability: f64,
    failure_rate_per_hour: f64,
    arrival_rate_per_second: f64,
    max_servers: usize,
) -> Result<Option<usize>, TravelError> {
    for nw in 1..=max_servers {
        let params = TaParameters::builder()
            .web_servers(nw)
            // The paper holds K = 10 up to N_W = 10; for larger farms the
            // buffer must at least hold one request per server.
            .buffer_size(10.max(nw))
            .failure_rate_per_hour(failure_rate_per_hour)
            .arrival_rate_per_second(arrival_rate_per_second)
            .build()?;
        let a = webservice::redundant_imperfect_availability(&params)?;
        if 1.0 - a < target_unavailability {
            return Ok(Some(nw));
        }
    }
    Ok(None)
}

/// Context-reusing twin of [`min_web_servers_for`]: every candidate farm
/// size is evaluated in `ctx`'s buffers, with bit-for-bit the same
/// threshold decisions.
///
/// # Errors
///
/// Propagates solver failures.
pub fn min_web_servers_for_with(
    target_unavailability: f64,
    failure_rate_per_hour: f64,
    arrival_rate_per_second: f64,
    max_servers: usize,
    ctx: &mut EvalContext,
) -> Result<Option<usize>, TravelError> {
    for nw in 1..=max_servers {
        let params = TaParameters::builder()
            .web_servers(nw)
            // The paper holds K = 10 up to N_W = 10; for larger farms the
            // buffer must at least hold one request per server.
            .buffer_size(10.max(nw))
            .failure_rate_per_hour(failure_rate_per_hour)
            .arrival_rate_per_second(arrival_rate_per_second)
            .build()?;
        let a = webservice::redundant_imperfect_availability_with(&params, ctx)?;
        if 1.0 - a < target_unavailability {
            return Ok(Some(nw));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 8 values for comparison (classes A and B).
    const PAPER_TABLE8: [(usize, f64, f64); 6] = [
        (1, 0.84235, 0.76875),
        (2, 0.96509, 0.95529),
        (3, 0.97867, 0.97593),
        (4, 0.98004, 0.97802),
        (5, 0.98018, 0.97822),
        (10, 0.98020, 0.97825),
    ];

    #[test]
    fn table8_reproduces_paper_within_tolerance() {
        let rows = table8().unwrap();
        assert_eq!(rows.len(), 6);
        for (row, (n, a, b)) in rows.iter().zip(PAPER_TABLE8) {
            assert_eq!(row.reservation_systems, n);
            // The paper's own intermediate roundings leave ≤ 1.5e-2
            // absolute slack on some entries; shape tolerances below pin
            // the trends exactly.
            assert!(
                (row.class_a - a).abs() < 2e-2,
                "N={n} class A: {} vs paper {a}",
                row.class_a
            );
            assert!(
                (row.class_b - b).abs() < 2e-2,
                "N={n} class B: {} vs paper {b}",
                row.class_b
            );
        }
        // Class A N=1 reproduces to 4 decimals.
        assert!((rows[0].class_a - 0.84235).abs() < 2e-4);
    }

    #[test]
    fn table8_shape_properties() {
        let rows = table8().unwrap();
        for w in rows.windows(2) {
            // Monotone increasing in N for both classes.
            assert!(w[1].class_a >= w[0].class_a);
            assert!(w[1].class_b >= w[0].class_b);
        }
        for row in &rows {
            // Class B users always perceive lower availability.
            assert!(row.class_b < row.class_a);
        }
        // Plateau: the jump from 1 to 4 dominates; 5 -> 10 is negligible.
        let early_gain = rows[3].class_a - rows[0].class_a;
        let late_gain = rows[5].class_a - rows[4].class_a;
        assert!(late_gain < early_gain / 100.0);
    }

    #[test]
    fn figure11_shape() {
        let points = figure11().unwrap();
        assert_eq!(points.len(), 3 * 3 * 10);
        // Perfect coverage: unavailability decreases monotonically in N_W
        // for every (lambda, alpha) pair.
        let (lambdas, alphas) = figure_grid();
        for &l in &lambdas {
            for &a in &alphas {
                let series: Vec<&FigurePoint> = points
                    .iter()
                    .filter(|p| p.failure_rate_per_hour == l && p.arrival_rate_per_second == a)
                    .collect();
                assert_eq!(series.len(), 10);
                for w in series.windows(2) {
                    assert!(
                        w[1].unavailability <= w[0].unavailability * (1.0 + 1e-9),
                        "lambda={l} alpha={a} N_W={}",
                        w[1].web_servers
                    );
                }
            }
        }
    }

    #[test]
    fn figure12_reversal_beyond_four_servers() {
        // The imperfect-coverage curves turn back up for N_W > 4
        // (for load < 1 where the buffer effect saturates).
        let points = figure12().unwrap();
        let series: Vec<&FigurePoint> = points
            .iter()
            .filter(|p| p.failure_rate_per_hour == 1e-2 && p.arrival_rate_per_second == 50.0)
            .collect();
        let u4 = series.iter().find(|p| p.web_servers == 4).unwrap();
        let u10 = series.iter().find(|p| p.web_servers == 10).unwrap();
        let u1 = series.iter().find(|p| p.web_servers == 1).unwrap();
        assert!(
            u4.unavailability < u1.unavailability,
            "redundancy helps first"
        );
        assert!(
            u10.unavailability > u4.unavailability,
            "trend must reverse: U(10) = {} vs U(4) = {}",
            u10.unavailability,
            u4.unavailability
        );
    }

    #[test]
    fn figure12_matches_figure11_at_full_coverage_direction() {
        // Imperfect coverage is never better than perfect coverage.
        let f11 = figure11().unwrap();
        let f12 = figure12().unwrap();
        for (p11, p12) in f11.iter().zip(&f12) {
            assert!(p12.unavailability >= p11.unavailability - 1e-15);
        }
    }

    #[test]
    fn parallel_figure_sweeps_match_serial_bit_for_bit() {
        let s11 = figure11().unwrap();
        let s12 = figure12().unwrap();
        for threads in [2, 8] {
            for (serial, parallel) in [
                (&s11, figure_sweep_parallel_threads(true, threads).unwrap()),
                (&s12, figure_sweep_parallel_threads(false, threads).unwrap()),
            ] {
                assert_eq!(serial.len(), parallel.len());
                for (s, p) in serial.iter().zip(&parallel) {
                    assert_eq!(s.web_servers, p.web_servers);
                    assert_eq!(s.failure_rate_per_hour, p.failure_rate_per_hour);
                    assert_eq!(s.arrival_rate_per_second, p.arrival_rate_per_second);
                    assert_eq!(
                        s.unavailability.to_bits(),
                        p.unavailability.to_bits(),
                        "threads={threads} N_W={} λ={} α={}",
                        s.web_servers,
                        s.failure_rate_per_hour,
                        s.arrival_rate_per_second
                    );
                }
            }
        }
        assert_eq!(s11, figure11_parallel().unwrap());
        assert_eq!(s12, figure12_parallel().unwrap());
    }

    #[test]
    fn table7_headline_pinned_on_serial_and_parallel_paths() {
        // Table 7: A(WS) = 0.999995587 at λ = 1e-4, α = 100, N_W = 4 —
        // that point sits on the Figure 12 grid, so both sweep paths must
        // reproduce it.
        for (label, points) in [
            ("serial", figure12().unwrap()),
            ("parallel", figure12_parallel().unwrap()),
        ] {
            let p = points
                .iter()
                .find(|p| {
                    p.failure_rate_per_hour == 1e-4
                        && p.arrival_rate_per_second == 100.0
                        && p.web_servers == 4
                })
                .unwrap();
            assert!(
                (p.unavailability - (1.0 - 0.999995587)).abs() < 1e-8,
                "{label}: U(WS) = {:.3e}",
                p.unavailability
            );
        }
    }

    #[test]
    fn figure12_reversal_on_parallel_path() {
        let points = figure12_parallel().unwrap();
        let series: Vec<&FigurePoint> = points
            .iter()
            .filter(|p| p.failure_rate_per_hour == 1e-2 && p.arrival_rate_per_second == 50.0)
            .collect();
        let u4 = series.iter().find(|p| p.web_servers == 4).unwrap();
        let u10 = series.iter().find(|p| p.web_servers == 10).unwrap();
        assert!(
            u10.unavailability > u4.unavailability,
            "parallel path must show the Figure 12 reversal: U(10) = {} vs U(4) = {}",
            u10.unavailability,
            u4.unavailability
        );
    }

    #[test]
    fn resilient_figure_sweep_is_complete_and_bit_for_bit_when_healthy() {
        let report = figure12_resilient();
        assert!(report.is_complete(), "failures: {:?}", report.failures);
        let plain = figure12().unwrap();
        assert_eq!(report.points.len(), plain.len());
        for (r, p) in report.points.iter().zip(&plain) {
            assert_eq!(r.web_servers, p.web_servers);
            assert_eq!(r.unavailability.to_bits(), p.unavailability.to_bits());
        }
        // The JSON artifact parses back and keeps the schema + counts.
        let text = report.to_json().to_string();
        let parsed = uavail_obs::json::parse(&text).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(JsonValue::as_str),
            Some("uavail-figure-report/v1")
        );
        assert_eq!(
            parsed
                .get("points")
                .and_then(JsonValue::as_array)
                .map(|a| a.len()),
            Some(plain.len())
        );
    }

    #[test]
    fn figure13_totals_match_model_unavailability() {
        for class in [class_a(), class_b()] {
            let breakdown = figure13(&class).unwrap();
            let model = TravelAgencyModel::new(
                TaParameters::paper_defaults(),
                Architecture::paper_reference(),
            )
            .unwrap();
            let u = model.user_unavailability(&class).unwrap();
            assert!(
                (breakdown.total_unavailability - u).abs() < 1e-12,
                "class {}",
                class.name()
            );
            // Four categories, each non-negative.
            assert_eq!(breakdown.categories.len(), 4);
            assert!(breakdown.categories.iter().all(|(_, u, _)| *u >= 0.0));
        }
    }

    #[test]
    fn figure13_sc4_higher_for_class_b() {
        // Paper: SC4 downtime is ~2.7x higher for class B (43 h/yr vs
        // 16 h/yr). The *ratio* is fully determined by the Table 1
        // probabilities (0.203 / 0.075 ≈ 2.71) and must reproduce; the
        // paper's absolute hours are inconsistent with its own
        // A(PS) = 0.9 (Table 7) and are documented as a deviation in
        // EXPERIMENTS.md.
        let a = figure13(&class_a()).unwrap();
        let b = figure13(&class_b()).unwrap();
        let sc4 = |x: &CategoryBreakdown| {
            x.categories
                .iter()
                .find(|(c, _, _)| *c == ScenarioCategory::Sc4Pay)
                .unwrap()
                .2
        };
        let (h_a, h_b) = (sc4(&a), sc4(&b));
        assert!(h_b > 2.0 * h_a, "SC4 hours: A {h_a}, B {h_b}");
        let ratio = h_b / h_a;
        assert!(
            (ratio - 0.203 / 0.075).abs() < 0.01,
            "SC4 ratio should equal the scenario-probability ratio, got {ratio}"
        );
        // Both classes lose real time to payment scenarios (A(PS) = 0.9
        // dominates SC4 unavailability).
        assert!(h_a > 10.0 && h_b > 30.0, "A {h_a} h, B {h_b} h");
    }

    #[test]
    fn revenue_analysis_is_consistent_and_ranked() {
        // Paper magnitudes (5.7M / 15.5M lost transactions) derive from
        // its Figure 13 hours; our SC4 hours differ (see EXPERIMENTS.md),
        // but the *structure* must hold exactly: transactions = downtime ×
        // rate, revenue = transactions × $100, and class B loses ~2.7× as
        // much as class A.
        let a = revenue_analysis(&class_a()).unwrap();
        let b = revenue_analysis(&class_b()).unwrap();
        for r in [&a, &b] {
            let expected_tx = r.sc4_downtime_hours * 3600.0 * 100.0;
            assert!(
                (r.lost_transactions - expected_tx).abs() / expected_tx < 1e-9,
                "class {}: {} vs {expected_tx}",
                r.class_name,
                r.lost_transactions
            );
            assert!((r.lost_revenue / r.lost_transactions - 100.0).abs() < 1e-9);
        }
        let ratio = b.lost_transactions / a.lost_transactions;
        assert!((ratio - 0.203 / 0.075).abs() < 0.01, "ratio {ratio}");
        // Order-of-magnitude sanity: tens of millions of transactions,
        // billions of dollars at stake — the paper's qualitative point.
        assert!(a.lost_transactions > 1e6 && b.lost_transactions > 1e7);
        assert!(b.lost_revenue > 1e9);
    }

    #[test]
    fn capacity_planning_rules_from_section_5_1() {
        // "unavailability lower than 5 min/year (unavailability < 1e-5)".
        let target = 1e-5;
        // λ = 1e-3/h, α = 50/s: at least 2 servers.
        let n = min_web_servers_for(target, 1e-3, 50.0, 10).unwrap();
        assert_eq!(n, Some(2));
        // λ = 1e-3/h, α = 100/s: the paper reads 4 servers off
        // Figure 12; analytically U(4) = 1.05e-5 sits marginally above
        // the 1e-5 line (invisible at the figure's log scale), so the
        // exact threshold crossing is at 5.
        let n = min_web_servers_for(target, 1e-3, 100.0, 10).unwrap();
        assert!(n == Some(4) || n == Some(5), "got {n:?}");
        let relaxed = min_web_servers_for(1.1e-5, 1e-3, 100.0, 10).unwrap();
        assert_eq!(relaxed, Some(4));
        // Same with λ = 1e-4/h.
        let n = min_web_servers_for(target, 1e-4, 100.0, 10).unwrap();
        assert_eq!(n, Some(4));
        // λ = 1e-2/h: unattainable.
        let n = min_web_servers_for(target, 1e-2, 100.0, 10).unwrap();
        assert_eq!(n, None);
    }

    #[test]
    fn three_servers_keep_downtime_under_one_hour_per_year() {
        // §5.1: with 3 servers, unavailability < 1 h/yr for λ in
        // [1e-4, 1e-2] and load < 1.
        let one_hour = 1.0 / 8760.0;
        for lambda in [1e-2, 1e-3, 1e-4] {
            let params = TaParameters::builder()
                .web_servers(3)
                .failure_rate_per_hour(lambda)
                .arrival_rate_per_second(50.0)
                .build()
                .unwrap();
            let a = webservice::redundant_imperfect_availability(&params).unwrap();
            assert!(
                1.0 - a < one_hour,
                "lambda={lambda}: unavailability {}",
                1.0 - a
            );
        }
    }
}
