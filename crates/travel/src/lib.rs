//! # uavail-travel
//!
//! The complete travel-agency (TA) case study of Kaâniche, Kanoun &
//! Martinello, *"A User-Perceived Availability Evaluation of a Web Based
//! Travel Agency"*, DSN 2003 — every model, table and figure of the paper,
//! built on the `uavail` framework crates.
//!
//! ## Map from the paper to this crate
//!
//! | Paper artifact | Here |
//! |---|---|
//! | Table 1 (user scenarios, classes A/B) | [`user::class_a`], [`user::class_b`] |
//! | Table 2 (function → service mapping) | [`functions::service_mapping`] |
//! | Table 3 (external services) | [`services`] |
//! | Table 4 (application/database services) | [`services`] |
//! | Table 5 / eqs. 1–9 (web service) | [`webservice`] |
//! | Table 6 (function availabilities) | [`functions`] |
//! | Table 7 (parameters) | [`TaParameters::paper_defaults`] |
//! | Table 8, Figures 11–13, §5.2 revenue | [`evaluation`] |
//! | Figures 7–8 (architectures) | [`Architecture`] |
//! | Simulation cross-validation (ours) | [`sim_validation`] |
//!
//! # Examples
//!
//! Reproduce the paper's headline web-service availability
//! (`A(WS) = 0.999995587`, Table 7):
//!
//! ```
//! use uavail_travel::{TaParameters, webservice};
//!
//! # fn main() -> Result<(), uavail_travel::TravelError> {
//! let params = TaParameters::paper_defaults();
//! let a = webservice::redundant_imperfect_availability(&params)?;
//! assert!((a - 0.999995587).abs() < 1e-8);
//! # Ok(())
//! # }
//! ```

mod architecture;
pub mod batch;
pub mod context;
mod error;
pub mod evaluation;
pub mod extensions;
pub mod fig2;
pub mod fta;
pub mod functions;
mod loss_cache;
pub mod maintenance;
mod model;
pub mod multisite;
mod params;
pub mod report;
pub mod services;
pub mod session_sim;
pub mod sim_validation;
pub mod transient;
pub mod user;
pub mod webservice;

pub use architecture::{Architecture, Coverage};
pub use batch::BatchContext;
pub use context::EvalContext;
pub use error::TravelError;
pub use model::TravelAgencyModel;
pub use params::TaParameters;
