//! Batched evaluation — block-level reuse on top of [`EvalContext`].
//!
//! The `*_with` evaluation paths reuse *buffers* across points; this layer
//! additionally reuses *model structure* that is invariant across a whole
//! block of neighboring sweep points. A [`BatchContext`] wraps an
//! [`EvalContext`] and adds:
//!
//! * **M/M/c/K family priming** — within one `(λ, α)` series the queueing
//!   model only varies in its server count, so one structure-of-arrays
//!   [`uavail_queueing::MmckFamily`] solve fills the process-wide loss
//!   memo for every farm size at once (each lane bit-identical to the
//!   incremental scalar recurrence).
//! * **Series memos** — a repeated figure series or Table 8 request
//!   replays the exact stored bits of its first computation.
//!
//! The figure sweeps are driven through
//! [`uavail_core::sweep::sweep_batched`], which partitions the 90-point
//! grid into contiguous blocks and hands each whole block to the
//! evaluator. Every batched twin is **bit-for-bit identical** to its
//! `*_with` counterpart (pinned in the crate's `batched_identity`
//! integration tests); batching changes only *when* shared structure is
//! computed, never *what* arithmetic produces each result.

use std::collections::{HashMap, HashSet};

use uavail_core::par::{default_threads, par_map_threads_with};
use uavail_core::CoreError;

use crate::context::EvalContext;
use crate::evaluation::{
    count_figure_points, figure_point_with, figure_points_grid, table8_with, FigurePoint, Table8Row,
};
use crate::{webservice, TaParameters, TravelError};

/// Farm sizes covered by one figure series (`N_W = 1 ..= 10`).
const SERIES_LEN: usize = 10;

/// Bound on the per-(figure, λ, α) series memo; the paper grids need 18
/// entries, the cap only matters for open-ended custom sweeps.
const FIGURE_SERIES_CAP: usize = 1024;

/// Memo key of one figure series: the coverage flavor plus the bit
/// patterns of `(λ, α)`.
type SeriesKey = (bool, u64, u64);

/// Block-evaluation workspace: an [`EvalContext`] plus the block-invariant
/// structures the batched twins detect and reuse.
///
/// Like [`EvalContext`], a `BatchContext` is cheap to create and
/// transparent: every result replays the exact bits the scalar path would
/// produce. For parallel batched sweeps each worker owns one.
///
/// # Examples
///
/// ```
/// use uavail_travel::batch::{figure12_batched, BatchContext};
///
/// # fn main() -> Result<(), uavail_travel::TravelError> {
/// let mut bctx = BatchContext::new();
/// let batched = figure12_batched(10, &mut bctx)?;
/// let scalar = uavail_travel::evaluation::figure12()?;
/// assert_eq!(batched, scalar);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct BatchContext {
    /// The wrapped per-point evaluation scratch.
    ctx: EvalContext,
    /// M/M/c/K families already primed into the loss memo, keyed by
    /// `(α, ν, K, max_servers)` bits.
    primed: HashSet<(u64, u64, usize, usize)>,
    /// Family weight workspace, reused across primings.
    prime_buf: Vec<f64>,
    /// Memoized unavailability series, one slot per `N_W = 1 ..= 10`.
    figure_series: HashMap<SeriesKey, [Option<f64>; SERIES_LEN]>,
    /// Memoized Table 8 (the table takes no parameters).
    table8_memo: Option<Vec<Table8Row>>,
}

impl BatchContext {
    /// Creates an empty batch context; storage grows on first use.
    pub fn new() -> Self {
        BatchContext::default()
    }

    /// The wrapped [`EvalContext`], for mixing batched and `*_with` calls
    /// on the same warm storage.
    pub fn eval_context(&mut self) -> &mut EvalContext {
        &mut self.ctx
    }

    /// Number of evaluations that reused previously-warmed storage.
    pub fn reuse_count(&self) -> u64 {
        self.ctx.reuse_count()
    }

    /// Primes the loss memo for all farm sizes `1 ..= max_servers` at
    /// `params`' queueing parameters with one family solve, at most once
    /// per distinct `(α, ν, K, max_servers)`.
    fn prime(&mut self, params: &TaParameters, max_servers: usize) -> Result<(), TravelError> {
        let key = (
            params.arrival_rate_per_second.to_bits(),
            params.service_rate_per_second.to_bits(),
            params.buffer_size,
            max_servers,
        );
        if self.primed.insert(key) {
            webservice::prime_loss_family(params, max_servers, &mut self.prime_buf)?;
        }
        Ok(())
    }

    /// One figure point through the batched layer: a series-memo hit
    /// replays stored bits; a miss primes the block-invariant M/M/c/K
    /// family and evaluates through the scalar `figure_point_with` path.
    fn figure_point(
        &mut self,
        perfect: bool,
        lambda: f64,
        alpha: f64,
        nw: usize,
    ) -> Result<FigurePoint, TravelError> {
        let key = (perfect, lambda.to_bits(), alpha.to_bits());
        let in_series = (1..=SERIES_LEN).contains(&nw);
        if in_series {
            if let Some(u) = self.figure_series.get(&key).and_then(|s| s[nw - 1]) {
                uavail_obs::counter_add("travel.batch.series_hits", 1);
                return Ok(FigurePoint {
                    failure_rate_per_hour: lambda,
                    arrival_rate_per_second: alpha,
                    web_servers: nw,
                    unavailability: u,
                });
            }
            // The queueing side of the series depends only on α (λ never
            // enters the performance model): one family solve covers all
            // ten farm sizes of this series.
            let probe = TaParameters::builder()
                .arrival_rate_per_second(alpha)
                .build()?;
            self.prime(&probe, SERIES_LEN)?;
        }
        let point = figure_point_with(perfect, lambda, alpha, nw, &mut self.ctx)?;
        if in_series {
            if self.figure_series.len() >= FIGURE_SERIES_CAP {
                self.figure_series.clear();
            }
            self.figure_series.entry(key).or_insert([None; SERIES_LEN])[nw - 1] =
                Some(point.unavailability);
        }
        Ok(point)
    }
}

/// Batched figure sweep: the 90-point grid is partitioned into blocks of
/// up to `block` points by [`uavail_core::sweep::sweep_batched`] and
/// evaluated through `bctx`, bit-for-bit the scalar sweep's result.
fn figure_sweep_batched(
    perfect: bool,
    block: usize,
    bctx: &mut BatchContext,
) -> Result<Vec<FigurePoint>, TravelError> {
    let _span = uavail_obs::span("travel.figure_sweep_batched");
    let grid = figure_points_grid();
    count_figure_points(perfect, grid.len());
    // The sweep engine drives f64 parameter values; the figure grid is a
    // 3-axis product, so the engine sweeps point *indices* and the
    // evaluator decodes them. The model error is stashed alongside the
    // workspace because the engine's error channel is CoreError-typed;
    // the placeholder it carries is discarded in favor of the stash.
    let xs: Vec<f64> = (0..grid.len()).map(|i| i as f64).collect();
    let mut ws = (bctx, None::<TravelError>);
    let swept = uavail_core::sweep::sweep_batched(&xs, block, &mut ws, |ws, xs, out| {
        for &x in xs {
            let (lambda, alpha, nw) = grid[x as usize];
            match ws.0.figure_point(perfect, lambda, alpha, nw) {
                Ok(point) => out.push(point.unavailability),
                Err(e) => {
                    let reason = e.to_string();
                    ws.1 = Some(e);
                    return Err(CoreError::BadWeights { reason });
                }
            }
        }
        Ok(())
    });
    match swept {
        Ok(points) => Ok(points
            .iter()
            .zip(&grid)
            .map(|(p, &(lambda, alpha, nw))| FigurePoint {
                failure_rate_per_hour: lambda,
                arrival_rate_per_second: alpha,
                web_servers: nw,
                unavailability: p.y,
            })
            .collect()),
        Err(e) => Err(ws.1.take().unwrap_or(TravelError::Core(e))),
    }
}

/// Parallel [`figure_sweep_batched`]: grid blocks are distributed over
/// scoped workers, each owning a private [`BatchContext`]; the merged
/// result is bit-for-bit the serial batched (and scalar) sweep's.
fn figure_sweep_parallel_batched(
    perfect: bool,
    block: usize,
    threads: usize,
) -> Result<Vec<FigurePoint>, TravelError> {
    if block == 0 {
        return Err(TravelError::Core(CoreError::BadWeights {
            reason: "batched sweep block size must be at least 1".into(),
        }));
    }
    let _span = uavail_obs::span("travel.figure_sweep_parallel_batched");
    let grid = figure_points_grid();
    count_figure_points(perfect, grid.len());
    let blocks: Vec<&[(f64, f64, usize)]> = grid.chunks(block).collect();
    let per_block = par_map_threads_with(&blocks, threads, BatchContext::new, |bctx, chunk| {
        chunk
            .iter()
            .map(|&(lambda, alpha, nw)| bctx.figure_point(perfect, lambda, alpha, nw))
            .collect::<Result<Vec<_>, TravelError>>()
    })?;
    Ok(per_block.into_iter().flatten().collect())
}

/// Batched [`crate::evaluation::figure11`]: same 90 points, bit for bit,
/// with block-level structure reuse through `bctx`.
///
/// # Errors
///
/// Exactly the errors `figure11` would produce, plus a
/// [`CoreError::BadWeights`] rejection of `block == 0`.
pub fn figure11_batched(
    block: usize,
    bctx: &mut BatchContext,
) -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_batched(true, block, bctx)
}

/// Batched [`crate::evaluation::figure12`]: same 90 points, bit for bit,
/// with block-level structure reuse through `bctx`.
///
/// # Errors
///
/// Exactly the errors `figure12` would produce, plus a
/// [`CoreError::BadWeights`] rejection of `block == 0`.
pub fn figure12_batched(
    block: usize,
    bctx: &mut BatchContext,
) -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_batched(false, block, bctx)
}

/// Parallel [`figure11_batched`] on all available cores, one
/// [`BatchContext`] per worker.
///
/// # Errors
///
/// Exactly the errors [`figure11_batched`] would produce.
pub fn figure11_parallel_batched(block: usize) -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_parallel_batched(true, block, default_threads())
}

/// Parallel [`figure12_batched`] on all available cores, one
/// [`BatchContext`] per worker.
///
/// # Errors
///
/// Exactly the errors [`figure12_batched`] would produce.
pub fn figure12_parallel_batched(block: usize) -> Result<Vec<FigurePoint>, TravelError> {
    figure_sweep_parallel_batched(false, block, default_threads())
}

/// Batched [`crate::evaluation::table8`]: the six-row table is computed
/// once — after priming the paper-default M/M/c/K family in one solve —
/// and replayed bit-for-bit on every later call.
///
/// # Errors
///
/// Exactly the errors `table8` would produce.
pub fn table8_batched(bctx: &mut BatchContext) -> Result<Vec<Table8Row>, TravelError> {
    if let Some(rows) = &bctx.table8_memo {
        uavail_obs::counter_add("travel.batch.table8_memo_hits", 1);
        return Ok(rows.clone());
    }
    let base = TaParameters::paper_defaults();
    bctx.prime(&base, base.web_servers)?;
    let rows = table8_with(&mut bctx.ctx)?;
    bctx.table8_memo = Some(rows.clone());
    Ok(rows)
}

/// Batched [`crate::evaluation::min_web_servers_for`]: candidate farm
/// sizes share one primed M/M/c/K family (all candidates up to `K = 10`
/// use the same buffer size), with bit-for-bit the same threshold
/// decisions as the scalar search.
///
/// # Errors
///
/// Propagates solver failures.
pub fn min_web_servers_for_batched(
    target_unavailability: f64,
    failure_rate_per_hour: f64,
    arrival_rate_per_second: f64,
    max_servers: usize,
    bctx: &mut BatchContext,
) -> Result<Option<usize>, TravelError> {
    for nw in 1..=max_servers {
        let params = TaParameters::builder()
            .web_servers(nw)
            // The paper holds K = 10 up to N_W = 10; for larger farms the
            // buffer must at least hold one request per server.
            .buffer_size(10.max(nw))
            .failure_rate_per_hour(failure_rate_per_hour)
            .arrival_rate_per_second(arrival_rate_per_second)
            .build()?;
        bctx.prime(&params, max_servers.min(params.buffer_size))?;
        let a = webservice::redundant_imperfect_availability_with(&params, &mut bctx.ctx)?;
        if 1.0 - a < target_unavailability {
            return Ok(Some(nw));
        }
    }
    Ok(None)
}
