use crate::TravelError;

/// The full parameter set of the TA study — Table 7 of the paper plus the
/// Section 5.1 web-farm parameters.
///
/// ## Units
///
/// Failure (`lambda`), repair (`mu`) and reconfiguration (`beta`) rates are
/// **per hour**; request arrival (`alpha`) and service (`nu`) rates are
/// **per second**. The two groups never mix inside a formula: the
/// availability chain uses only per-hour rates, the queueing model only the
/// dimensionless ratio `alpha / nu`, which is exactly why the paper's
/// composite approach is sound.
///
/// # Examples
///
/// ```
/// use uavail_travel::TaParameters;
///
/// let p = TaParameters::paper_defaults();
/// assert_eq!(p.web_servers, 4);
/// assert_eq!(p.buffer_size, 10);
/// let tweaked = TaParameters::builder()
///     .web_servers(6)
///     .coverage(0.95)
///     .build()
///     .unwrap();
/// assert_eq!(tweaked.web_servers, 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaParameters {
    /// Availability of the TA connectivity to the Internet (`A_net`).
    pub a_net: f64,
    /// Availability of the internal LAN (`A_LAN`).
    pub a_lan: f64,
    /// Availability of the computer host running the application server
    /// (`A(C_AS)`).
    pub a_cas: f64,
    /// Availability of the computer host running the database server
    /// (`A(C_DS)`).
    pub a_cds: f64,
    /// Availability of one disk (`A(Disk)`).
    pub a_disk: f64,
    /// Availability of the computer host running a web server
    /// (`A(C_WS)`), used by the basic architecture's equation (2). In the
    /// redundant architecture host availability is produced by the Markov
    /// farm model instead.
    pub a_cws: f64,
    /// Availability of the external payment system (`A_PS`).
    pub a_payment: f64,
    /// Availability of one flight reservation system (`A_Fi`).
    pub a_flight_system: f64,
    /// Availability of one hotel reservation system (`A_Hi`).
    pub a_hotel_system: f64,
    /// Availability of one car reservation system (`A_Ci`).
    pub a_car_system: f64,
    /// Number of flight reservation systems (`N_F`).
    pub num_flight_systems: usize,
    /// Number of hotel reservation systems (`N_H`).
    pub num_hotel_systems: usize,
    /// Number of car reservation systems (`N_C`).
    pub num_car_systems: usize,
    /// Browse diagram branch probability `q23` (cache hit).
    pub q23: f64,
    /// Browse diagram branch probability `q24` (to application server).
    pub q24: f64,
    /// Browse diagram branch probability `q45` (no database needed).
    pub q45: f64,
    /// Browse diagram branch probability `q47` (database involved).
    pub q47: f64,
    /// Number of web servers in the farm (`N_W`).
    pub web_servers: usize,
    /// Web-server failure rate `λ` (per hour).
    pub failure_rate_per_hour: f64,
    /// Shared repair rate `µ` (per hour).
    pub repair_rate_per_hour: f64,
    /// Failure coverage factor `c`.
    pub coverage: f64,
    /// Manual reconfiguration rate `β` (per hour; `1/β` = mean manual
    /// reconfiguration time).
    pub reconfiguration_rate_per_hour: f64,
    /// Request arrival rate `α` (per second).
    pub arrival_rate_per_second: f64,
    /// Per-server request service rate `ν` (per second).
    pub service_rate_per_second: f64,
    /// Web-server input buffer size `K`.
    pub buffer_size: usize,
}

impl TaParameters {
    /// The paper's reference parameters: Table 7 combined with the
    /// Section 5.1 web-farm setting (`N_W = 4`, `c = 0.98`,
    /// `α = 100/s`, `λ = 10⁻⁴/h`, `ν = 100/s`, `µ = 1/h`, `β = 12/h`,
    /// `K = 10`).
    pub fn paper_defaults() -> Self {
        TaParameters {
            a_net: 0.9966,
            a_lan: 0.9966,
            a_cas: 0.996,
            a_cds: 0.996,
            a_disk: 0.9,
            a_cws: 0.996,
            a_payment: 0.9,
            a_flight_system: 0.9,
            a_hotel_system: 0.9,
            a_car_system: 0.9,
            num_flight_systems: 5,
            num_hotel_systems: 5,
            num_car_systems: 5,
            q23: 0.2,
            q24: 0.8,
            q45: 0.4,
            q47: 0.6,
            web_servers: 4,
            failure_rate_per_hour: 1e-4,
            repair_rate_per_hour: 1.0,
            coverage: 0.98,
            reconfiguration_rate_per_hour: 12.0,
            arrival_rate_per_second: 100.0,
            service_rate_per_second: 100.0,
            buffer_size: 10,
        }
    }

    /// Starts a builder initialized with [`TaParameters::paper_defaults`].
    pub fn builder() -> TaParametersBuilder {
        TaParametersBuilder {
            params: TaParameters::paper_defaults(),
        }
    }

    /// Validates all parameter domains.
    ///
    /// # Errors
    ///
    /// [`TravelError::InvalidParameter`] naming the first violated field.
    pub fn validate(&self) -> Result<(), TravelError> {
        let probabilities: [(&'static str, f64); 12] = [
            ("a_net", self.a_net),
            ("a_lan", self.a_lan),
            ("a_cas", self.a_cas),
            ("a_cds", self.a_cds),
            ("a_disk", self.a_disk),
            ("a_cws", self.a_cws),
            ("a_payment", self.a_payment),
            ("a_flight_system", self.a_flight_system),
            ("a_hotel_system", self.a_hotel_system),
            ("a_car_system", self.a_car_system),
            ("coverage", self.coverage),
            ("q23", self.q23),
        ];
        for (name, v) in probabilities {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(TravelError::InvalidParameter {
                    name,
                    value: v,
                    requirement: "within [0, 1]",
                });
            }
        }
        for (name, v) in [("q24", self.q24), ("q45", self.q45), ("q47", self.q47)] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(TravelError::InvalidParameter {
                    name,
                    value: v,
                    requirement: "within [0, 1]",
                });
            }
        }
        if (self.q23 + self.q24 - 1.0).abs() > 1e-9 {
            return Err(TravelError::InvalidParameter {
                name: "q23 + q24",
                value: self.q23 + self.q24,
                requirement: "equal to 1",
            });
        }
        if (self.q45 + self.q47 - 1.0).abs() > 1e-9 {
            return Err(TravelError::InvalidParameter {
                name: "q45 + q47",
                value: self.q45 + self.q47,
                requirement: "equal to 1",
            });
        }
        for (name, v) in [
            ("failure_rate_per_hour", self.failure_rate_per_hour),
            ("repair_rate_per_hour", self.repair_rate_per_hour),
            (
                "reconfiguration_rate_per_hour",
                self.reconfiguration_rate_per_hour,
            ),
            ("arrival_rate_per_second", self.arrival_rate_per_second),
            ("service_rate_per_second", self.service_rate_per_second),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(TravelError::InvalidParameter {
                    name,
                    value: v,
                    requirement: "finite and > 0",
                });
            }
        }
        for (name, v) in [
            ("web_servers", self.web_servers),
            ("num_flight_systems", self.num_flight_systems),
            ("num_hotel_systems", self.num_hotel_systems),
            ("num_car_systems", self.num_car_systems),
            ("buffer_size", self.buffer_size),
        ] {
            if v == 0 {
                return Err(TravelError::InvalidParameter {
                    name,
                    value: 0.0,
                    requirement: "at least 1",
                });
            }
        }
        if self.buffer_size < self.web_servers {
            return Err(TravelError::InvalidParameter {
                name: "buffer_size",
                value: self.buffer_size as f64,
                requirement: "at least the number of web servers",
            });
        }
        Ok(())
    }

    /// Sets the same count for `N_F`, `N_H` and `N_C`, the sweep used by
    /// Table 8.
    pub fn with_reservation_systems(mut self, n: usize) -> Self {
        self.num_flight_systems = n;
        self.num_hotel_systems = n;
        self.num_car_systems = n;
        self
    }
}

impl Default for TaParameters {
    fn default() -> Self {
        TaParameters::paper_defaults()
    }
}

/// Builder for [`TaParameters`], seeded with the paper defaults.
#[derive(Debug, Clone)]
pub struct TaParametersBuilder {
    params: TaParameters,
}

impl TaParametersBuilder {
    /// Sets the number of web servers `N_W`.
    pub fn web_servers(mut self, n: usize) -> Self {
        self.params.web_servers = n;
        self
    }

    /// Sets the web-server failure rate `λ` (per hour).
    pub fn failure_rate_per_hour(mut self, v: f64) -> Self {
        self.params.failure_rate_per_hour = v;
        self
    }

    /// Sets the shared repair rate `µ` (per hour).
    pub fn repair_rate_per_hour(mut self, v: f64) -> Self {
        self.params.repair_rate_per_hour = v;
        self
    }

    /// Sets the coverage factor `c`.
    pub fn coverage(mut self, v: f64) -> Self {
        self.params.coverage = v;
        self
    }

    /// Sets the reconfiguration rate `β` (per hour).
    pub fn reconfiguration_rate_per_hour(mut self, v: f64) -> Self {
        self.params.reconfiguration_rate_per_hour = v;
        self
    }

    /// Sets the request arrival rate `α` (per second).
    pub fn arrival_rate_per_second(mut self, v: f64) -> Self {
        self.params.arrival_rate_per_second = v;
        self
    }

    /// Sets the per-server service rate `ν` (per second).
    pub fn service_rate_per_second(mut self, v: f64) -> Self {
        self.params.service_rate_per_second = v;
        self
    }

    /// Sets the buffer size `K`.
    pub fn buffer_size(mut self, v: usize) -> Self {
        self.params.buffer_size = v;
        self
    }

    /// Sets the common reservation-system count `N_F = N_H = N_C`.
    pub fn reservation_systems(mut self, n: usize) -> Self {
        self.params = self.params.with_reservation_systems(n);
        self
    }

    /// Sets the per-reservation-system availability (all three kinds).
    pub fn reservation_availability(mut self, a: f64) -> Self {
        self.params.a_flight_system = a;
        self.params.a_hotel_system = a;
        self.params.a_car_system = a;
        self
    }

    /// Validates and returns the parameters.
    ///
    /// # Errors
    ///
    /// See [`TaParameters::validate`].
    pub fn build(self) -> Result<TaParameters, TravelError> {
        self.params.validate()?;
        Ok(self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_valid() {
        assert!(TaParameters::paper_defaults().validate().is_ok());
    }

    #[test]
    fn builder_overrides() {
        let p = TaParameters::builder()
            .web_servers(2)
            .coverage(0.9)
            .arrival_rate_per_second(50.0)
            .reservation_systems(3)
            .build()
            .unwrap();
        assert_eq!(p.web_servers, 2);
        assert_eq!(p.num_hotel_systems, 3);
        assert_eq!(p.coverage, 0.9);
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut p = TaParameters::paper_defaults();
        p.coverage = 1.5;
        assert!(p.validate().is_err());
        let mut p = TaParameters::paper_defaults();
        p.q23 = 0.5; // q23 + q24 != 1
        assert!(p.validate().is_err());
        let mut p = TaParameters::paper_defaults();
        p.failure_rate_per_hour = 0.0;
        assert!(p.validate().is_err());
        let mut p = TaParameters::paper_defaults();
        p.web_servers = 0;
        assert!(p.validate().is_err());
        let mut p = TaParameters::paper_defaults();
        p.buffer_size = 2; // < web_servers
        assert!(p.validate().is_err());
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(TaParameters::builder().coverage(2.0).build().is_err());
    }

    #[test]
    fn with_reservation_systems() {
        let p = TaParameters::paper_defaults().with_reservation_systems(10);
        assert_eq!(p.num_flight_systems, 10);
        assert_eq!(p.num_car_systems, 10);
    }
}
