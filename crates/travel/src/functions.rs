//! Function-level models — Table 2, Figures 3–6 and Table 6 of the paper.
//!
//! Each TA function is described by an interaction diagram over services;
//! compiling the diagram yields the Table 6 availability formula. Service
//! names are shared constants so the function, service and user levels
//! compose without stringly-typed drift.

use std::collections::HashMap;

use uavail_core::{AvailExpr, InteractionDiagram};

use crate::{TaParameters, TravelError};

/// Internet-connectivity pseudo-service (`A_net`).
pub const SERVICE_NET: &str = "net";
/// LAN pseudo-service (`A_LAN`).
pub const SERVICE_LAN: &str = "lan";
/// Web service.
pub const SERVICE_WEB: &str = "WS";
/// Application service.
pub const SERVICE_APP: &str = "AS";
/// Database service.
pub const SERVICE_DB: &str = "DS";
/// External flight-reservation service.
pub const SERVICE_FLIGHT: &str = "Flight";
/// External hotel-reservation service.
pub const SERVICE_HOTEL: &str = "Hotel";
/// External car-reservation service.
pub const SERVICE_CAR: &str = "Car";
/// External payment service.
pub const SERVICE_PAYMENT: &str = "PS";

/// The five user-visible functions of the TA site (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaFunction {
    /// The home page.
    Home,
    /// Navigating the site's static/dynamic pages.
    Browse,
    /// Searching trip offers across the reservation systems.
    Search,
    /// Booking a selected trip.
    Book,
    /// Paying for booked trips.
    Pay,
}

impl TaFunction {
    /// All functions in paper order.
    pub fn all() -> [TaFunction; 5] {
        [
            TaFunction::Home,
            TaFunction::Browse,
            TaFunction::Search,
            TaFunction::Book,
            TaFunction::Pay,
        ]
    }

    /// The function's display name.
    pub fn name(&self) -> &'static str {
        match self {
            TaFunction::Home => "Home",
            TaFunction::Browse => "Browse",
            TaFunction::Search => "Search",
            TaFunction::Book => "Book",
            TaFunction::Pay => "Pay",
        }
    }
}

impl std::fmt::Display for TaFunction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Table 2: which services each function requires (the checkmark matrix).
pub fn service_mapping() -> Vec<(TaFunction, Vec<&'static str>)> {
    vec![
        (TaFunction::Home, vec![SERVICE_WEB]),
        (
            TaFunction::Browse,
            vec![SERVICE_WEB, SERVICE_APP, SERVICE_DB],
        ),
        (
            TaFunction::Search,
            vec![
                SERVICE_WEB,
                SERVICE_APP,
                SERVICE_DB,
                SERVICE_FLIGHT,
                SERVICE_HOTEL,
                SERVICE_CAR,
            ],
        ),
        (
            TaFunction::Book,
            vec![
                SERVICE_WEB,
                SERVICE_APP,
                SERVICE_DB,
                SERVICE_FLIGHT,
                SERVICE_HOTEL,
                SERVICE_CAR,
            ],
        ),
        (
            TaFunction::Pay,
            vec![SERVICE_WEB, SERVICE_APP, SERVICE_DB, SERVICE_PAYMENT],
        ),
    ]
}

/// Builds the interaction diagram of a function (Figures 3–6).
///
/// Every diagram's first stage carries the Internet-connectivity and LAN
/// pseudo-services, implementing the paper's rule that `A_net · A_LAN`
/// multiplies every function availability.
///
/// # Errors
///
/// Propagates parameter-validation failures (the branch probabilities
/// `q_ij` come from `params`).
pub fn interaction_diagram(
    function: TaFunction,
    params: &TaParameters,
) -> Result<InteractionDiagram, TravelError> {
    params.validate()?;
    let mut d = InteractionDiagram::new();
    match function {
        TaFunction::Home => {
            let ws = d.add_stage(vec![SERVICE_NET, SERVICE_LAN, SERVICE_WEB]);
            d.connect_begin(ws, 1.0)?;
            d.connect_end(ws, 1.0)?;
        }
        TaFunction::Browse => {
            // Figure 3: cache hit (q23), dynamic page without DB
            // (q24·q45), dynamic page with DB (q24·q47).
            let ws = d.add_stage(vec![SERVICE_NET, SERVICE_LAN, SERVICE_WEB]);
            let app = d.add_stage(vec![SERVICE_APP]);
            let db = d.add_stage(vec![SERVICE_DB]);
            d.connect_begin(ws, 1.0)?;
            d.connect_end(ws, params.q23)?;
            d.connect(ws, app, params.q24)?;
            d.connect_end(app, params.q45)?;
            d.connect(app, db, params.q47)?;
            d.connect_end(db, 1.0)?;
        }
        TaFunction::Search | TaFunction::Book => {
            // Figures 4–5: WS → AS → DS → AND-fork over the three
            // reservation services → back through AS/WS (already counted).
            let ws = d.add_stage(vec![SERVICE_NET, SERVICE_LAN, SERVICE_WEB]);
            let app = d.add_stage(vec![SERVICE_APP]);
            let db = d.add_stage(vec![SERVICE_DB]);
            let fork = d.add_stage(vec![SERVICE_FLIGHT, SERVICE_HOTEL, SERVICE_CAR]);
            d.connect_begin(ws, 1.0)?;
            d.connect(ws, app, 1.0)?;
            d.connect(app, db, 1.0)?;
            d.connect(db, fork, 1.0)?;
            d.connect_end(fork, 1.0)?;
        }
        TaFunction::Pay => {
            // Figure 6: WS → AS → payment server → DS update.
            let ws = d.add_stage(vec![SERVICE_NET, SERVICE_LAN, SERVICE_WEB]);
            let app = d.add_stage(vec![SERVICE_APP]);
            let ps = d.add_stage(vec![SERVICE_PAYMENT]);
            let db = d.add_stage(vec![SERVICE_DB]);
            d.connect_begin(ws, 1.0)?;
            d.connect(ws, app, 1.0)?;
            d.connect(app, ps, 1.0)?;
            d.connect(ps, db, 1.0)?;
            d.connect_end(db, 1.0)?;
        }
    }
    Ok(d)
}

/// Function scenarios: `(probability, services used)` for each path of the
/// function's interaction diagram.
///
/// # Errors
///
/// Propagates diagram failures.
pub fn function_scenarios(
    function: TaFunction,
    params: &TaParameters,
) -> Result<Vec<(f64, Vec<String>)>, TravelError> {
    Ok(interaction_diagram(function, params)?.scenarios()?)
}

/// The function's availability expression over service names — the
/// symbolic form of a Table 6 row.
///
/// # Errors
///
/// Propagates diagram failures.
pub fn availability_expr(
    function: TaFunction,
    params: &TaParameters,
) -> Result<AvailExpr, TravelError> {
    Ok(interaction_diagram(function, params)?.compile()?)
}

/// Evaluates a function's availability against concrete service
/// availabilities (keys are the `SERVICE_*` constants).
///
/// # Errors
///
/// Propagates diagram and evaluation failures (missing service names).
pub fn availability(
    function: TaFunction,
    params: &TaParameters,
    services: &HashMap<String, f64>,
) -> Result<f64, TravelError> {
    Ok(availability_expr(function, params)?.eval(services)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_env() -> HashMap<String, f64> {
        let mut env = HashMap::new();
        env.insert(SERVICE_NET.to_string(), 0.9966);
        env.insert(SERVICE_LAN.to_string(), 0.9966);
        env.insert(SERVICE_WEB.to_string(), 0.999995587);
        env.insert(SERVICE_APP.to_string(), 0.999984);
        env.insert(SERVICE_DB.to_string(), 0.98998416);
        env.insert(SERVICE_FLIGHT.to_string(), 0.999);
        env.insert(SERVICE_HOTEL.to_string(), 0.999);
        env.insert(SERVICE_CAR.to_string(), 0.999);
        env.insert(SERVICE_PAYMENT.to_string(), 0.9);
        env
    }

    fn params() -> TaParameters {
        TaParameters::paper_defaults()
    }

    #[test]
    fn home_is_net_lan_ws() {
        // Table 6: A(Home) = Anet · ALAN · A(WS).
        let env = service_env();
        let a = availability(TaFunction::Home, &params(), &env).unwrap();
        let expected = 0.9966 * 0.9966 * 0.999995587;
        assert!((a - expected).abs() < 1e-12);
    }

    #[test]
    fn browse_matches_table6_formula() {
        // A(Browse) = Anet ALAN A(WS)[q23 + A(AS)(q24 q45 + q24 q47 A(DS))].
        let env = service_env();
        let p = params();
        let a = availability(TaFunction::Browse, &p, &env).unwrap();
        let (ws, asv, ds) = (env[SERVICE_WEB], env[SERVICE_APP], env[SERVICE_DB]);
        let bracket = p.q23 + asv * (p.q24 * p.q45 + p.q24 * p.q47 * ds);
        let expected = 0.9966 * 0.9966 * ws * bracket;
        assert!((a - expected).abs() < 1e-12);
    }

    #[test]
    fn search_matches_table6_formula() {
        let env = service_env();
        let a = availability(TaFunction::Search, &params(), &env).unwrap();
        let expected = 0.9966
            * 0.9966
            * env[SERVICE_WEB]
            * env[SERVICE_APP]
            * env[SERVICE_DB]
            * env[SERVICE_FLIGHT]
            * env[SERVICE_HOTEL]
            * env[SERVICE_CAR];
        assert!((a - expected).abs() < 1e-12);
    }

    #[test]
    fn book_equals_search() {
        // Table 6: A(Book) = A(Search) by the subset assumption.
        let env = service_env();
        let p = params();
        let search = availability(TaFunction::Search, &p, &env).unwrap();
        let book = availability(TaFunction::Book, &p, &env).unwrap();
        assert!((search - book).abs() < 1e-15);
    }

    #[test]
    fn pay_matches_table6_formula() {
        let env = service_env();
        let a = availability(TaFunction::Pay, &params(), &env).unwrap();
        let expected = 0.9966
            * 0.9966
            * env[SERVICE_WEB]
            * env[SERVICE_APP]
            * env[SERVICE_DB]
            * env[SERVICE_PAYMENT];
        assert!((a - expected).abs() < 1e-12);
    }

    #[test]
    fn browse_scenarios_structure() {
        let scenarios = function_scenarios(TaFunction::Browse, &params()).unwrap();
        assert_eq!(scenarios.len(), 3);
        let total: f64 = scenarios.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // The cache-hit path uses no application service.
        let cache_hit = scenarios
            .iter()
            .find(|(_, s)| !s.contains(&SERVICE_APP.to_string()))
            .expect("cache-hit path");
        assert!((cache_hit.0 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn table2_mapping_is_consistent_with_diagrams() {
        // Every service in the Table 2 row must appear in some diagram
        // path of the function.
        let p = params();
        for (function, required) in service_mapping() {
            let scenarios = function_scenarios(function, &p).unwrap();
            for svc in required {
                assert!(
                    scenarios.iter().any(|(_, s)| s.iter().any(|x| x == svc)),
                    "{function}: service {svc} missing from all paths"
                );
            }
        }
    }

    #[test]
    fn all_functions_enumerated() {
        assert_eq!(TaFunction::all().len(), 5);
        assert_eq!(TaFunction::Search.to_string(), "Search");
    }

    #[test]
    fn availability_monotone_in_every_service() {
        let p = params();
        let base = service_env();
        for function in TaFunction::all() {
            let a0 = availability(function, &p, &base).unwrap();
            for svc in base.keys() {
                let mut degraded = base.clone();
                degraded.insert(svc.clone(), base[svc] * 0.5);
                let a1 = availability(function, &p, &degraded).unwrap();
                assert!(
                    a1 <= a0 + 1e-12,
                    "{function}: degrading {svc} raised availability"
                );
            }
        }
    }
}
