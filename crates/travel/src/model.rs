//! The assembled travel-agency model: parameters + architecture → the full
//! four-level hierarchy, ready for evaluation and sensitivity analysis.

use std::collections::HashMap;

use uavail_core::{AvailExpr, HierarchicalModel, Level};

use crate::functions::{self, TaFunction};
use crate::user::{self, UserClass};
use crate::{services, webservice, Architecture, TaParameters, TravelError};

/// The complete TA availability model for one architecture and parameter
/// set — the programmatic equivalent of Sections 3–4 of the paper.
///
/// # Examples
///
/// ```
/// use uavail_travel::{Architecture, TaParameters, TravelAgencyModel};
/// use uavail_travel::user::class_a;
///
/// # fn main() -> Result<(), uavail_travel::TravelError> {
/// let model = TravelAgencyModel::new(
///     TaParameters::paper_defaults(),
///     Architecture::paper_reference(),
/// )?;
/// let a = model.user_availability(&class_a())?;
/// assert!(a > 0.97 && a < 0.99); // Table 8 plateau region
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TravelAgencyModel {
    params: TaParameters,
    architecture: Architecture,
}

impl TravelAgencyModel {
    /// Validates the parameters and assembles the model.
    ///
    /// # Errors
    ///
    /// See [`TaParameters::validate`].
    pub fn new(params: TaParameters, architecture: Architecture) -> Result<Self, TravelError> {
        params.validate()?;
        Ok(TravelAgencyModel {
            params,
            architecture,
        })
    }

    /// The parameter set.
    pub fn params(&self) -> &TaParameters {
        &self.params
    }

    /// The architecture under evaluation.
    pub fn architecture(&self) -> Architecture {
        self.architecture
    }

    /// Web-service availability for this architecture (equations 2, 5
    /// or 9).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn web_availability(&self) -> Result<f64, TravelError> {
        match self.architecture {
            Architecture::Basic => webservice::basic_availability(&self.params),
            Architecture::Redundant(crate::Coverage::Perfect) => {
                webservice::redundant_perfect_availability(&self.params)
            }
            Architecture::Redundant(crate::Coverage::Imperfect) => {
                webservice::redundant_imperfect_availability(&self.params)
            }
        }
    }

    /// All service-level availabilities keyed by the
    /// [`functions`] `SERVICE_*` names, including the `net`/`lan`
    /// pseudo-services.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn service_availabilities(&self) -> Result<HashMap<String, f64>, TravelError> {
        let p = &self.params;
        let mut env = HashMap::new();
        env.insert(functions::SERVICE_NET.to_string(), p.a_net);
        env.insert(functions::SERVICE_LAN.to_string(), p.a_lan);
        env.insert(functions::SERVICE_WEB.to_string(), self.web_availability()?);
        env.insert(
            functions::SERVICE_APP.to_string(),
            services::application(p, self.architecture)?,
        );
        env.insert(
            functions::SERVICE_DB.to_string(),
            services::database(p, self.architecture)?,
        );
        env.insert(functions::SERVICE_FLIGHT.to_string(), services::flight(p)?);
        env.insert(functions::SERVICE_HOTEL.to_string(), services::hotel(p)?);
        env.insert(functions::SERVICE_CAR.to_string(), services::car(p)?);
        env.insert(functions::SERVICE_PAYMENT.to_string(), services::payment(p));
        Ok(env)
    }

    /// Availability of one function (a Table 6 row).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn function_availability(&self, function: TaFunction) -> Result<f64, TravelError> {
        let env = self.service_availabilities()?;
        functions::availability(function, &self.params, &env)
    }

    /// User-perceived availability for a user class (equation 10, via the
    /// generic shared-service composition).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn user_availability(&self, class: &UserClass) -> Result<f64, TravelError> {
        let env = self.service_availabilities()?;
        user::user_availability(class, &self.params, &env)
    }

    /// User-perceived *unavailability* for a class.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn user_unavailability(&self, class: &UserClass) -> Result<f64, TravelError> {
        Ok(1.0 - self.user_availability(class)?)
    }

    /// The user-level availability expression over service names for a
    /// class — the symbolic equation (10).
    ///
    /// # Errors
    ///
    /// Propagates diagram failures.
    pub fn user_expression(&self, class: &UserClass) -> Result<AvailExpr, TravelError> {
        let mut terms: Vec<(f64, AvailExpr)> = Vec::new();
        for s in class.table().scenarios() {
            // Expand each scenario into function-path combinations over
            // distinct services, as in `user::scenario_availability`.
            let mut per_function = Vec::new();
            for fname in &s.functions {
                let f = TaFunction::all()
                    .into_iter()
                    .find(|f| f.name() == fname)
                    .expect("Table 1 functions are valid");
                per_function.push(functions::function_scenarios(f, &self.params)?);
            }
            let mut stack: Vec<(usize, f64, std::collections::BTreeSet<String>)> =
                vec![(0, s.probability, Default::default())];
            while let Some((depth, prob, used)) = stack.pop() {
                if depth == per_function.len() {
                    let product =
                        AvailExpr::product(used.iter().cloned().map(AvailExpr::param).collect());
                    terms.push((prob, product));
                    continue;
                }
                for (p, svcs) in &per_function[depth] {
                    let mut next = used.clone();
                    next.extend(svcs.iter().cloned());
                    stack.push((depth + 1, prob * p, next));
                }
            }
        }
        // Distinct scenarios often expand to identical service products
        // (e.g. every Search-without-Pay scenario); simplification merges
        // them, shrinking the expression several-fold.
        let expr = AvailExpr::weighted_sum(terms).simplify();
        expr.validate()?;
        Ok(expr)
    }

    /// Builds the full four-level [`HierarchicalModel`] (Figure 1) for a
    /// user class: resources at the bottom, the web service's composite
    /// result injected at the service level, Table 6 functions, and the
    /// equation-(10) user measure named `"user"`.
    ///
    /// # Errors
    ///
    /// Propagates solver and construction failures.
    pub fn hierarchical(&self, class: &UserClass) -> Result<HierarchicalModel, TravelError> {
        let p = &self.params;
        let mut m = HierarchicalModel::new();
        // Resource level.
        m.define_value(functions::SERVICE_NET, Level::Resource, p.a_net)?;
        m.define_value(functions::SERVICE_LAN, Level::Resource, p.a_lan)?;
        m.define_value("host_as", Level::Resource, p.a_cas)?;
        m.define_value("host_ds", Level::Resource, p.a_cds)?;
        m.define_value("disk", Level::Resource, p.a_disk)?;
        m.define_value("flight_system", Level::Resource, p.a_flight_system)?;
        m.define_value("hotel_system", Level::Resource, p.a_hotel_system)?;
        m.define_value("car_system", Level::Resource, p.a_car_system)?;
        m.define_value("payment_system", Level::Resource, p.a_payment)?;

        // Service level. The web service is the output of the composite
        // Markov/queueing model — a directly supplied value, exactly as
        // Figure 1 prescribes ("the outputs of a given level are used in
        // the next immediately upper level").
        m.define_value(
            functions::SERVICE_WEB,
            Level::Service,
            self.web_availability()?,
        )?;
        let dup =
            |name: &str| AvailExpr::parallel(vec![AvailExpr::param(name), AvailExpr::param(name)]);
        match self.architecture {
            Architecture::Basic => {
                m.define_expr(
                    functions::SERVICE_APP,
                    Level::Service,
                    AvailExpr::param("host_as"),
                )?;
                m.define_expr(
                    functions::SERVICE_DB,
                    Level::Service,
                    AvailExpr::product(vec![AvailExpr::param("host_ds"), AvailExpr::param("disk")]),
                )?;
            }
            Architecture::Redundant(_) => {
                m.define_expr(functions::SERVICE_APP, Level::Service, dup("host_as"))?;
                m.define_expr(
                    functions::SERVICE_DB,
                    Level::Service,
                    AvailExpr::product(vec![dup("host_ds"), dup("disk")]),
                )?;
            }
        }
        let bank = |name: &str, n: usize| AvailExpr::parallel(vec![AvailExpr::param(name); n]);
        m.define_expr(
            functions::SERVICE_FLIGHT,
            Level::Service,
            bank("flight_system", p.num_flight_systems),
        )?;
        m.define_expr(
            functions::SERVICE_HOTEL,
            Level::Service,
            bank("hotel_system", p.num_hotel_systems),
        )?;
        m.define_expr(
            functions::SERVICE_CAR,
            Level::Service,
            bank("car_system", p.num_car_systems),
        )?;
        m.define_expr(
            functions::SERVICE_PAYMENT,
            Level::Service,
            AvailExpr::param("payment_system"),
        )?;

        // Function level: Table 6, compiled from the Figures 3–6 diagrams.
        for f in TaFunction::all() {
            m.define_expr(
                f.name(),
                Level::Function,
                functions::availability_expr(f, p)?,
            )?;
        }

        // User level: equation (10).
        m.define_expr("user", Level::User, self.user_expression(class)?)?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::{class_a, class_b};
    use crate::Coverage;

    fn model() -> TravelAgencyModel {
        TravelAgencyModel::new(
            TaParameters::paper_defaults(),
            Architecture::paper_reference(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let mut p = TaParameters::paper_defaults();
        p.coverage = 2.0;
        assert!(TravelAgencyModel::new(p, Architecture::Basic).is_err());
    }

    #[test]
    fn web_availability_per_architecture() {
        let p = TaParameters::paper_defaults();
        let basic = TravelAgencyModel::new(p.clone(), Architecture::Basic)
            .unwrap()
            .web_availability()
            .unwrap();
        let perfect = TravelAgencyModel::new(p.clone(), Architecture::Redundant(Coverage::Perfect))
            .unwrap()
            .web_availability()
            .unwrap();
        let imperfect = model().web_availability().unwrap();
        assert!(basic < imperfect, "basic {basic} vs imperfect {imperfect}");
        assert!(imperfect < perfect);
        assert!((imperfect - 0.999995587).abs() < 1e-8);
    }

    #[test]
    fn hierarchical_model_agrees_with_direct_computation() {
        let m = model();
        for class in [class_a(), class_b()] {
            let direct = m.user_availability(&class).unwrap();
            let hierarchical = m.hierarchical(&class).unwrap();
            let eval = hierarchical.evaluate().unwrap();
            let via_model = eval.value("user").unwrap();
            assert!(
                (direct - via_model).abs() < 1e-12,
                "class {}: {direct} vs {via_model}",
                class.name()
            );
        }
    }

    #[test]
    fn hierarchical_function_level_matches_direct() {
        let m = model();
        let eval = m.hierarchical(&class_a()).unwrap().evaluate().unwrap();
        for f in TaFunction::all() {
            let direct = m.function_availability(f).unwrap();
            let via = eval.value(f.name()).unwrap();
            assert!((direct - via).abs() < 1e-12, "{f}: {direct} vs {via}");
        }
    }

    #[test]
    fn lan_and_net_are_most_influential_services() {
        // The paper's observation below equation (10): LAN, net and web
        // service dominate because every scenario uses them.
        let m = model();
        let h = m.hierarchical(&class_a()).unwrap();
        let ranked = h
            .ranked_sensitivities("user", uavail_core::Level::Resource)
            .unwrap();
        let top2: Vec<&str> = ranked[..2].iter().map(|(n, _)| n.as_str()).collect();
        assert!(top2.contains(&"lan"), "top sensitivities: {ranked:?}");
        assert!(top2.contains(&"net"), "top sensitivities: {ranked:?}");
    }

    #[test]
    fn redundant_architecture_beats_basic_for_users() {
        let p = TaParameters::paper_defaults();
        let basic = TravelAgencyModel::new(p.clone(), Architecture::Basic).unwrap();
        let redundant = model();
        for class in [class_a(), class_b()] {
            let ab = basic.user_availability(&class).unwrap();
            let ar = redundant.user_availability(&class).unwrap();
            assert!(ar > ab, "class {}: {ar} !> {ab}", class.name());
        }
    }

    #[test]
    fn unavailability_complement() {
        let m = model();
        let a = m.user_availability(&class_a()).unwrap();
        let u = m.user_unavailability(&class_a()).unwrap();
        assert!((a + u - 1.0).abs() < 1e-15);
    }

    #[test]
    fn accessors() {
        let m = model();
        assert_eq!(m.architecture(), Architecture::paper_reference());
        assert_eq!(m.params().web_servers, 4);
    }
}
