//! Service-level availabilities — Tables 3 and 4 of the paper.
//!
//! External services (flight / hotel / car reservation, payment) are black
//! boxes replicated `N` times; internal services (application, database)
//! depend on the architecture. The web service lives in
//! [`crate::webservice`] because of its composite model.

use uavail_rbd::{component, parallel, series, BlockDiagram};

use crate::{Architecture, TaParameters, TravelError};

/// Availability of a parallel bank of `n` identical systems each with
/// availability `a` — Table 3's `1 − (1 − A)^n`.
///
/// # Errors
///
/// [`TravelError::InvalidParameter`] when `n == 0` or `a` is outside
/// `[0, 1]`.
pub fn parallel_bank(n: usize, a: f64) -> Result<f64, TravelError> {
    if n == 0 {
        return Err(TravelError::InvalidParameter {
            name: "n",
            value: 0.0,
            requirement: "at least 1",
        });
    }
    if !(a.is_finite() && (0.0..=1.0).contains(&a)) {
        return Err(TravelError::InvalidParameter {
            name: "a",
            value: a,
            requirement: "within [0, 1]",
        });
    }
    Ok(1.0 - (1.0 - a).powi(n as i32))
}

/// Availability of the external flight-reservation service
/// (`1 − Π(1 − A_Fi)`, Table 3).
///
/// # Errors
///
/// As for [`parallel_bank`].
pub fn flight(params: &TaParameters) -> Result<f64, TravelError> {
    parallel_bank(params.num_flight_systems, params.a_flight_system)
}

/// Availability of the external hotel-reservation service (Table 3).
///
/// # Errors
///
/// As for [`parallel_bank`].
pub fn hotel(params: &TaParameters) -> Result<f64, TravelError> {
    parallel_bank(params.num_hotel_systems, params.a_hotel_system)
}

/// Availability of the external car-reservation service (Table 3).
///
/// # Errors
///
/// As for [`parallel_bank`].
pub fn car(params: &TaParameters) -> Result<f64, TravelError> {
    parallel_bank(params.num_car_systems, params.a_car_system)
}

/// Availability of the external payment service (`A_PS`, Table 3).
pub fn payment(params: &TaParameters) -> f64 {
    params.a_payment
}

/// Application-service availability (Table 4): the bare host in the basic
/// architecture, two replicated hosts in the redundant one.
///
/// # Errors
///
/// Propagates parameter failures.
pub fn application(params: &TaParameters, arch: Architecture) -> Result<f64, TravelError> {
    params.validate()?;
    Ok(match arch {
        Architecture::Basic => params.a_cas,
        Architecture::Redundant(_) => parallel_bank(2, params.a_cas)?,
    })
}

/// Database-service availability (Table 4): host and disk in series for
/// the basic architecture; duplicated hosts and mirrored disks for the
/// redundant one.
///
/// # Errors
///
/// Propagates parameter failures.
pub fn database(params: &TaParameters, arch: Architecture) -> Result<f64, TravelError> {
    params.validate()?;
    Ok(match arch {
        Architecture::Basic => params.a_cds * params.a_disk,
        Architecture::Redundant(_) => {
            parallel_bank(2, params.a_cds)? * parallel_bank(2, params.a_disk)?
        }
    })
}

/// The database service of the redundant architecture as an explicit
/// reliability block diagram (duplicated hosts in series with mirrored
/// disks) — used to double-check the Table 4 formula against the RBD
/// engine, and to extract cut sets.
pub fn database_block_diagram() -> BlockDiagram {
    let spec = series(vec![
        parallel(vec![component("db_host_1"), component("db_host_2")]),
        parallel(vec![component("disk_1"), component("disk_2")]),
    ]);
    BlockDiagram::new(spec).expect("fixed diagram structure is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn params() -> TaParameters {
        TaParameters::paper_defaults()
    }

    #[test]
    fn parallel_bank_formula() {
        assert!((parallel_bank(1, 0.9).unwrap() - 0.9).abs() < 1e-15);
        assert!((parallel_bank(2, 0.9).unwrap() - 0.99).abs() < 1e-15);
        assert!((parallel_bank(3, 0.9).unwrap() - 0.999).abs() < 1e-15);
        assert!(parallel_bank(0, 0.9).is_err());
        assert!(parallel_bank(1, 1.5).is_err());
    }

    #[test]
    fn external_services_with_paper_counts() {
        let p = params().with_reservation_systems(3);
        let expected = 1.0 - 0.1f64.powi(3);
        assert!((flight(&p).unwrap() - expected).abs() < 1e-15);
        assert!((hotel(&p).unwrap() - expected).abs() < 1e-15);
        assert!((car(&p).unwrap() - expected).abs() < 1e-15);
        assert_eq!(payment(&p), 0.9);
    }

    #[test]
    fn application_service_both_architectures() {
        let p = params();
        assert!((application(&p, Architecture::Basic).unwrap() - 0.996).abs() < 1e-15);
        let redundant = application(&p, Architecture::paper_reference()).unwrap();
        assert!((redundant - (1.0 - 0.004f64.powi(2))).abs() < 1e-15);
        assert!(redundant > 0.996);
    }

    #[test]
    fn database_service_both_architectures() {
        let p = params();
        let basic = database(&p, Architecture::Basic).unwrap();
        assert!((basic - 0.996 * 0.9).abs() < 1e-15);
        let redundant = database(&p, Architecture::paper_reference()).unwrap();
        let expected = (1.0 - 0.004f64.powi(2)) * (1.0 - 0.1f64.powi(2));
        assert!((redundant - expected).abs() < 1e-15);
        assert!(redundant > basic);
    }

    #[test]
    fn database_rbd_agrees_with_formula() {
        let p = params();
        let d = database_block_diagram();
        let mut probs = HashMap::new();
        probs.insert("db_host_1".to_string(), p.a_cds);
        probs.insert("db_host_2".to_string(), p.a_cds);
        probs.insert("disk_1".to_string(), p.a_disk);
        probs.insert("disk_2".to_string(), p.a_disk);
        let rbd_avail = d.availability(&probs).unwrap();
        let formula = database(&p, Architecture::paper_reference()).unwrap();
        assert!((rbd_avail - formula).abs() < 1e-15);
        // No single point of failure in the redundant database.
        assert!(d.single_points_of_failure().is_empty());
    }
}
