//! Sharded memo for the M/M/c/K loss probabilities.
//!
//! The figure sweeps evaluate `p_K(i)` for the same `(α, ν, i, K)`
//! combinations over and over (the λ axis never enters the performance
//! model), so [`crate::webservice::loss_probability`] memoizes them. The
//! original memo was one process-wide `RwLock<HashMap>`: correct, but every
//! parallel sweep worker serialized on that single lock, and reaching the
//! capacity bound triggered a wholesale `clear()` that was recorded as a
//! single "eviction" no matter how many entries it discarded.
//!
//! This module replaces it with a hash-partitioned cache: [`SHARD_COUNT`]
//! independent `RwLock<HashMap>` shards, each bounded at `capacity /
//! SHARD_COUNT` entries with bounded batch eviction (a quarter of the shard
//! at a time) instead of a full clear. Lookups for different keys mostly
//! land on different shards, so parallel workers proceed without
//! contention, and `travel.loss_cache.evictions` now counts *evicted
//! entries*, not clear events.
//!
//! Values are stored exactly as first computed, so cached and uncached
//! paths — and therefore serial and parallel sweeps — stay bit-for-bit
//! identical regardless of sharding or eviction behavior.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::RwLock;

/// Cache key for the loss memo: the four inputs the M/M/c/K loss actually
/// depends on, with the rates keyed by their exact bit patterns.
pub(crate) type LossKey = (u64, u64, usize, usize);

/// Number of independent shards. A power of two so the shard index is a
/// mask, and comfortably above the worker-thread counts of the machines
/// this workspace targets.
pub(crate) const SHARD_COUNT: usize = 16;

/// Per-shard hit counters, pre-rendered so the hot path never allocates.
const SHARD_HIT_COUNTERS: [&str; SHARD_COUNT] = [
    "travel.loss_cache.shard00.hits",
    "travel.loss_cache.shard01.hits",
    "travel.loss_cache.shard02.hits",
    "travel.loss_cache.shard03.hits",
    "travel.loss_cache.shard04.hits",
    "travel.loss_cache.shard05.hits",
    "travel.loss_cache.shard06.hits",
    "travel.loss_cache.shard07.hits",
    "travel.loss_cache.shard08.hits",
    "travel.loss_cache.shard09.hits",
    "travel.loss_cache.shard10.hits",
    "travel.loss_cache.shard11.hits",
    "travel.loss_cache.shard12.hits",
    "travel.loss_cache.shard13.hits",
    "travel.loss_cache.shard14.hits",
    "travel.loss_cache.shard15.hits",
];

/// Per-shard miss counters, pre-rendered like [`SHARD_HIT_COUNTERS`].
const SHARD_MISS_COUNTERS: [&str; SHARD_COUNT] = [
    "travel.loss_cache.shard00.misses",
    "travel.loss_cache.shard01.misses",
    "travel.loss_cache.shard02.misses",
    "travel.loss_cache.shard03.misses",
    "travel.loss_cache.shard04.misses",
    "travel.loss_cache.shard05.misses",
    "travel.loss_cache.shard06.misses",
    "travel.loss_cache.shard07.misses",
    "travel.loss_cache.shard08.misses",
    "travel.loss_cache.shard09.misses",
    "travel.loss_cache.shard10.misses",
    "travel.loss_cache.shard11.misses",
    "travel.loss_cache.shard12.misses",
    "travel.loss_cache.shard13.misses",
    "travel.loss_cache.shard14.misses",
    "travel.loss_cache.shard15.misses",
];

/// A bounded, sharded, process-lifetime map from loss keys to loss
/// probabilities.
///
/// Instances built with `report_obs = false` keep their statistics in
/// private atomics only, so unit tests can pin exact hit/miss/eviction
/// accounting without cross-talk through the global `uavail-obs` recorder.
pub(crate) struct ShardedLossCache {
    shards: [RwLock<HashMap<LossKey, f64>>; SHARD_COUNT],
    capacity: usize,
    shard_cap: usize,
    report_obs: bool,
    len: AtomicUsize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ShardedLossCache {
    /// Creates a cache bounded at `capacity` total entries, split evenly
    /// across the shards. `report_obs` routes hit/miss/eviction/size
    /// statistics to the global `uavail-obs` recorder as well as the
    /// instance atomics.
    pub fn new(capacity: usize, report_obs: bool) -> Self {
        ShardedLossCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
            capacity,
            shard_cap: (capacity / SHARD_COUNT).max(1),
            report_obs,
            len: AtomicUsize::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Deterministic shard index: FNV-1a over the key fields, masked to the
    /// shard count. Deterministic (no `RandomState`) so tests asserting
    /// shard spread are reproducible across runs and platforms.
    pub fn shard_index(key: &LossKey) -> usize {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in [key.0, key.1, key.2 as u64, key.3 as u64] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (h & (SHARD_COUNT as u64 - 1)) as usize
    }

    /// Looks `key` up, recording a hit or a miss.
    pub fn get(&self, key: &LossKey) -> Option<f64> {
        let shard = Self::shard_index(key);
        let found = self.shards[shard]
            .read()
            .ok()
            .and_then(|map| map.get(key).copied());
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if self.report_obs {
                uavail_obs::counter_add("travel.loss_cache.hits", 1);
                uavail_obs::counter_add(SHARD_HIT_COUNTERS[shard], 1);
                if uavail_obs::trace_enabled() {
                    uavail_obs::trace_instant_arg("travel.loss_cache.hit", "shard", shard as f64);
                }
            }
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if self.report_obs {
                uavail_obs::counter_add("travel.loss_cache.misses", 1);
                uavail_obs::counter_add(SHARD_MISS_COUNTERS[shard], 1);
                if uavail_obs::trace_enabled() {
                    uavail_obs::trace_instant_arg("travel.loss_cache.miss", "shard", shard as f64);
                }
            }
        }
        found
    }

    /// Inserts `key → value`, evicting a bounded batch from the target
    /// shard first when it is full. Evictions are counted per discarded
    /// entry.
    pub fn insert(&self, key: LossKey, value: f64) {
        // Injection site (inert unless `uavail-faultinject` is enabled):
        // a poisoned entry is cached as NaN, so later hits feed a
        // non-probability into the composite availability formulas —
        // which reject it with a typed error instead of propagating it.
        let value = uavail_faultinject::corrupt_f64("travel.loss_cache.poison", value);
        let shard = Self::shard_index(&key);
        let Ok(mut map) = self.shards[shard].write() else {
            return;
        };
        if map.len() >= self.shard_cap {
            // Evict a quarter of the shard (arbitrary victims — the memo
            // has no recency information and any entry is cheap to
            // recompute), so one overflow does not empty the whole shard.
            let batch = (self.shard_cap / 4).max(1);
            let doomed: Vec<LossKey> = map.keys().take(batch).copied().collect();
            for k in &doomed {
                map.remove(k);
            }
            self.len.fetch_sub(doomed.len(), Ordering::Relaxed);
            self.evictions
                .fetch_add(doomed.len() as u64, Ordering::Relaxed);
            if self.report_obs {
                uavail_obs::counter_add("travel.loss_cache.evictions", doomed.len() as u64);
            }
        }
        if map.insert(key, value).is_none() {
            self.len.fetch_add(1, Ordering::Relaxed);
        }
        if self.report_obs {
            uavail_obs::gauge_set(
                "travel.loss_cache.size",
                self.len.load(Ordering::Relaxed) as u64,
            );
        }
    }

    /// Total number of cached entries across all shards.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// Number of entries in one shard (for spread diagnostics and tests).
    #[cfg(test)]
    pub fn shard_len(&self, shard: usize) -> usize {
        self.shards[shard].read().map(|m| m.len()).unwrap_or(0)
    }

    /// Total capacity bound (sum of the per-shard bounds' budget).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Empties every shard.
    pub fn clear(&self) {
        for shard in &self.shards {
            if let Ok(mut map) = shard.write() {
                map.clear();
            }
        }
        self.len.store(0, Ordering::Relaxed);
        if self.report_obs {
            uavail_obs::gauge_set("travel.loss_cache.size", 0);
        }
    }

    /// Lifetime hit count (instance-local, unaffected by other caches).
    #[cfg(test)]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime miss count.
    #[cfg(test)]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Lifetime count of evicted entries (not eviction events).
    #[cfg(test)]
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize) -> LossKey {
        (
            (50.0 + i as f64 * 1e-7).to_bits(),
            100.0f64.to_bits(),
            1 + i % 8,
            10,
        )
    }

    #[test]
    fn shard_index_is_deterministic_and_in_range() {
        for i in 0..1000 {
            let k = key(i);
            let s = ShardedLossCache::shard_index(&k);
            assert!(s < SHARD_COUNT);
            assert_eq!(s, ShardedLossCache::shard_index(&k));
        }
    }

    #[test]
    fn figure_grid_keys_spread_across_shards() {
        // The keys a dense Figure-11-style sweep produces (varying
        // operational-server count and arrival rate) must not all map to
        // one shard, or parallel workers would still serialize.
        let cache = ShardedLossCache::new(1 << 10, false);
        for alpha_step in 0..40 {
            for servers in 1..=10usize {
                let k = (
                    (50.0 + alpha_step as f64).to_bits(),
                    100.0f64.to_bits(),
                    servers,
                    10usize,
                );
                cache.insert(k, 0.5);
            }
        }
        let occupied = (0..SHARD_COUNT).filter(|&s| cache.shard_len(s) > 0).count();
        assert!(occupied >= 2, "all keys landed in {occupied} shard(s)");
    }

    #[test]
    fn accounting_pins_hits_misses_and_per_entry_evictions() {
        // Satellite regression: `evictions` counts evicted entries, not
        // clear events. Use a private instance so the numbers are exact.
        let cache = ShardedLossCache::new(64, false); // shard cap = 4
        let total = 200usize;
        for i in 0..total {
            let k = key(i);
            assert_eq!(cache.get(&k), None);
            cache.insert(k, i as f64);
        }
        assert_eq!(cache.misses(), total as u64);
        assert_eq!(cache.hits(), 0);
        // Far more keys than capacity: evictions must have happened, one
        // count per discarded entry, and the ledger must balance exactly:
        // every miss was inserted once, and is either still present or
        // was evicted.
        assert!(cache.evictions() > 0);
        assert_eq!(cache.len() as u64 + cache.evictions(), cache.misses());
        assert!(cache.len() <= cache.capacity());
        // Re-reading a surviving key is a hit and changes nothing else.
        let survivor = (0..total)
            .map(key)
            .find(|k| {
                let shard = ShardedLossCache::shard_index(k);
                cache.shards[shard].read().unwrap().contains_key(k)
            })
            .expect("cache is non-empty");
        let before_misses = cache.misses();
        assert!(cache.get(&survivor).is_some());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), before_misses);
    }

    #[test]
    fn eviction_is_bounded_not_wholesale() {
        // Overflowing one shard discards only a quarter of it.
        let cache = ShardedLossCache::new(SHARD_COUNT * 8, false); // shard cap = 8
        let mut in_shard = Vec::new();
        let mut i = 0usize;
        while in_shard.len() < 9 {
            let k = key(i);
            if ShardedLossCache::shard_index(&k) == ShardedLossCache::shard_index(&key(0)) {
                in_shard.push(k);
            }
            i += 1;
        }
        for k in &in_shard[..8] {
            cache.insert(*k, 1.0);
        }
        assert_eq!(cache.evictions(), 0);
        cache.insert(in_shard[8], 1.0); // overflow: evict 8/4 = 2 entries
        assert_eq!(cache.evictions(), 2);
        assert_eq!(cache.shard_len(ShardedLossCache::shard_index(&key(0))), 7);
    }

    #[test]
    fn clear_resets_contents_but_not_statistics() {
        let cache = ShardedLossCache::new(64, false);
        cache.insert(key(0), 1.0);
        assert!(cache.get(&key(0)).is_some());
        cache.clear();
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.get(&key(0)), None);
        assert_eq!(cache.hits(), 1); // lifetime stats survive the clear
        assert_eq!(cache.misses(), 1);
    }
}
