//! The Figure 2 operational-profile graph: structure, construction and
//! fitting.
//!
//! The paper presents the profile graph (Figure 2) but publishes only the
//! derived scenario probabilities (Table 1). This module closes the loop:
//! it encodes the Figure 2 *structure* — which transitions exist — and fits
//! the transition probabilities `p_ij` to a target scenario table by
//! direct search, recovering a concrete graph whose exact scenario-class
//! probabilities (computed by `uavail-profile`'s taboo-chain algorithm)
//! match the published table.

use rand::Rng;

use uavail_profile::{ProfileGraph, ScenarioTable};

use crate::functions::TaFunction;
use crate::TravelError;

/// Free transition probabilities of the Figure 2 graph.
///
/// The structure is fixed: Start → {Home, Browse}; Home → {Browse, Search,
/// Exit}; Browse → {Home, Search, Exit}; Search → {Book, Exit};
/// Book → {Search, Pay, Exit}; Pay → Exit. Each node's outgoing
/// probabilities must sum to one; the *last* alternative of each node is
/// implied (`1 − rest`), so the parameter vector has 9 free entries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig2Probabilities {
    /// `P(Start → Home)`; Start → Browse is the complement.
    pub start_home: f64,
    /// `P(Home → Browse)`.
    pub home_browse: f64,
    /// `P(Home → Search)`; Home → Exit is the complement.
    pub home_search: f64,
    /// `P(Browse → Home)`.
    pub browse_home: f64,
    /// `P(Browse → Search)`; Browse → Exit is the complement.
    pub browse_search: f64,
    /// `P(Search → Book)`; Search → Exit is the complement.
    pub search_book: f64,
    /// `P(Book → Search)` (the `{Se-Bo}*` cycle).
    pub book_search: f64,
    /// `P(Book → Pay)`; Book → Exit is the complement.
    pub book_pay: f64,
    /// Unused degree of freedom kept for future structure variants.
    pub reserved: f64,
}

impl Fig2Probabilities {
    /// Validates the node-level constraints.
    ///
    /// # Errors
    ///
    /// [`TravelError::InvalidParameter`] when any probability is outside
    /// `[0, 1]` or a node's outgoing probabilities exceed one.
    pub fn validate(&self) -> Result<(), TravelError> {
        let entries = [
            ("start_home", self.start_home, 1.0),
            (
                "home_browse + home_search",
                self.home_browse + self.home_search,
                1.0,
            ),
            (
                "browse_home + browse_search",
                self.browse_home + self.browse_search,
                1.0,
            ),
            ("search_book", self.search_book, 1.0),
            (
                "book_search + book_pay",
                self.book_search + self.book_pay,
                1.0,
            ),
        ];
        for (name, v, cap) in entries {
            if !(v.is_finite() && (0.0..=cap + 1e-12).contains(&v)) {
                let _ = name;
                return Err(TravelError::InvalidParameter {
                    name: "fig2 probabilities",
                    value: v,
                    requirement: "each node's outgoing probabilities within [0, 1]",
                });
            }
        }
        for v in [
            self.start_home,
            self.home_browse,
            self.home_search,
            self.browse_home,
            self.browse_search,
            self.search_book,
            self.book_search,
            self.book_pay,
        ] {
            if !(v.is_finite() && (0.0..=1.0).contains(&v)) {
                return Err(TravelError::InvalidParameter {
                    name: "fig2 probabilities",
                    value: v,
                    requirement: "within [0, 1]",
                });
            }
        }
        Ok(())
    }

    /// Builds the concrete profile graph.
    ///
    /// # Errors
    ///
    /// Propagates validation failures from this type and from
    /// [`ProfileGraph`].
    pub fn to_graph(&self) -> Result<ProfileGraph, TravelError> {
        self.validate()?;
        let mut g = ProfileGraph::new(
            TaFunction::all()
                .iter()
                .map(|f| f.name())
                .collect::<Vec<_>>(),
        )?;
        let eps_free = |v: f64| v.clamp(0.0, 1.0);
        g.set_start_transition("Home", eps_free(self.start_home))?;
        g.set_start_transition("Browse", eps_free(1.0 - self.start_home))?;
        g.set_transition("Home", Some("Browse"), eps_free(self.home_browse))?;
        g.set_transition("Home", Some("Search"), eps_free(self.home_search))?;
        g.set_transition(
            "Home",
            None,
            eps_free(1.0 - self.home_browse - self.home_search),
        )?;
        g.set_transition("Browse", Some("Home"), eps_free(self.browse_home))?;
        g.set_transition("Browse", Some("Search"), eps_free(self.browse_search))?;
        g.set_transition(
            "Browse",
            None,
            eps_free(1.0 - self.browse_home - self.browse_search),
        )?;
        g.set_transition("Search", Some("Book"), eps_free(self.search_book))?;
        g.set_transition("Search", None, eps_free(1.0 - self.search_book))?;
        g.set_transition("Book", Some("Search"), eps_free(self.book_search))?;
        g.set_transition("Book", Some("Pay"), eps_free(self.book_pay))?;
        g.set_transition(
            "Book",
            None,
            eps_free(1.0 - self.book_search - self.book_pay),
        )?;
        g.set_transition("Pay", None, 1.0)?;
        Ok(g.validated()?)
    }

    /// Exact scenario-class probabilities of this graph, as a map
    /// `function-set bitmask → probability` (bit order =
    /// [`TaFunction::all`]).
    ///
    /// # Errors
    ///
    /// Propagates graph failures.
    pub fn scenario_probabilities(&self) -> Result<Vec<(u32, f64)>, TravelError> {
        Ok(self.to_graph()?.scenario_class_probabilities(0.0)?)
    }
}

/// Sum of squared differences between a graph's exact scenario-class
/// probabilities and a target table.
///
/// # Errors
///
/// Propagates graph failures.
pub fn table_distance(
    probs: &Fig2Probabilities,
    target: &ScenarioTable,
) -> Result<f64, TravelError> {
    let scenario_masks = target_masks(target);
    let computed = probs.scenario_probabilities()?;
    let lookup: std::collections::HashMap<u32, f64> = computed.into_iter().collect();
    let mut err = 0.0;
    for (mask, pi) in scenario_masks {
        let got = lookup.get(&mask).copied().unwrap_or(0.0);
        err += (got - pi).powi(2);
    }
    Ok(err)
}

fn target_masks(target: &ScenarioTable) -> Vec<(u32, f64)> {
    target
        .scenarios()
        .iter()
        .map(|s| {
            let mut mask = 0u32;
            for (bit, f) in TaFunction::all().iter().enumerate() {
                if s.invokes(f.name()) {
                    mask |= 1 << bit;
                }
            }
            (mask, s.probability)
        })
        .collect()
}

/// Fits Figure 2 transition probabilities to a target scenario table by
/// random multi-start search followed by coordinate refinement.
///
/// Returns the best-found parameters and their squared-error distance.
/// Deterministic for a fixed `rng` seed.
///
/// # Errors
///
/// Propagates graph failures.
pub fn fit_to_table<R: Rng + ?Sized>(
    rng: &mut R,
    target: &ScenarioTable,
    starts: usize,
    refinement_rounds: usize,
) -> Result<(Fig2Probabilities, f64), TravelError> {
    let sample = |rng: &mut R| -> Fig2Probabilities {
        // Draw each node's distribution from a flat Dirichlet via
        // normalized exponentials.
        let dir2 = |rng: &mut R| -> (f64, f64) {
            let a: f64 = -(1.0 - rng.random::<f64>()).ln();
            let b: f64 = -(1.0 - rng.random::<f64>()).ln();
            (a / (a + b), b / (a + b))
        };
        let dir3 = |rng: &mut R| -> (f64, f64, f64) {
            let a: f64 = -(1.0 - rng.random::<f64>()).ln();
            let b: f64 = -(1.0 - rng.random::<f64>()).ln();
            let c: f64 = -(1.0 - rng.random::<f64>()).ln();
            let z = a + b + c;
            (a / z, b / z, c / z)
        };
        let (sh, _) = dir2(rng);
        let (hb, hs, _) = dir3(rng);
        let (bh, bs, _) = dir3(rng);
        let (sb, _) = dir2(rng);
        let (bks, bkp, _) = dir3(rng);
        Fig2Probabilities {
            start_home: sh,
            home_browse: hb,
            home_search: hs,
            browse_home: bh,
            browse_search: bs,
            search_book: sb,
            book_search: bks,
            book_pay: bkp,
            reserved: 0.0,
        }
    };

    let mut best = sample(rng);
    let mut best_err = table_distance(&best, target)?;
    for _ in 1..starts {
        let candidate = sample(rng);
        let err = table_distance(&candidate, target)?;
        if err < best_err {
            best = candidate;
            best_err = err;
        }
    }

    // Pattern search: at each step size, descend until no move from the
    // direction set improves, then halve the step. Rounds count step
    // levels (not individual moves), so large early steps cannot exhaust
    // the budget before the fine-polish levels run. The direction set
    // contains single-coordinate moves and opposite-signed coordinate
    // pairs: each node's outgoing probabilities are sum-constrained (the
    // implied Exit complement moves with them), so the error surface has
    // diagonal valleys that axis-aligned moves alone cannot descend.
    fn coord_mut(c: &mut Fig2Probabilities, i: usize) -> &mut f64 {
        match i {
            0 => &mut c.start_home,
            1 => &mut c.home_browse,
            2 => &mut c.home_search,
            3 => &mut c.browse_home,
            4 => &mut c.browse_search,
            5 => &mut c.search_book,
            6 => &mut c.book_search,
            _ => &mut c.book_pay,
        }
    }
    let mut directions: Vec<Vec<(usize, f64)>> = Vec::new();
    for i in 0..8 {
        directions.push(vec![(i, 1.0)]);
        directions.push(vec![(i, -1.0)]);
        for j in 0..8 {
            if i != j {
                directions.push(vec![(i, 1.0), (j, -1.0)]);
            }
        }
    }
    let mut step = 0.25;
    for _ in 0..refinement_rounds {
        for _ in 0..200 {
            let mut improved = false;
            for direction in &directions {
                let mut cand = best;
                for &(coord, sign) in direction {
                    let field = coord_mut(&mut cand, coord);
                    *field = (*field + sign * step).clamp(0.0, 1.0);
                }
                if cand.validate().is_err() {
                    continue;
                }
                if let Ok(err) = table_distance(&cand, target) {
                    if err < best_err {
                        best = cand;
                        best_err = err;
                        improved = true;
                    }
                }
            }
            if !improved {
                break;
            }
        }
        step *= 0.5;
        if step < 1e-9 {
            break;
        }
    }
    Ok((best, best_err))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::user::class_a;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example() -> Fig2Probabilities {
        Fig2Probabilities {
            start_home: 0.6,
            home_browse: 0.3,
            home_search: 0.3,
            browse_home: 0.2,
            browse_search: 0.3,
            search_book: 0.3,
            book_search: 0.2,
            book_pay: 0.5,
            reserved: 0.0,
        }
    }

    #[test]
    fn validation() {
        assert!(example().validate().is_ok());
        let mut bad = example();
        bad.home_browse = 0.9; // 0.9 + 0.3 > 1
        assert!(bad.validate().is_err());
        let mut bad = example();
        bad.start_home = -0.1;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn graph_produces_twelve_table1_classes() {
        let probs = example().scenario_probabilities().unwrap();
        // The Figure 2 structure generates exactly the 12 Table 1 classes.
        assert_eq!(probs.len(), 12);
        let total: f64 = probs.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-10);
        // Every class includes Home or Browse (bit 0 or 1).
        for (mask, _) in probs {
            assert!(mask & 0b11 != 0, "mask {mask:#b}");
        }
    }

    #[test]
    fn self_fit_recovers_scenarios() {
        // Fit to the table generated by a known parameter set: the fitted
        // graph's scenario probabilities must match that table closely
        // (the parameters themselves may differ — the map is many-to-one).
        let truth = example();
        let scenario_probs = truth.scenario_probabilities().unwrap();
        let g = truth.to_graph().unwrap();
        let table = uavail_profile::ScenarioTable::new(
            scenario_probs
                .iter()
                .enumerate()
                .map(|(i, (mask, p))| {
                    uavail_profile::Scenario::new(format!("s{i}"), g.mask_to_names(*mask), *p)
                })
                .collect(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let (fitted, err) = fit_to_table(&mut rng, &table, 200, 60).unwrap();
        assert!(err < 1e-5, "fit error {err}");
        let check = table_distance(&fitted, &table).unwrap();
        assert!((check - err).abs() < 1e-12);
    }

    #[test]
    fn fit_class_a_reasonably() {
        // The published Table 1 may not be exactly realizable by the
        // Figure 2 structure (the paper's columns are rounded), but the
        // fit must land close: mean absolute scenario error below 1%.
        let mut rng = StdRng::seed_from_u64(5);
        let (fitted, err) = fit_to_table(&mut rng, class_a().table(), 300, 80).unwrap();
        assert!(err < 5e-4, "squared error {err}");
        let per_scenario = (err / 12.0f64).sqrt();
        assert!(per_scenario < 0.01, "rms scenario error {per_scenario}");
        assert!(fitted.validate().is_ok());
    }
}
