//! The paper's future-work extension, implemented: response-time-threshold
//! failures.
//!
//! Section 6 of the paper proposes extending the user-perceived measure so
//! that a request also counts as failed "when the response time exceeds an
//! acceptable threshold". This module provides that measure for the web
//! service: a request succeeds only if it is (a) accepted into the buffer
//! and (b) served within the deadline `τ`. The per-state success
//! probability becomes `(1 − p_K(i)) · (1 − P(T_i > τ))` with the exact
//! FCFS response-time tail from `uavail-queueing`.

use uavail_core::composite::{composite_availability, CompositeState};
use uavail_queueing::MMcK;

use crate::{webservice, TaParameters, TravelError};

/// Web-service availability under a response-time deadline `τ` (seconds),
/// redundant farm with imperfect coverage — the deadline-extended
/// equation (9).
///
/// With `deadline = ∞` this equals
/// [`webservice::redundant_imperfect_availability`]; with `deadline = 0`
/// it is 0 (no request can be served instantly).
///
/// # Errors
///
/// * [`TravelError::InvalidParameter`] for a negative or NaN deadline.
/// * Propagated solver failures.
pub fn deadline_availability(params: &TaParameters, deadline: f64) -> Result<f64, TravelError> {
    if deadline.is_nan() || deadline < 0.0 {
        return Err(TravelError::InvalidParameter {
            name: "deadline",
            value: deadline,
            requirement: "finite and >= 0 (or +inf)",
        });
    }
    params.validate()?;
    let (op, y) = webservice::farm_distribution_imperfect(params)?;
    let mut states = Vec::with_capacity(op.len() + y.len());
    states.push(CompositeState::new(op[0], 0.0));
    for (i, &p) in op.iter().enumerate().skip(1) {
        let queue = MMcK::new(
            params.arrival_rate_per_second,
            params.service_rate_per_second,
            i,
            params.buffer_size,
        )?;
        let success = if deadline.is_infinite() {
            1.0 - queue.loss_probability()
        } else {
            1.0 - queue.deadline_miss_probability(deadline)
        };
        states.push(CompositeState::new(p, success));
    }
    for &p in &y {
        states.push(CompositeState::new(p, 0.0));
    }
    Ok(composite_availability(&states)?)
}

/// One row of a deadline sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePoint {
    /// Deadline `τ` in seconds.
    pub deadline: f64,
    /// Deadline-extended web-service availability.
    pub availability: f64,
    /// The classical (buffer-loss only) availability, for comparison.
    pub classical_availability: f64,
}

/// Sweeps the deadline-extended availability over `deadlines` (seconds).
///
/// # Errors
///
/// Propagates solver failures.
pub fn deadline_sweep(
    params: &TaParameters,
    deadlines: &[f64],
) -> Result<Vec<DeadlinePoint>, TravelError> {
    let classical = webservice::redundant_imperfect_availability(params)?;
    deadlines
        .iter()
        .map(|&d| {
            Ok(DeadlinePoint {
                deadline: d,
                availability: deadline_availability(params, d)?,
                classical_availability: classical,
            })
        })
        .collect()
}

/// The smallest number of web servers (up to `max_servers`) meeting an
/// unavailability target under the deadline-extended measure — the
/// capacity-planning question §5.1 asks, with the stricter definition of
/// failure.
///
/// # Errors
///
/// Propagates solver failures.
pub fn min_web_servers_for_deadline(
    target_unavailability: f64,
    deadline: f64,
    base: &TaParameters,
    max_servers: usize,
) -> Result<Option<usize>, TravelError> {
    for nw in 1..=max_servers {
        let mut params = base.clone();
        params.web_servers = nw;
        params.buffer_size = base.buffer_size.max(nw);
        params.validate()?;
        let a = deadline_availability(&params, deadline)?;
        if 1.0 - a < target_unavailability {
            return Ok(Some(nw));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> TaParameters {
        TaParameters::paper_defaults()
    }

    #[test]
    fn infinite_deadline_recovers_classical_measure() {
        let p = params();
        let classical = webservice::redundant_imperfect_availability(&p).unwrap();
        let extended = deadline_availability(&p, f64::INFINITY).unwrap();
        assert!((classical - extended).abs() < 1e-12);
    }

    #[test]
    fn zero_deadline_means_no_service() {
        let a = deadline_availability(&params(), 0.0).unwrap();
        assert!(a < 1e-12);
    }

    #[test]
    fn extended_measure_is_monotone_in_deadline() {
        let p = params();
        let sweep = deadline_sweep(&p, &[0.01, 0.05, 0.1, 0.5, 1.0]).unwrap();
        for w in sweep.windows(2) {
            assert!(w[1].availability >= w[0].availability);
        }
        // Always at most the classical availability.
        for point in &sweep {
            assert!(point.availability <= point.classical_availability + 1e-12);
        }
    }

    #[test]
    fn generous_deadline_approaches_classical() {
        // At rho = 1 response times are long, so use 10 s (1000 mean
        // service times) for near-complete coverage.
        let p = params();
        let point = deadline_sweep(&p, &[10.0]).unwrap()[0];
        assert!(
            point.classical_availability - point.availability < 1e-4,
            "gap {}",
            point.classical_availability - point.availability
        );
    }

    #[test]
    fn deadline_capacity_planning_needs_more_servers() {
        // A deadline makes the same target need at least as many servers
        // as the classical measure.
        let base = params();
        let classical = crate::evaluation::min_web_servers_for(1e-3, 1e-4, 100.0, 10)
            .unwrap()
            .expect("attainable classically");
        let strict = min_web_servers_for_deadline(1e-3, 0.1, &base, 10)
            .unwrap()
            .expect("attainable with a lenient deadline");
        assert!(
            strict >= classical,
            "strict {strict} vs classical {classical}"
        );
    }

    #[test]
    fn invalid_deadline_rejected() {
        assert!(deadline_availability(&params(), -1.0).is_err());
        assert!(deadline_availability(&params(), f64::NAN).is_err());
    }

    #[test]
    fn deadline_measure_dominated_by_queueing_at_high_load() {
        // Two servers at 75% utilization: waiting is common, so a tight
        // deadline (two mean service times) dwarfs the classical
        // buffer-loss unavailability.
        let p = TaParameters::builder()
            .web_servers(2)
            .arrival_rate_per_second(150.0)
            .build()
            .unwrap();
        let classical = webservice::redundant_imperfect_availability(&p).unwrap();
        let extended = deadline_availability(&p, 0.02).unwrap();
        let classical_u = 1.0 - classical;
        let extended_u = 1.0 - extended;
        assert!(
            extended_u > 3.0 * classical_u,
            "extended {extended_u:.3e} vs classical {classical_u:.3e}"
        );
    }
}
