use std::fmt;

use uavail_core::CoreError;
use uavail_faulttree::FaultTreeError;
use uavail_markov::MarkovError;
use uavail_profile::ProfileError;
use uavail_queueing::QueueingError;
use uavail_sim::SimError;

/// Errors produced by the travel-agency case study.
#[derive(Debug)]
#[non_exhaustive]
pub enum TravelError {
    /// A parameter violated its domain requirement.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// Framework-level modeling failure.
    Core(CoreError),
    /// Markov-chain analysis failure.
    Markov(MarkovError),
    /// Queueing-formula failure.
    Queueing(QueueingError),
    /// Operational-profile failure.
    Profile(ProfileError),
    /// Fault-tree analysis failure.
    FaultTree(FaultTreeError),
    /// Simulation failure.
    Sim(SimError),
}

impl fmt::Display for TravelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TravelError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "parameter {name} = {value} must be {requirement}"),
            TravelError::Core(e) => write!(f, "modeling failure: {e}"),
            TravelError::Markov(e) => write!(f, "markov failure: {e}"),
            TravelError::Queueing(e) => write!(f, "queueing failure: {e}"),
            TravelError::Profile(e) => write!(f, "profile failure: {e}"),
            TravelError::FaultTree(e) => write!(f, "fault-tree failure: {e}"),
            TravelError::Sim(e) => write!(f, "simulation failure: {e}"),
        }
    }
}

impl std::error::Error for TravelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TravelError::InvalidParameter { .. } => None,
            TravelError::Core(e) => Some(e),
            TravelError::Markov(e) => Some(e),
            TravelError::Queueing(e) => Some(e),
            TravelError::Profile(e) => Some(e),
            TravelError::FaultTree(e) => Some(e),
            TravelError::Sim(e) => Some(e),
        }
    }
}

impl From<CoreError> for TravelError {
    fn from(e: CoreError) -> Self {
        TravelError::Core(e)
    }
}

impl uavail_core::FromWorkerPanic for TravelError {
    fn from_worker_panic(index: usize, payload: String) -> Self {
        TravelError::Core(CoreError::WorkerPanicked { index, payload })
    }
}

impl From<MarkovError> for TravelError {
    fn from(e: MarkovError) -> Self {
        TravelError::Markov(e)
    }
}

impl From<QueueingError> for TravelError {
    fn from(e: QueueingError) -> Self {
        TravelError::Queueing(e)
    }
}

impl From<ProfileError> for TravelError {
    fn from(e: ProfileError) -> Self {
        TravelError::Profile(e)
    }
}

impl From<FaultTreeError> for TravelError {
    fn from(e: FaultTreeError) -> Self {
        TravelError::FaultTree(e)
    }
}

impl From<SimError> for TravelError {
    fn from(e: SimError) -> Self {
        TravelError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = TravelError::InvalidParameter {
            name: "coverage",
            value: 1.5,
            requirement: "within [0, 1]",
        };
        assert!(e.to_string().contains("coverage"));
        assert!(e.source().is_none());
        let wrapped = TravelError::from(CoreError::Undefined { name: "x".into() });
        assert!(wrapped.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TravelError>();
    }
}
