//! The trace-event and numerical-health contracts, pinned end to end:
//! enabling tracing never changes any reproduced number, bit for bit; the
//! exported timeline is valid Chrome-trace JSON covering the sweep; and a
//! full Table 8 run reports solver residuals below documented tolerances.
//!
//! These tests toggle the process-wide trace flag and recorder, so they
//! live in their own integration binary and serialize on a lock.

use std::sync::Mutex;

use uavail_travel::evaluation::{figure12, figure12_parallel, table8};
use uavail_travel::{webservice, TaParameters};

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once with tracing off and once with tracing on (resetting the
/// trace sink first), returning both results plus the on-run trace.
fn with_and_without_tracing<T>(f: impl Fn() -> T) -> (T, T, uavail_obs::TraceData) {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uavail_obs::set_trace_enabled(false);
    let off = f();
    uavail_obs::trace::reset();
    uavail_obs::set_trace_enabled(true);
    let on = f();
    uavail_obs::set_trace_enabled(false);
    let data = uavail_obs::take_trace();
    (off, on, data)
}

#[test]
fn serial_sweep_is_bit_identical_with_tracing_on() {
    let (off, on, data) = with_and_without_tracing(|| figure12().unwrap());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(
            a.unavailability.to_bits(),
            b.unavailability.to_bits(),
            "N_W={} λ={} α={}",
            a.web_servers,
            a.failure_rate_per_hour,
            a.arrival_rate_per_second
        );
    }
    // While on, the timeline saw the sweep: one span per figure point and
    // a valid Chrome-trace export.
    let points = data
        .events
        .iter()
        .filter(|e| {
            e.name == "travel.figure.point"
                && matches!(e.phase, uavail_obs::trace::TracePhase::Begin)
        })
        .count();
    assert_eq!(points, off.len(), "one trace span per figure point");
    uavail_obs::trace::validate_chrome_trace(&data.to_chrome_trace()).unwrap();
}

#[test]
fn parallel_sweep_is_bit_identical_with_tracing_on() {
    let (off, on, data) = with_and_without_tracing(|| figure12_parallel().unwrap());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.unavailability.to_bits(), b.unavailability.to_bits());
    }
    let points = data
        .events
        .iter()
        .filter(|e| {
            e.name == "travel.figure.point"
                && matches!(e.phase, uavail_obs::trace::TracePhase::Begin)
        })
        .count();
    assert_eq!(points, off.len());
    uavail_obs::trace::validate_chrome_trace(&data.to_chrome_trace()).unwrap();
}

/// Documented tolerance for the GTH probability-mass drift `|Σπ − 1|`.
/// GTH normalizes explicitly, so the drift is a couple of ulps.
const GTH_DRIFT_TOL: f64 = 1e-12;

/// Documented tolerance for the GTH residual `‖πQ‖∞`. The paper's
/// generators mix rates from 1e-4/h to 3.6e5/h, so the absolute residual
/// scales with the largest rate times machine epsilon (~1e-10) with two
/// orders of headroom.
const GTH_RESIDUAL_TOL: f64 = 1e-8;

/// Documented tolerance for the M/M/c/K normalization error `|Σp − 1|`
/// after the distribution is renormalized.
const MMCK_NORM_TOL: f64 = 1e-12;

/// Documented tolerance for the LU residual `‖Ax − b‖∞` of the MTTF
/// solve; the right-hand sides are O(1) expected sojourn sums.
const LU_RESIDUAL_TOL: f64 = 1e-6;

#[test]
fn table8_health_report_is_within_documented_tolerances() {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uavail_obs::set_enabled(true);
    uavail_obs::reset();
    // A cold memo so the M/M/c/K distributions are actually recomputed
    // (and their normalization checked) rather than served from the cache
    // warmed by the sweep tests above.
    webservice::reset_loss_cache();
    let rows = table8().unwrap();
    // Table 8 runs entirely on the GTH path; the LU channels come from the
    // mean-time-to-failure solve, which the paper's Table 6 exercises.
    let mttf = webservice::mean_time_to_web_down(&TaParameters::paper_defaults()).unwrap();
    let snap = uavail_obs::snapshot();
    uavail_obs::set_enabled(false);
    assert!(!rows.is_empty());
    assert!(mttf > 0.0);

    let summary = |name: &str| {
        *snap
            .health
            .get(name)
            .unwrap_or_else(|| panic!("health channel {name:?} missing from {:?}", snap.health))
    };

    let gth_drift = summary("markov.gth.prob_sum_drift");
    assert!(gth_drift.count > 0);
    assert!(gth_drift.max < GTH_DRIFT_TOL, "gth drift {gth_drift:?}");
    let gth_residual = summary("markov.gth.residual");
    assert!(
        gth_residual.max < GTH_RESIDUAL_TOL,
        "gth residual {gth_residual:?}"
    );

    let norm = summary("queueing.mmck.norm_error");
    assert!(norm.count > 0);
    assert!(norm.max < MMCK_NORM_TOL, "mmck norm error {norm:?}");

    let drift = summary("core.composite.prob_drift");
    let headroom = summary("core.composite.tolerance_headroom");
    assert_eq!(drift.count, headroom.count);
    assert!(
        headroom.min > 0.0,
        "composite drift consumed its tolerance: {drift:?} / {headroom:?}"
    );

    let pivot = summary("linalg.lu.min_pivot");
    assert!(pivot.count > 0);
    assert!(pivot.min > 0.0, "lu pivot {pivot:?}");
    let lu_residual = summary("linalg.lu.residual");
    assert!(
        lu_residual.max < LU_RESIDUAL_TOL,
        "lu residual {lu_residual:?}"
    );

    // The snapshot serializes the health section through the validating
    // JSON emitter.
    let json = snap.to_json_lines();
    uavail_obs::json::validate_lines(&json).unwrap();
    assert!(json.contains("\"type\":\"health\""));
}
