//! Bit-for-bit identity of the context-reusing evaluation paths.
//!
//! The `EvalContext` plumbing (`*_with` drivers, `steady_state_into`
//! solves, `MMcK::with_distribution_buf`) must be pure plumbing: every
//! reuse path executes the same floating-point operations in the same
//! order as its allocating twin, so results agree to the last bit — not
//! merely within tolerance. These tests drive one long-lived context
//! through every figure and table driver (serially and in parallel) and
//! compare raw bit patterns, including the paper's pinned headline values.

use uavail_travel::evaluation::{
    figure11, figure11_parallel_with, figure11_with, figure12, figure12_parallel_with,
    figure12_with, min_web_servers_for, min_web_servers_for_with, table8, table8_with, FigurePoint,
};
use uavail_travel::{webservice, EvalContext, TaParameters};

fn assert_points_bit_identical(label: &str, cold: &[FigurePoint], warm: &[FigurePoint]) {
    assert_eq!(cold.len(), warm.len(), "{label}: length mismatch");
    for (c, w) in cold.iter().zip(warm) {
        assert_eq!(c.web_servers, w.web_servers, "{label}");
        assert_eq!(
            c.failure_rate_per_hour.to_bits(),
            w.failure_rate_per_hour.to_bits(),
            "{label}"
        );
        assert_eq!(
            c.arrival_rate_per_second.to_bits(),
            w.arrival_rate_per_second.to_bits(),
            "{label}"
        );
        assert_eq!(
            c.unavailability.to_bits(),
            w.unavailability.to_bits(),
            "{label}: N_W={} λ={} α={}",
            c.web_servers,
            c.failure_rate_per_hour,
            c.arrival_rate_per_second
        );
    }
}

#[test]
fn figure_sweeps_with_context_are_bit_identical_serial_and_parallel() {
    let cold11 = figure11().unwrap();
    let cold12 = figure12().unwrap();

    // One context reused across *both* figures: buffers carry Figure 11
    // state into Figure 12 and must not contaminate results.
    let mut ctx = EvalContext::new();
    let warm11 = figure11_with(&mut ctx).unwrap();
    let warm12 = figure12_with(&mut ctx).unwrap();
    assert_points_bit_identical("figure11 serial", &cold11, &warm11);
    assert_points_bit_identical("figure12 serial", &cold12, &warm12);
    assert!(
        ctx.reuse_count() >= 179,
        "two 90-point sweeps through one context must reuse it: {}",
        ctx.reuse_count()
    );

    // Parallel: one fresh context per worker thread.
    assert_points_bit_identical(
        "figure11 parallel",
        &cold11,
        &figure11_parallel_with().unwrap(),
    );
    assert_points_bit_identical(
        "figure12 parallel",
        &cold12,
        &figure12_parallel_with().unwrap(),
    );
}

#[test]
fn repeated_context_sweeps_are_self_identical() {
    // A second pass through an already-warmed context (loss cache hits,
    // grown buffers) must still replay the exact same arithmetic.
    let mut ctx = EvalContext::new();
    let first = figure12_with(&mut ctx).unwrap();
    let second = figure12_with(&mut ctx).unwrap();
    assert_points_bit_identical("figure12 warm repeat", &first, &second);
}

#[test]
fn table8_with_context_is_bit_identical() {
    let cold = table8().unwrap();
    let mut ctx = EvalContext::new();
    for round in 0..2 {
        let warm = table8_with(&mut ctx).unwrap();
        assert_eq!(cold.len(), warm.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.reservation_systems, w.reservation_systems);
            assert_eq!(
                c.class_a.to_bits(),
                w.class_a.to_bits(),
                "round {round} N={} class A",
                c.reservation_systems
            );
            assert_eq!(
                c.class_b.to_bits(),
                w.class_b.to_bits(),
                "round {round} N={} class B",
                c.reservation_systems
            );
        }
    }
}

#[test]
fn min_web_servers_with_context_matches() {
    let mut ctx = EvalContext::new();
    for (target, lambda, alpha) in [
        (1e-5, 1e-3, 50.0),
        (1e-5, 1e-3, 100.0),
        (1.1e-5, 1e-3, 100.0),
        (1e-5, 1e-4, 100.0),
        (1e-5, 1e-2, 100.0),
    ] {
        let cold = min_web_servers_for(target, lambda, alpha, 10).unwrap();
        let warm = min_web_servers_for_with(target, lambda, alpha, 10, &mut ctx).unwrap();
        assert_eq!(cold, warm, "target={target} λ={lambda} α={alpha}");
    }
}

#[test]
fn context_path_pins_paper_headline_availability() {
    // Table 7: A(WS) = 0.999995587 at the reference parameters — the
    // reuse path must hit the same pinned value as the allocating path.
    let params = TaParameters::paper_defaults();
    let mut ctx = EvalContext::new();
    let warm = webservice::redundant_imperfect_availability_with(&params, &mut ctx).unwrap();
    assert!(
        (warm - 0.999995587).abs() < 1e-8,
        "A(WS) = {warm:.9}, expected 0.999995587"
    );
    let cold = webservice::redundant_imperfect_availability(&params).unwrap();
    assert_eq!(warm.to_bits(), cold.to_bits());
}

#[test]
fn context_path_pins_figure12_reversal() {
    // Figure 12's key finding — A(10) < A(4) at λ = 1e-2/h, α = 50/s —
    // must survive on the reuse path.
    let mut ctx = EvalContext::new();
    let availability = |nw: usize, ctx: &mut EvalContext| {
        let p = TaParameters::builder()
            .web_servers(nw)
            .arrival_rate_per_second(50.0)
            .failure_rate_per_hour(1e-2)
            .build()
            .unwrap();
        webservice::redundant_imperfect_availability_with(&p, ctx).unwrap()
    };
    let a4 = availability(4, &mut ctx);
    let a10 = availability(10, &mut ctx);
    assert!(
        a10 < a4,
        "expected reversal on context path: A(10) = {a10} should be below A(4) = {a4}"
    );
}

#[test]
fn perfect_coverage_context_path_is_bit_identical() {
    let mut ctx = EvalContext::new();
    for (nw, alpha) in [(1usize, 50.0), (4, 100.0), (7, 150.0)] {
        let p = TaParameters::builder()
            .web_servers(nw)
            .arrival_rate_per_second(alpha)
            .build()
            .unwrap();
        let cold = webservice::redundant_perfect_availability(&p).unwrap();
        let warm = webservice::redundant_perfect_availability_with(&p, &mut ctx).unwrap();
        assert_eq!(warm.to_bits(), cold.to_bits(), "N_W={nw} α={alpha}");
    }
}

#[test]
fn full_coverage_degenerate_case_matches_on_context_path() {
    // c = 1 short-circuits Figure 10 into Figure 9; the context path
    // takes the same branch and must agree bit for bit.
    let p = TaParameters::builder().coverage(1.0).build().unwrap();
    let mut ctx = EvalContext::new();
    let warm = webservice::redundant_imperfect_availability_with(&p, &mut ctx).unwrap();
    let cold = webservice::redundant_imperfect_availability(&p).unwrap();
    assert_eq!(warm.to_bits(), cold.to_bits());
}
