//! End-to-end acceptance tests for the sparse farm pipeline.
//!
//! Three contracts:
//!
//! 1. **Identity** — below the sparse routing cutoff, the dense path is
//!    byte-for-byte untouched (the `A(WS) = 0.999995587` headline and
//!    the Figure 12 reversal keep their exact values), and the sparse
//!    twin reproduces the dense results bit-for-bit because its
//!    generator assembly is bit-identical and its small-chain route runs
//!    the same GTH.
//! 2. **Scale** — a shared-repair, imperfect-coverage farm with more
//!    than 10⁵ composite states solves to steady state through the
//!    sparse path (in seconds, without any dense `n×n` allocation — the
//!    dense generator alone would need ~80 GB) and matches the model's
//!    closed form.
//! 3. **Context** — the `EvalContext` path routes large farms sparsely
//!    too and agrees with the context-free path bit-for-bit.

use uavail_travel::webservice::{
    farm_distribution_imperfect, farm_distribution_imperfect_closed_form,
    farm_distribution_imperfect_sparse, redundant_imperfect_availability,
    redundant_imperfect_availability_sparse, redundant_imperfect_availability_with,
};
use uavail_travel::{EvalContext, TaParameters};

/// 50 000 web servers → 100 001 composite states (Figure 10 layout).
const BIG_FARM_SERVERS: usize = 50_000;

fn big_farm_params() -> TaParameters {
    // buffer_size must cover the server count for the M/M/c/K layer.
    //
    // The per-server failure rate is scaled down (and the shared repair
    // rate up) so that the aggregate failure rate n·λ stays below µ —
    // the operating regime of the paper's farm, where the stationary
    // mass concentrates at the all-up end. With the 4-server defaults
    // kept as-is, a 50 000-server farm would drain to ~10 000 working
    // servers (n·λ = 5/h against µ = 1/h of shared repair), which is a
    // different model, not a scaled-up version of the paper's.
    TaParameters::builder()
        .web_servers(BIG_FARM_SERVERS)
        .buffer_size(BIG_FARM_SERVERS)
        .failure_rate_per_hour(1e-6)
        .repair_rate_per_hour(10.0)
        .build()
        .unwrap()
}

#[test]
fn dense_path_pins_are_untouched() {
    let params = TaParameters::paper_defaults();
    let a = redundant_imperfect_availability(&params).unwrap();
    assert!(
        (a - 0.999995587).abs() < 1e-8,
        "A(WS) = {a:.9}, expected 0.999995587"
    );
    // The sparse twin agrees to the last bit on the paper's farm.
    let s = redundant_imperfect_availability_sparse(&params).unwrap();
    assert_eq!(a.to_bits(), s.to_bits());

    // Figure 12 reversal: imperfect coverage makes 10 servers worse
    // than 4 — unchanged by the sparse backend.
    let availability = |nw: usize| {
        let p = TaParameters::builder()
            .web_servers(nw)
            .arrival_rate_per_second(50.0)
            .failure_rate_per_hour(1e-2)
            .build()
            .unwrap();
        redundant_imperfect_availability(&p).unwrap()
    };
    assert!(availability(10) < availability(4));
}

#[test]
fn hundred_thousand_state_farm_solves_sparsely() {
    let params = big_farm_params();
    let states = 2 * BIG_FARM_SERVERS + 1;
    assert!(states >= 100_000);

    let start = std::time::Instant::now();
    let (op, y) = farm_distribution_imperfect_sparse(&params).unwrap();
    let elapsed = start.elapsed();

    assert_eq!(op.len(), BIG_FARM_SERVERS + 1);
    assert_eq!(y.len(), BIG_FARM_SERVERS);
    let mass: f64 = op.iter().sum::<f64>() + y.iter().sum::<f64>();
    assert!((mass - 1.0).abs() < 1e-9, "mass {mass}");

    // The paper's stiff rates (λ = 1e-4/h, µ = 1/h) concentrate the
    // stationary mass at the all-up end; cross-check the closed form on
    // every state that carries real mass.
    let (op_cf, y_cf) = farm_distribution_imperfect_closed_form(&params).unwrap();
    for (a, b) in op.iter().zip(&op_cf).chain(y.iter().zip(&y_cf)) {
        if *b > 1e-9 {
            assert!(((a - b) / b).abs() < 1e-6, "{a} vs {b}");
        } else {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    // "Solves in seconds": generous CI bound, but a dense O(n³) solve
    // would take days — this guards against silently falling back to a
    // dense route.
    assert!(
        elapsed.as_secs() < 60,
        "sparse farm solve took {elapsed:?}; dense fallback suspected"
    );
}

#[test]
fn hundred_thousand_state_availability_through_equation_9() {
    let params = big_farm_params();
    let a = redundant_imperfect_availability_sparse(&params).unwrap();
    // With 50k servers the farm layer is essentially perfect; the
    // availability is dominated by the buffer-overflow term of the
    // (huge) M/M/c/K, which at α/ν = 1 and c = K = 50 000 loses almost
    // nothing: A must sit extremely close to, but below, 1.
    assert!(a > 0.9999 && a < 1.0, "A = {a}");
}

#[test]
fn context_path_routes_large_farms_sparsely_and_identically() {
    // Big enough to cross the sparse cutoff, small enough that the
    // direct path's full equation (9) sweep stays fast.
    let params = TaParameters::builder()
        .web_servers(700)
        .buffer_size(700)
        .build()
        .unwrap();
    let direct = redundant_imperfect_availability(&params).unwrap();
    let mut ctx = EvalContext::new();
    let warm = redundant_imperfect_availability_with(&params, &mut ctx).unwrap();
    assert_eq!(direct.to_bits(), warm.to_bits());
    // And again, exercising buffer reuse on the sparse route.
    let again = redundant_imperfect_availability_with(&params, &mut ctx).unwrap();
    assert_eq!(direct.to_bits(), again.to_bits());
    assert!(ctx.reuse_count() >= 1);
}

#[test]
fn sparse_and_dense_distributions_agree_below_the_cutoff() {
    // A spread of small farms: the sparse path must agree bit-for-bit
    // (both run GTH on bit-identical generators).
    for nw in [1, 2, 5, 16, 64] {
        let params = TaParameters::builder()
            .web_servers(nw)
            .buffer_size(nw.max(10))
            .build()
            .unwrap();
        let (op_d, y_d) = farm_distribution_imperfect(&params).unwrap();
        let (op_s, y_s) = farm_distribution_imperfect_sparse(&params).unwrap();
        for (a, b) in op_d.iter().zip(&op_s).chain(y_d.iter().zip(&y_s)) {
            assert_eq!(a.to_bits(), b.to_bits(), "NW = {nw}");
        }
    }
}
