//! End-to-end fault-injection acceptance tests.
//!
//! These tests flip the process-global `uavail-faultinject` switch, so
//! they live in their own integration binary (unit tests run in separate
//! processes) and serialize on one mutex: a site armed by one test must
//! never be observed by another.
//!
//! The contract under test, in order:
//!
//! 1. **Identity** — with injection disabled, armed or not, every result
//!    is bit-for-bit what the uninstrumented stack produces, pinned on
//!    the paper's `A(WS) = 0.999995587` headline and the Figure 12
//!    reversal.
//! 2. **Panic isolation** — an injected worker panic degrades a
//!    resilient sweep to a partial report with typed failures; the
//!    process never aborts.
//! 3. **Fallback chain** — an injected GTH mass drift is detected by the
//!    health gauge and recovered through the LU fallback, recorded by
//!    recovery counters.
//! 4. **Typed degradation** — corrupted queueing parameters and poisoned
//!    cache entries surface as typed errors, never as NaN results.

use std::sync::{Mutex, MutexGuard, OnceLock};

use uavail_core::sweep::sweep_parallel_resilient_threads;
use uavail_core::CoreError;
use uavail_travel::evaluation::{figure12, figure12_parallel, figure12_resilient};
use uavail_travel::webservice::{redundant_imperfect_availability, reset_loss_cache};
use uavail_travel::{TaParameters, TravelError};

/// Table 7 headline availability for the paper's reference parameters.
const HEADLINE: f64 = 0.999995587;

/// Serializes tests and guarantees a clean slate on entry and exit, even
/// when an assertion inside a test panics.
struct InjectionGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl InjectionGuard {
    fn acquire() -> Self {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let guard = LOCK
            .get_or_init(Mutex::default)
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        uavail_faultinject::reset();
        reset_loss_cache();
        Self(guard)
    }
}

impl Drop for InjectionGuard {
    fn drop(&mut self) {
        uavail_faultinject::reset();
        reset_loss_cache();
    }
}

fn headline_availability() -> f64 {
    redundant_imperfect_availability(&TaParameters::paper_defaults()).unwrap()
}

#[test]
fn armed_but_disabled_injection_is_bit_for_bit_inert() {
    let _guard = InjectionGuard::acquire();
    let baseline = headline_availability();
    assert!(
        (baseline - HEADLINE).abs() < 1e-8,
        "A(WS) = {baseline:.9}, expected {HEADLINE}"
    );
    let baseline_fig = figure12().unwrap();

    // Arm every registered site at certain-fire rates — but leave the
    // global switch off. The disabled fast path must keep every result
    // bit-for-bit identical.
    uavail_faultinject::set_seed(42);
    uavail_faultinject::arm_spec(
        "lu:1.0,singular:1.0,gth:1.0,mmck:1.0,cache:1.0,drop:1.0,dup:1.0,panic:1.0",
    )
    .unwrap();
    assert!(!uavail_faultinject::enabled());
    assert_eq!(uavail_faultinject::armed_sites().len(), 8);

    reset_loss_cache();
    let rerun = headline_availability();
    assert_eq!(baseline.to_bits(), rerun.to_bits());

    reset_loss_cache();
    for (label, points) in [
        ("serial", figure12().unwrap()),
        ("parallel", figure12_parallel().unwrap()),
    ] {
        assert_eq!(points.len(), baseline_fig.len());
        for (p, b) in points.iter().zip(&baseline_fig) {
            assert_eq!(
                p.unavailability.to_bits(),
                b.unavailability.to_bits(),
                "{label} N_W={} λ={} α={}",
                p.web_servers,
                p.failure_rate_per_hour,
                p.arrival_rate_per_second
            );
        }
    }

    // The Figure 12 reversal survives, of course.
    let at = |nw: usize| {
        baseline_fig
            .iter()
            .find(|p| {
                p.web_servers == nw
                    && p.failure_rate_per_hour == 1e-2
                    && p.arrival_rate_per_second == 50.0
            })
            .unwrap()
            .unavailability
    };
    assert!(at(10) > at(4), "U(10) = {} vs U(4) = {}", at(10), at(4));
}

#[test]
fn worker_panic_injection_keeps_resilient_sweeps_alive() {
    let _guard = InjectionGuard::acquire();
    uavail_faultinject::set_seed(2026);
    uavail_faultinject::arm("panic", 0.2).unwrap();
    uavail_faultinject::set_enabled(true);

    // Core-level acceptance: every non-failed point is present with its
    // correct value, every injected panic is a typed failure, and the
    // process is still here to assert it.
    let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.5).collect();
    let report = sweep_parallel_resilient_threads(&xs, 4, |x| Ok(x * 2.0));
    assert_eq!(report.points.len() + report.failures.len(), xs.len());
    assert!(
        !report.failures.is_empty(),
        "rate 0.2 over 200 points fired nothing"
    );
    for failure in &report.failures {
        assert!(
            matches!(failure.error, CoreError::WorkerPanicked { .. }),
            "untyped failure: {:?}",
            failure.error
        );
        assert_eq!(failure.x, xs[failure.index]);
    }
    for point in &report.points {
        assert_eq!(point.y.to_bits(), (point.x * 2.0).to_bits());
    }
    // The report serializes and round-trips with its failures intact.
    let json = report.to_json().to_string();
    let back = uavail_core::sweep::SweepReport::from_json_str(&json).unwrap();
    assert_eq!(back.failures.len(), report.failures.len());

    // Travel-level: the resilient figure sweep partitions the 90-point
    // grid into evaluated points and typed panic failures.
    let fig = figure12_resilient();
    assert_eq!(fig.points.len() + fig.failures.len(), 90);
    for failure in &fig.failures {
        assert!(
            matches!(
                failure.error,
                TravelError::Core(CoreError::WorkerPanicked { .. })
            ),
            "untyped figure failure: {:?}",
            failure.error
        );
    }

    // Disabling restores the exact baseline.
    uavail_faultinject::reset();
    reset_loss_cache();
    let a = headline_availability();
    assert!((a - HEADLINE).abs() < 1e-8, "A(WS) = {a:.9} after recovery");
}

#[test]
fn gth_mass_drift_recovers_through_the_fallback_chain() {
    let _guard = InjectionGuard::acquire();
    uavail_obs::reset();
    uavail_obs::set_enabled(true);
    uavail_faultinject::set_seed(7);
    uavail_faultinject::arm("gth", 1.0).unwrap();
    uavail_faultinject::set_enabled(true);

    // Every GTH solve leaks mass; the drift gauge rejects it and the
    // fallback chain recovers via LU, which never touches the GTH site.
    let a = headline_availability();
    assert!(
        (a - HEADLINE).abs() < 1e-8,
        "A(WS) = {a:.9} through the fallback chain"
    );

    uavail_faultinject::set_enabled(false);
    uavail_obs::set_enabled(false);
    let snap = uavail_obs::snapshot();
    assert!(snap.counter("travel.farm.pi_fallbacks") >= 1, "{snap:?}");
    assert!(snap.counter("travel.farm.pi_recovered") >= 1);
    assert!(snap.counter("faultinject.fired.markov.gth.mass_drift") >= 1);
    uavail_obs::reset();
}

#[test]
fn forced_singular_lu_recovers_through_the_fallback_chain() {
    let _guard = InjectionGuard::acquire();
    uavail_faultinject::set_seed(9);
    uavail_faultinject::arm("singular", 1.0).unwrap();
    uavail_faultinject::set_enabled(true);

    // The default farm solve is GTH, which never factors a matrix — but
    // the resilient chain's LU stage does, reports the injected
    // singularity, and falls through to GTH, which solves it.
    let chain = {
        let mut b = uavail_markov::CtmcBuilder::new();
        let up = b.add_state("up");
        let down = b.add_state("down");
        b.add_transition(up, down, 0.01).unwrap();
        b.add_transition(down, up, 1.0).unwrap();
        b.build().unwrap()
    };
    let pi = chain.steady_state_resilient().unwrap();
    assert!((pi[0] - 1.0 / 1.01).abs() < 1e-12);
}

#[test]
fn corrupted_queue_parameters_surface_as_typed_errors() {
    let _guard = InjectionGuard::acquire();
    uavail_faultinject::set_seed(11);
    uavail_faultinject::arm("mmck", 1.0).unwrap();
    uavail_faultinject::set_enabled(true);

    // Every M/M/c/K construction sees a NaN arrival rate; the satellite
    // validation rejects it before any arithmetic runs.
    let err = redundant_imperfect_availability(&TaParameters::paper_defaults());
    assert!(
        matches!(err, Err(TravelError::Queueing(_))),
        "expected a typed queueing error, got {err:?}"
    );

    // The resilient sweep turns the same corruption into per-point typed
    // failures without losing the unaffected points (there are none here
    // — every point needs the queueing model — so the report is all
    // failures, and still no abort).
    let fig = figure12_resilient();
    assert_eq!(fig.points.len() + fig.failures.len(), 90);
    assert!(!fig.failures.is_empty());
    for failure in &fig.failures {
        assert!(matches!(
            failure.error,
            TravelError::Queueing(_) | TravelError::Core(_)
        ));
    }
}

#[test]
fn poisoned_cache_entries_are_rejected_not_propagated() {
    let _guard = InjectionGuard::acquire();
    uavail_faultinject::set_seed(13);
    uavail_faultinject::arm("cache", 1.0).unwrap();
    uavail_faultinject::set_enabled(true);

    // First evaluation: every p_K(i) is computed fresh (clean) but cached
    // poisoned, so the result is still correct.
    let params = TaParameters::paper_defaults();
    let first = redundant_imperfect_availability(&params).unwrap();
    assert!((first - HEADLINE).abs() < 1e-8);

    // Second evaluation: cache hits serve NaN, which the composite
    // availability validation rejects as a typed error instead of
    // propagating into the results.
    let second = redundant_imperfect_availability(&params);
    assert!(
        matches!(
            second,
            Err(TravelError::Core(CoreError::InvalidProbability { .. }))
        ),
        "expected typed rejection of the poisoned entry, got {second:?}"
    );

    // Clearing the poisoned cache restores the headline.
    uavail_faultinject::reset();
    reset_loss_cache();
    let healed = headline_availability();
    assert_eq!(first.to_bits(), healed.to_bits());
}

#[test]
fn replication_drop_and_dup_reshape_the_schedule_deterministically() {
    let _guard = InjectionGuard::acquire();
    uavail_faultinject::set_seed(17);
    uavail_faultinject::arm("drop", 0.3).unwrap();
    uavail_faultinject::set_enabled(true);

    let run = |threads: usize| -> Vec<usize> {
        uavail_sim::replicate::replicate_parallel_threads(99, 64, threads, |_rng, i| {
            Ok::<usize, uavail_sim::SimError>(i)
        })
        .unwrap()
    };
    // Drops shrink the schedule; serial and parallel agree because the
    // schedule is decided on the calling thread.
    let serial = run(1);
    assert!(serial.len() < 64, "drop rate 0.3 dropped nothing in 64");
    let parallel = run(4);
    // Same thread key (calling thread), advancing counters — the two runs
    // see different invocations, so only structural properties are
    // comparable across runs; within a run, indices stay sorted unique.
    assert!(parallel.windows(2).all(|w| w[0] < w[1]));
    assert!(serial.windows(2).all(|w| w[0] < w[1]));

    uavail_faultinject::reset();
    uavail_faultinject::set_seed(19);
    uavail_faultinject::arm("dup", 0.3).unwrap();
    uavail_faultinject::set_enabled(true);
    let duped =
        uavail_sim::replicate::replicate(7, 64, |_rng, i| Ok::<usize, uavail_sim::SimError>(i))
            .unwrap();
    assert!(duped.len() > 64, "dup rate 0.3 duplicated nothing in 64");
}
