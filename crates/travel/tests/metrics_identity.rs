//! The `uavail-obs` contract, pinned end to end: enabling the metrics
//! recorder never changes any reproduced number, bit for bit — and while
//! enabled, the recorder actually observes the work.
//!
//! These tests toggle the process-wide recorder, so they live in their own
//! integration binary and serialize on a lock instead of sharing a process
//! with the rest of the suite.

use std::sync::Mutex;

use uavail_travel::evaluation::{figure11, figure12, figure12_parallel, table8};
use uavail_travel::sim_validation::{
    compressed_parameters, validate_web_service, validate_web_service_streaming,
};
use uavail_travel::webservice;

static RECORDER_LOCK: Mutex<()> = Mutex::new(());

/// Runs `f` once with recording off and once with recording on (resetting
/// the recorder first), returning both results plus the on-run snapshot.
fn with_and_without_recording<T>(f: impl Fn() -> T) -> (T, T, uavail_obs::Snapshot) {
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    uavail_obs::set_enabled(false);
    let off = f();
    uavail_obs::set_enabled(true);
    uavail_obs::reset();
    let on = f();
    let snap = uavail_obs::snapshot();
    uavail_obs::set_enabled(false);
    (off, on, snap)
}

#[test]
fn figure_sweeps_are_bit_identical_with_recording_on() {
    let (off, on, snap) = with_and_without_recording(|| {
        (figure11().unwrap(), figure12().unwrap(), table8().unwrap())
    });
    let (f11_off, f12_off, t8_off) = off;
    let (f11_on, f12_on, t8_on) = on;
    for (a, b) in f11_off
        .iter()
        .zip(&f11_on)
        .chain(f12_off.iter().zip(&f12_on))
    {
        assert_eq!(
            a.unavailability.to_bits(),
            b.unavailability.to_bits(),
            "N_W={} λ={} α={}",
            a.web_servers,
            a.failure_rate_per_hour,
            a.arrival_rate_per_second
        );
    }
    assert_eq!(t8_off, t8_on);

    // While on, the recorder saw the sweeps: per-figure point counts,
    // loss-cache traffic under the cap, span timings and a per-point
    // latency histogram.
    assert_eq!(snap.counter("travel.fig11.points"), 90);
    assert_eq!(snap.counter("travel.fig12.points"), 90);
    let hits = snap.counter("travel.loss_cache.hits");
    let misses = snap.counter("travel.loss_cache.misses");
    assert!(hits + misses > 0, "cache counters must move");
    assert!(
        webservice::loss_cache_len() <= webservice::loss_cache_capacity(),
        "dense sweep must stay under the cache cap"
    );
    assert_eq!(snap.spans["travel.figure_sweep"].count, 2);
    assert!(snap.spans["travel.figure_sweep"].total_nanos > 0);
    assert_eq!(snap.spans["travel.table8"].count, 1);
    assert_eq!(snap.histograms["travel.figure.point_ns"].count, 180);
}

#[test]
fn parallel_sweep_is_bit_identical_with_recording_on() {
    let (off, on, snap) = with_and_without_recording(|| figure12_parallel().unwrap());
    for (a, b) in off.iter().zip(&on) {
        assert_eq!(a.unavailability.to_bits(), b.unavailability.to_bits());
    }
    assert_eq!(snap.spans["travel.figure_sweep_parallel"].count, 1);
    assert_eq!(snap.histograms["travel.figure.point_ns"].count, 90);
}

#[test]
fn simulation_is_bit_identical_with_recording_on() {
    let params = compressed_parameters();
    let (off, on, snap) =
        with_and_without_recording(|| validate_web_service(&params, 500.0, 11).unwrap());
    assert_eq!(off, on, "recording must not perturb the RNG stream");
    assert_eq!(snap.counter("travel.validate.arrivals"), on.arrivals);
    assert_eq!(snap.spans["travel.validate"].count, 1);
}

#[test]
fn slo_and_window_recording_is_bit_identical_and_fed_by_the_validator() {
    let params = compressed_parameters();
    let analytic = webservice::redundant_imperfect_availability(&params).unwrap();
    let _guard = RECORDER_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    // Off: the full telemetry plane configured but recording disabled.
    uavail_obs::set_enabled(false);
    uavail_obs::slo_reset();
    uavail_obs::window_reset();
    uavail_obs::window::clock_reset();
    let off = validate_web_service_streaming(&params, 2_000.0, 20240601, 4, 2).unwrap();
    assert!(
        uavail_obs::slo_snapshot().is_none(),
        "disabled: the validator must not create an SLO monitor"
    );

    // On: the streaming validator feeds the monitor and windows rotate.
    uavail_obs::set_enabled(true);
    uavail_obs::reset();
    uavail_obs::slo_configure(uavail_obs::SloConfig {
        target_availability: Some(analytic),
        ..uavail_obs::SloConfig::default()
    });
    uavail_obs::clock_advance_to(1_000_000_000);
    uavail_obs::window_record("validate.run_ns", 1);
    let on = validate_web_service_streaming(&params, 2_000.0, 20240601, 4, 2).unwrap();
    let slo = uavail_obs::slo_snapshot().expect("validator fed the monitor");
    uavail_obs::set_enabled(false);

    // The reproduced numbers are bit-identical, recording on or off.
    assert_eq!(
        off.report.simulated_unavailability.to_bits(),
        on.report.simulated_unavailability.to_bits()
    );
    assert_eq!(
        off.report.confidence_interval.0.to_bits(),
        on.report.confidence_interval.0.to_bits()
    );
    assert_eq!(
        off.batch_stats.mean().to_bits(),
        on.batch_stats.mean().to_bits()
    );

    // And the monitor saw exactly the pooled outcome counts.
    assert_eq!(slo.total, on.report.arrivals);
    assert_eq!(
        slo.losses,
        on.report.arrivals - slo.successes,
        "losses + successes partition the arrivals"
    );
    assert!((slo.availability - (1.0 - on.report.simulated_unavailability)).abs() < 1e-12);
    assert_eq!(slo.classes["farm"].total, on.report.arrivals);

    uavail_obs::slo_reset();
    uavail_obs::window_reset();
    uavail_obs::window::clock_reset();
}
