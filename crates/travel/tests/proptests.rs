//! Property-based tests for the travel-agency case study.

use proptest::prelude::*;
use uavail_travel::user::{class_a, class_b, equation_10, user_availability};
use uavail_travel::{
    extensions, maintenance, webservice, Architecture, Coverage, TaParameters, TravelAgencyModel,
};

/// Strategy: valid, physically plausible parameter sets.
fn params_strategy() -> impl Strategy<Value = TaParameters> {
    (
        1usize..6,      // web servers
        -4.0f64..-1.0,  // log10 lambda
        0.5f64..2.0,    // mu
        0.8f64..1.0,    // coverage
        20.0f64..160.0, // alpha
        80.0f64..140.0, // nu
        0usize..8,      // extra buffer above servers
        1usize..6,      // reservation systems
        0.5f64..0.99,   // reservation availability
    )
        .prop_map(|(nw, log_lambda, mu, c, alpha, nu, extra, n_res, a_res)| {
            TaParameters::builder()
                .web_servers(nw)
                .failure_rate_per_hour(10f64.powf(log_lambda))
                .repair_rate_per_hour(mu)
                .coverage(c)
                .arrival_rate_per_second(alpha)
                .service_rate_per_second(nu)
                .buffer_size(nw + extra + 4)
                .reservation_systems(n_res)
                .reservation_availability(a_res)
                .build()
                .expect("generated parameters are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn web_availability_is_probability_and_ordered(p in params_strategy()) {
        let imperfect = webservice::redundant_imperfect_availability(&p).unwrap();
        let perfect = webservice::redundant_perfect_availability(&p).unwrap();
        prop_assert!((0.0..=1.0).contains(&imperfect));
        prop_assert!((0.0..=1.0).contains(&perfect));
        prop_assert!(perfect >= imperfect - 1e-12);
    }

    #[test]
    fn generic_composition_equals_equation_10_everywhere(p in params_strategy()) {
        for arch in [Architecture::Basic, Architecture::Redundant(Coverage::Imperfect)] {
            let model = TravelAgencyModel::new(p.clone(), arch).unwrap();
            let env = model.service_availabilities().unwrap();
            for class in [class_a(), class_b()] {
                let generic = user_availability(&class, &p, &env).unwrap();
                let closed = equation_10(&class, &p, &env).unwrap();
                prop_assert!((generic - closed).abs() < 1e-12);
                prop_assert!((0.0..=1.0 + 1e-12).contains(&generic));
            }
        }
    }

    #[test]
    fn class_a_never_below_class_b(p in params_strategy()) {
        let model = TravelAgencyModel::new(p, Architecture::paper_reference()).unwrap();
        let a = model.user_availability(&class_a()).unwrap();
        let b = model.user_availability(&class_b()).unwrap();
        // Class B invokes strictly more external services in expectation.
        prop_assert!(a >= b - 1e-12, "A {a} vs B {b}");
    }

    #[test]
    fn hierarchical_model_consistent_for_random_parameters(p in params_strategy()) {
        let model = TravelAgencyModel::new(p, Architecture::paper_reference()).unwrap();
        let class = class_a();
        let direct = model.user_availability(&class).unwrap();
        let eval = model.hierarchical(&class).unwrap().evaluate().unwrap();
        prop_assert!((direct - eval.value("user").unwrap()).abs() < 1e-12);
    }

    #[test]
    fn deadline_availability_bounded_by_classical(
        p in params_strategy(),
        deadline in 0.001f64..1.0
    ) {
        let classical = webservice::redundant_imperfect_availability(&p).unwrap();
        let extended = extensions::deadline_availability(&p, deadline).unwrap();
        prop_assert!(extended <= classical + 1e-12);
        prop_assert!(extended >= -1e-12);
    }

    #[test]
    fn deadline_monotone(p in params_strategy(), t in 0.01f64..0.5) {
        let a1 = extensions::deadline_availability(&p, t).unwrap();
        let a2 = extensions::deadline_availability(&p, t * 2.0).unwrap();
        prop_assert!(a2 >= a1 - 1e-12);
    }

    #[test]
    fn maintenance_distributions_normalized(p in params_strategy()) {
        use maintenance::RepairStrategy;
        let mut strategies = vec![
            RepairStrategy::SharedImmediate,
            RepairStrategy::DedicatedImmediate,
        ];
        if p.web_servers > 1 {
            strategies.push(RepairStrategy::Deferred {
                start_below: p.web_servers - 1,
            });
        }
        for s in strategies {
            let (op, y) = maintenance::farm_distribution(&p, s).unwrap();
            let total: f64 = op.iter().sum::<f64>() + y.iter().sum::<f64>();
            prop_assert!((total - 1.0).abs() < 1e-9, "{s}: {total}");
            let a = maintenance::web_availability(&p, s).unwrap();
            prop_assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn more_reservation_systems_never_hurt(p in params_strategy()) {
        let fewer = TravelAgencyModel::new(p.clone(), Architecture::paper_reference())
            .unwrap()
            .user_availability(&class_b())
            .unwrap();
        let more_params = p.with_reservation_systems(8);
        let more = TravelAgencyModel::new(more_params, Architecture::paper_reference())
            .unwrap()
            .user_availability(&class_b())
            .unwrap();
        prop_assert!(more >= fewer - 1e-12);
    }
}
