//! Bit-for-bit identity pins for the batched evaluation layer: every
//! `*_batched` twin must replay the exact bits of its scalar counterpart,
//! for every block size, across repeated calls on a warm context, and on
//! parallel workers.

use uavail_travel::batch::{
    figure11_batched, figure11_parallel_batched, figure12_batched, figure12_parallel_batched,
    min_web_servers_for_batched, table8_batched, BatchContext,
};
use uavail_travel::evaluation::{figure11, figure12, min_web_servers_for, table8, FigurePoint};
use uavail_travel::{webservice, TaParameters};

fn assert_points_bit_identical(label: &str, a: &[FigurePoint], b: &[FigurePoint]) {
    assert_eq!(a.len(), b.len(), "{label}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.failure_rate_per_hour.to_bits(),
            y.failure_rate_per_hour.to_bits(),
            "{label}: lambda differs at point {i}"
        );
        assert_eq!(
            x.arrival_rate_per_second.to_bits(),
            y.arrival_rate_per_second.to_bits(),
            "{label}: alpha differs at point {i}"
        );
        assert_eq!(
            x.web_servers, y.web_servers,
            "{label}: N_W differs at point {i}"
        );
        assert_eq!(
            x.unavailability.to_bits(),
            y.unavailability.to_bits(),
            "{label}: unavailability differs at point {i}"
        );
    }
}

#[test]
fn batched_figure_sweeps_match_scalar_for_every_block_size() {
    let cold11 = figure11().unwrap();
    let cold12 = figure12().unwrap();
    // Block sizes straddling every interesting boundary: single-point
    // blocks, blocks that split a 10-point series, the natural series
    // block, a misaligned prime, one block for the whole grid, and a
    // block larger than the grid.
    for block in [1usize, 3, 10, 17, 90, 200] {
        let mut bctx = BatchContext::new();
        let b11 = figure11_batched(block, &mut bctx).unwrap();
        assert_points_bit_identical(&format!("figure11 block={block}"), &b11, &cold11);
        let b12 = figure12_batched(block, &mut bctx).unwrap();
        assert_points_bit_identical(&format!("figure12 block={block}"), &b12, &cold12);
    }
}

#[test]
fn repeated_batched_sweeps_replay_exact_bits() {
    // Round two runs entirely off the series memo and must be
    // indistinguishable from round one (which equals the scalar sweep).
    let mut bctx = BatchContext::new();
    let first11 = figure11_batched(10, &mut bctx).unwrap();
    let first12 = figure12_batched(10, &mut bctx).unwrap();
    for round in 0..2 {
        let again11 = figure11_batched(10, &mut bctx).unwrap();
        assert_points_bit_identical(&format!("figure11 round {round}"), &again11, &first11);
        let again12 = figure12_batched(10, &mut bctx).unwrap();
        assert_points_bit_identical(&format!("figure12 round {round}"), &again12, &first12);
    }
}

#[test]
fn parallel_batched_sweeps_match_serial() {
    let cold11 = figure11().unwrap();
    let cold12 = figure12().unwrap();
    for block in [4usize, 10] {
        let p11 = figure11_parallel_batched(block).unwrap();
        assert_points_bit_identical(&format!("figure11 parallel block={block}"), &p11, &cold11);
        let p12 = figure12_parallel_batched(block).unwrap();
        assert_points_bit_identical(&format!("figure12 parallel block={block}"), &p12, &cold12);
    }
}

#[test]
fn batched_table8_replays_scalar_bits() {
    let cold = table8().unwrap();
    let mut bctx = BatchContext::new();
    for round in 0..2 {
        let rows = table8_batched(&mut bctx).unwrap();
        assert_eq!(rows.len(), cold.len());
        for (b, c) in rows.iter().zip(&cold) {
            assert_eq!(
                b.reservation_systems, c.reservation_systems,
                "round {round}: row order differs"
            );
            assert_eq!(
                b.class_a.to_bits(),
                c.class_a.to_bits(),
                "round {round}: class A differs at N = {}",
                c.reservation_systems
            );
            assert_eq!(
                b.class_b.to_bits(),
                c.class_b.to_bits(),
                "round {round}: class B differs at N = {}",
                c.reservation_systems
            );
        }
    }
}

#[test]
fn batched_capacity_search_matches_scalar() {
    let cases = [
        (1e-5, 1e-3, 50.0),
        (1e-5, 1e-3, 100.0),
        (1.1e-5, 1e-3, 100.0),
        (1e-5, 1e-4, 100.0),
        (1e-5, 1e-2, 100.0),
    ];
    let mut bctx = BatchContext::new();
    for (target, lambda, alpha) in cases {
        let scalar = min_web_servers_for(target, lambda, alpha, 10).unwrap();
        let batched = min_web_servers_for_batched(target, lambda, alpha, 10, &mut bctx).unwrap();
        assert_eq!(
            batched, scalar,
            "capacity search diverged at target={target}, lambda={lambda}, alpha={alpha}"
        );
    }
}

#[test]
fn batched_path_pins_paper_headline() {
    // The paper-default point (λ = 1e-4, α = 100, N_W = 4) sits on the
    // Figure 12 grid; its batched unavailability must be the exact
    // complement bits of the headline A(WS) = 0.999995587.
    let mut bctx = BatchContext::new();
    let points = figure12_batched(10, &mut bctx).unwrap();
    let point = points
        .iter()
        .find(|p| {
            p.failure_rate_per_hour == 1e-4
                && p.arrival_rate_per_second == 100.0
                && p.web_servers == 4
        })
        .expect("paper-default point on the Figure 12 grid");
    let a = 1.0 - point.unavailability;
    assert!((a - 0.999995587).abs() < 1e-8, "A(WS) = {a}");
    let cold =
        webservice::redundant_imperfect_availability(&TaParameters::paper_defaults()).unwrap();
    assert_eq!((1.0 - cold).to_bits(), point.unavailability.to_bits());
}

#[test]
fn batched_path_pins_figure12_reversal() {
    // Figure 12's key qualitative finding survives the batched layer:
    // at λ = 1e-2, α = 50, ten servers are *worse* than four.
    let mut bctx = BatchContext::new();
    let points = figure12_batched(10, &mut bctx).unwrap();
    let u = |nw: usize| {
        points
            .iter()
            .find(|p| {
                p.failure_rate_per_hour == 1e-2
                    && p.arrival_rate_per_second == 50.0
                    && p.web_servers == nw
            })
            .map(|p| p.unavailability)
            .expect("grid point present")
    };
    assert!(
        u(10) > u(4),
        "u(10) = {} should exceed u(4) = {}",
        u(10),
        u(4)
    );
}

#[test]
fn zero_block_is_rejected() {
    let mut bctx = BatchContext::new();
    assert!(figure11_batched(0, &mut bctx).is_err());
    assert!(figure12_parallel_batched(0).is_err());
}
