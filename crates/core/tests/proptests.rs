//! Property-based tests for `uavail-core`.

use std::collections::HashMap;

use proptest::prelude::*;
use uavail_core::{AvailExpr, Dual, HierarchicalModel, InteractionDiagram, Level};

/// Strategy: a random availability expression over parameters p0..p4.
fn expr_strategy() -> impl Strategy<Value = AvailExpr> {
    let leaf = prop_oneof![
        (0usize..5).prop_map(|i| AvailExpr::param(format!("p{i}"))),
        (0.0f64..=1.0).prop_map(AvailExpr::constant),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..4).prop_map(AvailExpr::product),
            prop::collection::vec(inner.clone(), 1..4).prop_map(AvailExpr::parallel),
            (prop::collection::vec(inner.clone(), 1..4), any::<u8>()).prop_map(|(ch, raw)| {
                let k = (raw as usize % ch.len()) + 1;
                AvailExpr::k_of_n(k, ch)
            }),
            prop::collection::vec((0.0f64..=0.33, inner.clone()), 1..3)
                .prop_map(AvailExpr::weighted_sum),
            inner.prop_map(AvailExpr::complement),
        ]
    })
}

fn env(values: &[f64]) -> HashMap<String, f64> {
    values
        .iter()
        .enumerate()
        .map(|(i, &v)| (format!("p{i}"), v))
        .collect()
}

proptest! {
    #[test]
    fn expressions_evaluate_to_probabilities(
        expr in expr_strategy(),
        values in prop::collection::vec(0.0f64..=1.0, 5)
    ) {
        prop_assume!(expr.validate().is_ok());
        let v = expr.eval(&env(&values)).unwrap();
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v), "value {v}");
    }

    #[test]
    fn dual_derivative_matches_finite_difference(
        expr in expr_strategy(),
        values in prop::collection::vec(0.05f64..=0.95, 5),
        which in 0usize..5
    ) {
        prop_assume!(expr.validate().is_ok());
        let name = format!("p{which}");
        let e = env(&values);
        let (_, exact) = expr.eval_partial(&e, &name).unwrap();
        let h = 1e-6;
        let mut up = e.clone();
        up.insert(name.clone(), values[which] + h);
        let mut down = e.clone();
        down.insert(name.clone(), values[which] - h);
        let fd = (expr.eval(&up).unwrap() - expr.eval(&down).unwrap()) / (2.0 * h);
        prop_assert!((exact - fd).abs() < 1e-5, "exact {exact} vs fd {fd}");
    }

    #[test]
    fn expressions_monotone_in_parameters(
        expr in expr_strategy(),
        values in prop::collection::vec(0.05f64..=0.9, 5),
        which in 0usize..5
    ) {
        // Products, parallels, k-of-n and non-negative mixtures of
        // monotone pieces are monotone; complements flip the sign locally
        // but the derivative test above covers gradients — here restrict
        // to complement-free expressions.
        fn has_complement(e: &AvailExpr) -> bool {
            match e {
                AvailExpr::Complement(_) => true,
                AvailExpr::Product(ch) | AvailExpr::Parallel(ch) | AvailExpr::KOfN(_, ch) => {
                    ch.iter().any(has_complement)
                }
                AvailExpr::WeightedSum(terms) => terms.iter().any(|(_, c)| has_complement(c)),
                _ => false,
            }
        }
        prop_assume!(expr.validate().is_ok());
        prop_assume!(!has_complement(&expr));
        let base = expr.eval(&env(&values)).unwrap();
        let mut bumped = values.clone();
        bumped[which] = (bumped[which] + 0.05).min(1.0);
        let after = expr.eval(&env(&bumped)).unwrap();
        prop_assert!(after >= base - 1e-10);
    }

    #[test]
    fn dual_arithmetic_is_a_derivation(
        a in -5.0f64..5.0,
        b in -5.0f64..5.0,
        x in 0.1f64..3.0
    ) {
        // (a + b x)(a - b x) has derivative -2 b^2 x.
        let xv = Dual::variable(x);
        let av = Dual::constant(a);
        let bv = Dual::constant(b);
        let y = (av + bv * xv) * (av - bv * xv);
        prop_assert!((y.derivative() + 2.0 * b * b * x).abs() < 1e-9);
        prop_assert!((y.value() - (a * a - b * b * x * x)).abs() < 1e-9);
    }

    #[test]
    fn layered_interaction_diagrams_normalize(
        widths in prop::collection::vec(1usize..4, 1..4),
        seedp in 0.1f64..0.9
    ) {
        // Build a layered DAG: Begin -> layer 0 -> ... -> End, each stage
        // branching to the next layer or End.
        let mut d = InteractionDiagram::new();
        let mut layers: Vec<Vec<uavail_core::NodeId>> = Vec::new();
        for (li, &w) in widths.iter().enumerate() {
            let layer: Vec<_> = (0..w)
                .map(|si| d.add_stage(vec![format!("svc{li}_{si}")]))
                .collect();
            layers.push(layer);
        }
        // Begin spreads uniformly over layer 0.
        let w0 = layers[0].len();
        for &s in &layers[0] {
            d.connect_begin(s, 1.0 / w0 as f64).unwrap();
        }
        for li in 0..layers.len() {
            let next: Option<&Vec<_>> = layers.get(li + 1);
            for &s in &layers[li] {
                match next {
                    Some(next_layer) => {
                        let to_end = seedp;
                        d.connect_end(s, to_end).unwrap();
                        let share = (1.0 - to_end) / next_layer.len() as f64;
                        for &n in next_layer {
                            d.connect(s, n, share).unwrap();
                        }
                    }
                    None => d.connect_end(s, 1.0).unwrap(),
                }
            }
        }
        let scenarios = d.scenarios().unwrap();
        let total: f64 = scenarios.iter().map(|(p, _)| p).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "total {total}");
        // Compiling and evaluating with all services perfect gives 1.
        let expr = d.compile().unwrap();
        let mut full = HashMap::new();
        for p in expr.parameters() {
            full.insert(p, 1.0);
        }
        prop_assert!((expr.eval(&full).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simplify_preserves_value_and_shrinks(
        expr in expr_strategy(),
        values in prop::collection::vec(0.0f64..=1.0, 5)
    ) {
        prop_assume!(expr.validate().is_ok());
        let simplified = expr.simplify();
        let e = env(&values);
        let before = expr.eval(&e).unwrap();
        let after = simplified.eval(&e).unwrap();
        prop_assert!((before - after).abs() < 1e-12, "{before} vs {after}");
        prop_assert!(simplified.node_count() <= expr.node_count());
    }

    #[test]
    fn hierarchical_sensitivity_chain_rule(
        a in 0.1f64..0.99,
        b in 0.1f64..0.99
    ) {
        // user = svc^1 where svc = a * b: d(user)/d(a) must equal b.
        let mut m = HierarchicalModel::new();
        m.define_value("a", Level::Resource, a).unwrap();
        m.define_value("b", Level::Resource, b).unwrap();
        m.define_expr(
            "svc",
            Level::Service,
            AvailExpr::product(vec![AvailExpr::param("a"), AvailExpr::param("b")]),
        )
        .unwrap();
        m.define_expr("user", Level::User, AvailExpr::param("svc")).unwrap();
        let d = m.sensitivity("user", "a").unwrap();
        prop_assert!((d - b).abs() < 1e-12);
    }
}

// --- Parallel-evaluation equivalence -----------------------------------

proptest! {
    /// `sweep_parallel` is observationally identical to `sweep` for any
    /// input grid, thread count, and failure pattern: same points bit for
    /// bit on success, the same `EvalAt` error otherwise.
    #[test]
    fn sweep_parallel_equals_sweep(
        values in prop::collection::vec(-100.0f64..100.0, 0..60),
        threads in 1usize..9,
        fail_above in 0.0f64..120.0
    ) {
        let f = |x: f64| -> Result<f64, uavail_core::CoreError> {
            if x.abs() > fail_above {
                Err(uavail_core::CoreError::InvalidProbability {
                    context: "property sweep".into(),
                    value: x,
                })
            } else {
                Ok((x * 0.1).sin() * (x * 0.01).exp())
            }
        };
        let serial = uavail_core::sweep::sweep(&values, f);
        let parallel = uavail_core::sweep::sweep_parallel_threads(&values, threads, f);
        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(s.len(), p.len());
                for (a, b) in s.iter().zip(&p) {
                    prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
                    prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (s, p) => prop_assert!(false, "serial {:?} vs parallel {:?}", s, p),
        }
    }

    /// Same equivalence for the tornado diagram, including the swing
    /// ranking and the failing-parameter error context.
    #[test]
    fn tornado_parallel_equals_tornado(
        lows in prop::collection::vec(-10.0f64..10.0, 1..8),
        spans in prop::collection::vec(0.0f64..5.0, 1..8),
        threads in 1usize..9,
        fail_above in 0.0f64..20.0
    ) {
        let names: Vec<String> = (0..lows.len().min(spans.len()))
            .map(|i| format!("param{i}"))
            .collect();
        let ranges: Vec<(&str, f64, f64)> = names
            .iter()
            .zip(lows.iter().zip(&spans))
            .map(|(n, (&lo, &span))| (n.as_str(), lo, lo + span))
            .collect();
        let f = |name: &str, v: f64| -> Result<f64, uavail_core::CoreError> {
            if v.abs() > fail_above {
                Err(uavail_core::CoreError::Undefined { name: name.into() })
            } else {
                Ok(v * v + name.len() as f64)
            }
        };
        let serial = uavail_core::sweep::tornado(&ranges, f);
        let parallel =
            uavail_core::sweep::tornado_parallel_threads(&ranges, threads, f);
        match (serial, parallel) {
            (Ok(s), Ok(p)) => prop_assert_eq!(s, p),
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (s, p) => prop_assert!(false, "serial {:?} vs parallel {:?}", s, p),
        }
    }
}

// --- Batched-evaluation equivalence ------------------------------------

/// The model function shared by the batched-equivalence properties: a
/// nontrivial float pipeline with a failure threshold, evaluated by the
/// scalar and block paths through identical operations.
fn batched_model(x: f64, fail_above: f64) -> Result<f64, uavail_core::CoreError> {
    if x.abs() > fail_above {
        Err(uavail_core::CoreError::InvalidProbability {
            context: "batched property".into(),
            value: x,
        })
    } else {
        Ok((x * 0.1).sin() * (x * 0.01).exp() / (2.0 + x.cos()))
    }
}

proptest! {
    /// `sweep_batched` (serial and parallel, any block size) is
    /// observationally identical to `sweep_with`: bit-for-bit points on
    /// success, the same `EvalAt` error at the same point otherwise.
    #[test]
    fn sweep_batched_equals_sweep_with(
        values in prop::collection::vec(-100.0f64..100.0, 0..80),
        block in 1usize..25,
        threads in 1usize..9,
        fail_above in 0.0f64..120.0
    ) {
        let block_eval = |_: &mut (), xs: &[f64], out: &mut Vec<f64>| {
            for &x in xs {
                out.push(batched_model(x, fail_above)?);
            }
            Ok(())
        };
        let mut ws = ();
        let scalar = uavail_core::sweep::sweep_with(&values, &mut ws, |_, x| {
            batched_model(x, fail_above)
        });
        let batched = uavail_core::sweep::sweep_batched(&values, block, &mut ws, block_eval);
        let parallel = uavail_core::sweep::sweep_parallel_batched_threads(
            &values, block, threads, || (), block_eval,
        );
        match (&scalar, &batched) {
            (Ok(s), Ok(b)) => {
                prop_assert_eq!(s.len(), b.len());
                for (a, b) in s.iter().zip(b) {
                    prop_assert_eq!(a.x.to_bits(), b.x.to_bits());
                    prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
                }
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (s, b) => prop_assert!(false, "scalar {:?} vs batched {:?}", s, b),
        }
        prop_assert_eq!(&batched, &parallel);
    }

    /// Interaction with the resilient engine: when the batched sweep
    /// succeeds, the resilient report is complete with bit-identical
    /// points; when it fails, the batched error names exactly the first
    /// point the resilient report records as failed.
    #[test]
    fn sweep_batched_agrees_with_resilient_report(
        values in prop::collection::vec(-100.0f64..100.0, 1..60),
        block in 1usize..12,
        fail_above in 0.0f64..120.0
    ) {
        let mut ws = ();
        let batched = uavail_core::sweep::sweep_batched(
            &values, block, &mut ws,
            |_, xs: &[f64], out: &mut Vec<f64>| {
                for &x in xs {
                    out.push(batched_model(x, fail_above)?);
                }
                Ok(())
            },
        );
        let report = uavail_core::sweep::sweep_resilient(&values, |x| {
            batched_model(x, fail_above)
        });
        match batched {
            Ok(points) => {
                prop_assert!(report.is_complete());
                prop_assert_eq!(points.len(), report.points.len());
                for (a, b) in points.iter().zip(&report.points) {
                    prop_assert_eq!(a.y.to_bits(), b.y.to_bits());
                }
            }
            Err(e) => {
                prop_assert!(!report.is_complete());
                let first = &report.failures[0];
                let text = e.to_string();
                prop_assert!(
                    text.contains(&format!("x = {}", first.x)),
                    "batched error {} does not name first resilient failure x = {}",
                    text, first.x
                );
            }
        }
    }
}

/// Strategy: short strings with the characters that stress JSON escaping
/// (quotes, backslashes, control chars, multi-byte UTF-8).
fn nasty_text() -> impl Strategy<Value = String> {
    const CHARS: &[char] = &[
        'a', 'Z', '"', '\\', '\n', '\t', '\u{1}', 'é', '😀', ' ', ':',
    ];
    prop::collection::vec(0usize..CHARS.len(), 0..10)
        .prop_map(|picks| picks.into_iter().map(|i| CHARS[i]).collect())
}

/// Strategy: every `CoreError` variant, with `EvalAt` nesting and the
/// non-finite probability values the error encoder handles specially.
fn core_error() -> proptest::strategy::BoxedStrategy<uavail_core::CoreError> {
    use uavail_core::CoreError;
    let value = prop_oneof![
        Just(f64::NAN),
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        -1.0e12f64..1.0e12,
    ];
    let leaf = prop_oneof![
        nasty_text().prop_map(|name| CoreError::Undefined { name }),
        nasty_text().prop_map(|name| CoreError::Redefined { name }),
        (nasty_text(), value)
            .prop_map(|(context, value)| CoreError::InvalidProbability { context, value }),
        nasty_text().prop_map(|reason| CoreError::BadDependency { reason }),
        nasty_text().prop_map(|reason| CoreError::BadDiagram { reason }),
        nasty_text().prop_map(|reason| CoreError::BadWeights { reason }),
        (any::<u64>(), nasty_text()).prop_map(|(i, payload)| CoreError::WorkerPanicked {
            index: i as usize,
            payload,
        }),
    ];
    leaf.prop_recursive(3, 8, 2, |inner| {
        (nasty_text(), inner).prop_map(|(context, source)| CoreError::EvalAt {
            context,
            source: Box::new(source),
        })
    })
}

proptest! {
    #[test]
    fn sweep_reports_round_trip_through_json(
        points in prop::collection::vec((-1.0e12f64..1.0e12, -1.0e12f64..1.0e12), 0..10),
        failures in prop::collection::vec(
            (any::<u64>(), -1.0e12f64..1.0e12, core_error()),
            0..6
        )
    ) {
        use uavail_core::sweep::{SweepFailure, SweepPoint, SweepReport};
        let report = SweepReport {
            points: points
                .into_iter()
                .map(|(x, y)| SweepPoint { x, y })
                .collect(),
            failures: failures
                .into_iter()
                .map(|(index, x, error)| SweepFailure {
                    index: index as usize,
                    x,
                    error,
                })
                .collect(),
        };
        let text = report.to_json().to_string();
        let back = SweepReport::from_json_str(&text)
            .unwrap_or_else(|e| panic!("report failed to re-parse: {e}\n{text}"));
        // NaN inside `InvalidProbability` breaks `PartialEq`, so the
        // round-trip is pinned on the re-encoded form instead.
        prop_assert_eq!(back.to_json().to_string(), text);
        prop_assert_eq!(back.points.len(), report.points.len());
        prop_assert_eq!(back.failures.len(), report.failures.len());
    }

    #[test]
    fn corrupted_sweep_reports_error_not_panic(
        error in core_error(),
        cut in 0usize..600,
        flip in 0usize..600
    ) {
        use uavail_core::sweep::{SweepFailure, SweepReport};
        let report = SweepReport {
            points: vec![],
            failures: vec![SweepFailure { index: 1, x: 0.5, error }],
        };
        let text = report.to_json().to_string();
        // Truncations and single-byte corruptions must be parse errors or
        // (for benign flips) a report — never a panic.
        let cut = text
            .char_indices()
            .map(|(i, _)| i)
            .take_while(|&i| i <= cut)
            .last()
            .unwrap_or(0);
        let _ = SweepReport::from_json_str(&text[..cut]);
        let mut bytes = text.clone().into_bytes();
        let at = flip % bytes.len();
        if bytes[at].is_ascii() {
            bytes[at] = b'!';
            let corrupted = String::from_utf8(bytes).expect("ascii flip");
            let _ = SweepReport::from_json_str(&corrupted);
        }
    }
}
