use std::collections::BTreeSet;
use std::fmt;

use crate::dual::{Dual, Scalar};
use crate::CoreError;

/// An algebraic availability expression over named quantities.
///
/// `AvailExpr` is the lingua franca of the framework: service formulas
/// (Tables 3–5), function formulas (Table 6) and the user-level equation
/// (10) are all expressions of this type. The constructors mirror the
/// idioms of availability modeling:
///
/// * [`AvailExpr::product`] — series use of several quantities,
/// * [`AvailExpr::parallel`] — `1 − Π(1 − A_i)` redundancy,
/// * [`AvailExpr::k_of_n`] — voting redundancy over identical quantities,
/// * [`AvailExpr::weighted_sum`] — scenario mixtures `Σ q_i · A_i`,
/// * [`AvailExpr::complement`] — unavailability `1 − A`.
///
/// Expressions evaluate over `f64` ([`AvailExpr::eval`]) or dual numbers
/// ([`AvailExpr::eval_partial`] for exact sensitivities).
///
/// # Examples
///
/// Table 3's external flight service with `n` independent systems:
///
/// ```
/// use std::collections::HashMap;
/// use uavail_core::AvailExpr;
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// let flight = AvailExpr::parallel(vec![
///     AvailExpr::param("AF"),
///     AvailExpr::param("KLM"),
/// ]);
/// let mut env = HashMap::new();
/// env.insert("AF".to_string(), 0.9);
/// env.insert("KLM".to_string(), 0.9);
/// assert!((flight.eval(&env)? - 0.99).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum AvailExpr {
    /// A literal probability.
    Const(f64),
    /// A named quantity resolved from the evaluation environment.
    Param(String),
    /// Product of sub-expressions (series composition).
    Product(Vec<AvailExpr>),
    /// `1 − Π(1 − child)` (parallel redundancy).
    Parallel(Vec<AvailExpr>),
    /// At least `k` of the children available (voting redundancy).
    KOfN(usize, Vec<AvailExpr>),
    /// `Σ w_i · child_i` (scenario mixture; weights validated at build).
    WeightedSum(Vec<(f64, AvailExpr)>),
    /// `1 − child` (unavailability).
    Complement(Box<AvailExpr>),
}

impl AvailExpr {
    /// A literal constant.
    pub fn constant(v: f64) -> Self {
        AvailExpr::Const(v)
    }

    /// A named quantity.
    pub fn param(name: impl Into<String>) -> Self {
        AvailExpr::Param(name.into())
    }

    /// Series composition: product of the children.
    pub fn product(children: Vec<AvailExpr>) -> Self {
        AvailExpr::Product(children)
    }

    /// Parallel redundancy: `1 − Π(1 − child)`.
    pub fn parallel(children: Vec<AvailExpr>) -> Self {
        AvailExpr::Parallel(children)
    }

    /// Voting redundancy: at least `k` of the children available
    /// (children treated as independent).
    pub fn k_of_n(k: usize, children: Vec<AvailExpr>) -> Self {
        AvailExpr::KOfN(k, children)
    }

    /// Scenario mixture `Σ w_i · child_i`.
    pub fn weighted_sum(terms: Vec<(f64, AvailExpr)>) -> Self {
        AvailExpr::WeightedSum(terms)
    }

    /// Unavailability `1 − child`.
    pub fn complement(child: AvailExpr) -> Self {
        AvailExpr::Complement(Box::new(child))
    }

    /// All parameter names referenced by this expression, sorted.
    pub fn parameters(&self) -> Vec<String> {
        let mut set = BTreeSet::new();
        self.collect_params(&mut set);
        set.into_iter().collect()
    }

    fn collect_params(&self, out: &mut BTreeSet<String>) {
        match self {
            AvailExpr::Const(_) => {}
            AvailExpr::Param(name) => {
                out.insert(name.clone());
            }
            AvailExpr::Product(ch) | AvailExpr::Parallel(ch) | AvailExpr::KOfN(_, ch) => {
                for c in ch {
                    c.collect_params(out);
                }
            }
            AvailExpr::WeightedSum(terms) => {
                for (_, c) in terms {
                    c.collect_params(out);
                }
            }
            AvailExpr::Complement(c) => c.collect_params(out),
        }
    }

    /// Structural validation: constants and weights are probabilities,
    /// k-of-n thresholds feasible, no empty composite.
    ///
    /// # Errors
    ///
    /// * [`CoreError::InvalidProbability`] for out-of-range constants.
    /// * [`CoreError::BadWeights`] for negative weights or a weight sum
    ///   exceeding `1 + 1e-9`.
    /// * [`CoreError::BadDiagram`] for empty composites or infeasible
    ///   k-of-n thresholds.
    pub fn validate(&self) -> Result<(), CoreError> {
        match self {
            AvailExpr::Const(v) => {
                if !(v.is_finite() && (0.0..=1.0).contains(v)) {
                    return Err(CoreError::InvalidProbability {
                        context: "constant expression".into(),
                        value: *v,
                    });
                }
            }
            AvailExpr::Param(_) => {}
            AvailExpr::Product(ch) | AvailExpr::Parallel(ch) => {
                if ch.is_empty() {
                    return Err(CoreError::BadDiagram {
                        reason: "empty product/parallel".into(),
                    });
                }
                for c in ch {
                    c.validate()?;
                }
            }
            AvailExpr::KOfN(k, ch) => {
                if ch.is_empty() || *k == 0 || *k > ch.len() {
                    return Err(CoreError::BadDiagram {
                        reason: format!("k-of-n with k = {k} over {} children", ch.len()),
                    });
                }
                for c in ch {
                    c.validate()?;
                }
            }
            AvailExpr::WeightedSum(terms) => {
                if terms.is_empty() {
                    return Err(CoreError::BadWeights {
                        reason: "empty weighted sum".into(),
                    });
                }
                let mut total = 0.0;
                for (w, c) in terms {
                    if !(w.is_finite() && *w >= 0.0) {
                        return Err(CoreError::BadWeights {
                            reason: format!("negative or non-finite weight {w}"),
                        });
                    }
                    total += w;
                    c.validate()?;
                }
                if total > 1.0 + 1e-9 {
                    return Err(CoreError::BadWeights {
                        reason: format!("weights sum to {total} > 1"),
                    });
                }
            }
            AvailExpr::Complement(c) => c.validate()?,
        }
        Ok(())
    }

    /// Generic evaluation over any [`Scalar`] with a parameter-resolution
    /// callback.
    ///
    /// # Errors
    ///
    /// Propagates the resolver's errors (typically
    /// [`CoreError::Undefined`]).
    pub fn eval_with<S: Scalar>(
        &self,
        resolve: &mut dyn FnMut(&str) -> Result<S, CoreError>,
    ) -> Result<S, CoreError> {
        Ok(match self {
            AvailExpr::Const(v) => S::from(*v),
            AvailExpr::Param(name) => resolve(name)?,
            AvailExpr::Product(ch) => {
                let mut acc = S::one();
                for c in ch {
                    acc = acc * c.eval_with(resolve)?;
                }
                acc
            }
            AvailExpr::Parallel(ch) => {
                let mut acc = S::one();
                for c in ch {
                    acc = acc * (S::one() - c.eval_with(resolve)?);
                }
                S::one() - acc
            }
            AvailExpr::KOfN(k, ch) => {
                // dp[j] = P(exactly j of the processed children work).
                let mut dp: Vec<S> = vec![S::zero(); ch.len() + 1];
                dp[0] = S::one();
                for (processed, c) in ch.iter().enumerate() {
                    let p = c.eval_with(resolve)?;
                    for j in (0..=processed).rev() {
                        let w = dp[j];
                        dp[j + 1] = dp[j + 1] + w * p;
                        dp[j] = w * (S::one() - p);
                    }
                }
                let mut acc = S::zero();
                for d in dp.iter().skip(*k) {
                    acc = acc + *d;
                }
                acc
            }
            AvailExpr::WeightedSum(terms) => {
                let mut acc = S::zero();
                for (w, c) in terms {
                    acc = acc + S::from(*w) * c.eval_with(resolve)?;
                }
                acc
            }
            AvailExpr::Complement(c) => S::one() - c.eval_with(resolve)?,
        })
    }

    /// Evaluates over an environment of named values.
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] for parameters missing from `env`.
    pub fn eval(&self, env: &std::collections::HashMap<String, f64>) -> Result<f64, CoreError> {
        self.eval_with(&mut |name| {
            env.get(name)
                .copied()
                .ok_or_else(|| CoreError::Undefined { name: name.into() })
        })
    }

    /// Evaluates the value and the exact partial derivative with respect to
    /// `with_respect_to` via dual numbers.
    ///
    /// Returns `(value, ∂value/∂param)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] for parameters missing from `env`.
    pub fn eval_partial(
        &self,
        env: &std::collections::HashMap<String, f64>,
        with_respect_to: &str,
    ) -> Result<(f64, f64), CoreError> {
        let result: Dual = self.eval_with(&mut |name| {
            let v = env
                .get(name)
                .copied()
                .ok_or_else(|| CoreError::Undefined { name: name.into() })?;
            Ok(if name == with_respect_to {
                Dual::variable(v)
            } else {
                Dual::constant(v)
            })
        })?;
        Ok((result.value(), result.derivative()))
    }
}

impl fmt::Display for AvailExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AvailExpr::Const(v) => write!(f, "{v}"),
            AvailExpr::Param(name) => write!(f, "A({name})"),
            AvailExpr::Product(ch) => {
                write!(f, "(")?;
                for (i, c) in ch.iter().enumerate() {
                    if i > 0 {
                        write!(f, " * ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            AvailExpr::Parallel(ch) => {
                write!(f, "par(")?;
                for (i, c) in ch.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            AvailExpr::KOfN(k, ch) => {
                write!(f, "{k}-of-{}(", ch.len())?;
                for (i, c) in ch.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
            AvailExpr::WeightedSum(terms) => {
                write!(f, "[")?;
                for (i, (w, c)) in terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{w}*{c}")?;
                }
                write!(f, "]")
            }
            AvailExpr::Complement(c) => write!(f, "(1 - {c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(entries: &[(&str, f64)]) -> HashMap<String, f64> {
        entries.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn basic_evaluation() {
        let e = AvailExpr::product(vec![
            AvailExpr::param("a"),
            AvailExpr::parallel(vec![AvailExpr::param("b"), AvailExpr::param("c")]),
        ]);
        let v = e.eval(&env(&[("a", 0.9), ("b", 0.5), ("c", 0.5)])).unwrap();
        assert!((v - 0.9 * 0.75).abs() < 1e-15);
    }

    #[test]
    fn missing_parameter() {
        let e = AvailExpr::param("ghost");
        assert!(matches!(
            e.eval(&HashMap::new()),
            Err(CoreError::Undefined { .. })
        ));
    }

    #[test]
    fn k_of_n_evaluation() {
        let e = AvailExpr::k_of_n(
            2,
            vec![
                AvailExpr::param("a"),
                AvailExpr::param("b"),
                AvailExpr::param("c"),
            ],
        );
        let p = 0.9;
        let v = e.eval(&env(&[("a", p), ("b", p), ("c", p)])).unwrap();
        let expected = 3.0 * p * p * (1.0 - p) + p * p * p;
        assert!((v - expected).abs() < 1e-15);
    }

    #[test]
    fn weighted_sum_mixture() {
        // The Browse-function shape: q23 + A(AS)(q45 + q47 A(DS)).
        let e = AvailExpr::weighted_sum(vec![
            (0.2, AvailExpr::constant(1.0)),
            (
                0.8,
                AvailExpr::product(vec![
                    AvailExpr::param("as"),
                    AvailExpr::weighted_sum(vec![
                        (0.4, AvailExpr::constant(1.0)),
                        (0.6, AvailExpr::param("ds")),
                    ]),
                ]),
            ),
        ]);
        let v = e.eval(&env(&[("as", 0.99), ("ds", 0.98)])).unwrap();
        let expected = 0.2 + 0.8 * 0.99 * (0.4 + 0.6 * 0.98);
        assert!((v - expected).abs() < 1e-15);
    }

    #[test]
    fn complement() {
        let e = AvailExpr::complement(AvailExpr::param("a"));
        assert!((e.eval(&env(&[("a", 0.25)])).unwrap() - 0.75).abs() < 1e-15);
    }

    #[test]
    fn validation_rules() {
        assert!(AvailExpr::constant(1.5).validate().is_err());
        assert!(AvailExpr::product(vec![]).validate().is_err());
        assert!(AvailExpr::k_of_n(3, vec![AvailExpr::param("a")])
            .validate()
            .is_err());
        assert!(
            AvailExpr::weighted_sum(vec![(0.7, AvailExpr::constant(1.0))])
                .validate()
                .is_ok()
        );
        assert!(
            AvailExpr::weighted_sum(vec![(1.3, AvailExpr::constant(1.0))])
                .validate()
                .is_err()
        );
        assert!(
            AvailExpr::weighted_sum(vec![(-0.1, AvailExpr::constant(1.0))])
                .validate()
                .is_err()
        );
        assert!(AvailExpr::weighted_sum(vec![]).validate().is_err());
    }

    #[test]
    fn parameters_collected_sorted_unique() {
        let e = AvailExpr::product(vec![
            AvailExpr::param("z"),
            AvailExpr::param("a"),
            AvailExpr::param("z"),
        ]);
        assert_eq!(e.parameters(), vec!["a".to_string(), "z".to_string()]);
    }

    #[test]
    fn dual_partial_matches_hand_derivative() {
        // A = x * (1 - (1-y)(1-y)), dA/dy = x * 2(1-y).
        let e = AvailExpr::product(vec![
            AvailExpr::param("x"),
            AvailExpr::parallel(vec![AvailExpr::param("y"), AvailExpr::param("y")]),
        ]);
        let (v, d) = e
            .eval_partial(&env(&[("x", 0.9), ("y", 0.8)]), "y")
            .unwrap();
        assert!((v - 0.9 * (1.0 - 0.04)).abs() < 1e-15);
        assert!((d - 0.9 * 2.0 * 0.2).abs() < 1e-15);
    }

    #[test]
    fn dual_partial_of_unused_param_is_zero() {
        let e = AvailExpr::param("a");
        let (_, d) = e
            .eval_partial(&env(&[("a", 0.5), ("b", 0.5)]), "b")
            .unwrap();
        assert_eq!(d, 0.0);
    }

    #[test]
    fn display_round_trips_structure() {
        let e = AvailExpr::product(vec![
            AvailExpr::param("lan"),
            AvailExpr::complement(AvailExpr::param("x")),
        ]);
        let s = e.to_string();
        assert!(s.contains("A(lan)"));
        assert!(s.contains("1 - A(x)"));
    }
}
