//! Graphviz DOT export for interaction diagrams.

use std::fmt::Write as _;

use crate::interaction::InteractionDiagram;

impl InteractionDiagram {
    /// Renders the diagram in Graphviz DOT format: Begin/End as double
    /// circles, stages as boxes labeled with the services they use, edges
    /// labeled with branch probabilities.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_core::InteractionDiagram;
    ///
    /// # fn main() -> Result<(), uavail_core::CoreError> {
    /// let mut d = InteractionDiagram::new();
    /// let s = d.add_stage(vec!["WS"]);
    /// d.connect_begin(s, 1.0)?;
    /// d.connect_end(s, 1.0)?;
    /// let dot = d.to_dot();
    /// assert!(dot.contains("Begin"));
    /// assert!(dot.contains("WS"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph interaction {\n  rankdir=LR;\n");
        out.push_str("  \"Begin\" [shape=doublecircle];\n");
        out.push_str("  \"End\" [shape=doublecircle];\n");
        for (i, services) in self.stage_services().iter().enumerate() {
            let label = if services.is_empty() {
                format!("stage {i}")
            } else {
                services.join(" + ")
            };
            let _ = writeln!(out, "  \"s{i}\" [shape=box, label={label:?}];");
        }
        for (to, p) in self.begin_edge_list() {
            let _ = writeln!(out, "  \"Begin\" -> \"s{to}\" [label=\"{p}\"];");
        }
        for (from, to, p) in self.edge_list() {
            match to {
                Some(to) => {
                    let _ = writeln!(out, "  \"s{from}\" -> \"s{to}\" [label=\"{p}\"];");
                }
                None => {
                    let _ = writeln!(out, "  \"s{from}\" -> \"End\" [label=\"{p}\"];");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::InteractionDiagram;

    #[test]
    fn dot_structure() {
        let mut d = InteractionDiagram::new();
        let ws = d.add_stage(vec!["WS"]);
        let fork = d.add_stage(vec!["Flight", "Hotel"]);
        d.connect_begin(ws, 1.0).unwrap();
        d.connect(ws, fork, 0.7).unwrap();
        d.connect_end(ws, 0.3).unwrap();
        d.connect_end(fork, 1.0).unwrap();
        let dot = d.to_dot();
        assert!(dot.starts_with("digraph interaction {"));
        assert!(dot.contains("\"s1\" [shape=box, label=\"Flight + Hotel\"];"));
        assert!(dot.contains("\"Begin\" -> \"s0\" [label=\"1\"];"));
        assert!(dot.contains("\"s0\" -> \"s1\" [label=\"0.7\"];"));
        assert!(dot.contains("\"s0\" -> \"End\" [label=\"0.3\"];"));
        assert!(dot.contains("\"s1\" -> \"End\" [label=\"1\"];"));
    }
}
