//! Composite performance–availability evaluation (performability).
//!
//! The paper evaluates the web service with Meyer's composite approach
//! (Section 4.1.2): a *pure availability* model yields the steady-state
//! probability `π_i` of each structural state (number of operational
//! servers, down states), and a *pure performance* model yields the
//! per-state probability `p_K(i)` that a request is lost. Under the
//! quasi-steady-state assumption (failure/repair rates ≪ request rates),
//! the user-visible service availability is
//!
//! `A = Σ_i π_i · (1 − loss_i)` — equations (5) and (9).
//!
//! This module provides that combination as a validated operator.

use crate::CoreError;

/// One structural state of the availability model, paired with the
/// conditional service quality delivered in that state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompositeState {
    /// Steady-state probability `π_i` of being in this state.
    pub probability: f64,
    /// Probability that a request is served (not lost) in this state,
    /// i.e. `1 − p_K(i)`; `0.0` for down states.
    pub service_probability: f64,
}

impl CompositeState {
    /// Creates a composite state.
    pub fn new(probability: f64, service_probability: f64) -> Self {
        CompositeState {
            probability,
            service_probability,
        }
    }
}

/// Combines availability-state probabilities with per-state service
/// probabilities into the composite service availability
/// `Σ_i π_i · service_i`.
///
/// # Errors
///
/// * [`CoreError::BadWeights`] when the state probabilities do not form a
///   distribution (negative, or not summing to 1 within a tolerance of
///   `max(1e-6, states.len() × 1e-7)` — roundoff in the underlying
///   steady-state solve grows with the number of states, so the cutoff
///   scales with the model instead of rejecting large valid models).
/// * [`CoreError::InvalidProbability`] when a service probability is
///   outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use uavail_core::composite::{composite_availability, CompositeState};
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// // Two-state farm: 99% of the time 1 server up serving 90% of requests,
/// // 1% of the time down.
/// let a = composite_availability(&[
///     CompositeState::new(0.99, 0.9),
///     CompositeState::new(0.01, 0.0),
/// ])?;
/// assert!((a - 0.891).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn composite_availability(states: &[CompositeState]) -> Result<f64, CoreError> {
    composite_availability_from_iter(states.iter().copied())
}

/// Streaming twin of [`composite_availability`]: consumes the composite
/// states from an iterator instead of a slice, so callers enumerating a
/// large structural state space (e.g. a 10⁵-state sparse farm model) can
/// fold it without materializing a `Vec<CompositeState>`. Runs the exact
/// same accumulation in the same order, so results are bit-for-bit
/// identical to the slice path.
///
/// # Errors
///
/// As for [`composite_availability`].
pub fn composite_availability_from_iter<I>(states: I) -> Result<f64, CoreError>
where
    I: IntoIterator<Item = CompositeState>,
{
    let mut count = 0usize;
    let mut total_probability = 0.0;
    let mut availability = 0.0;
    for (i, s) in states.into_iter().enumerate() {
        if !(s.probability.is_finite() && s.probability >= 0.0) {
            return Err(CoreError::BadWeights {
                reason: format!("state {i} has probability {}", s.probability),
            });
        }
        if !(s.service_probability.is_finite() && (0.0..=1.0).contains(&s.service_probability)) {
            return Err(CoreError::InvalidProbability {
                context: format!("service probability of composite state {i}"),
                value: s.service_probability,
            });
        }
        total_probability += s.probability;
        availability += s.probability * s.service_probability;
        count = i + 1;
    }
    if count == 0 {
        return Err(CoreError::BadWeights {
            reason: "no composite states".into(),
        });
    }
    // Normalization tolerance scales with the state count: each π_i from
    // a numerical steady-state solve carries roundoff of a few ulps, and
    // those errors add across states, so a fixed cutoff that is fine for
    // the paper's ~12-state farm chains spuriously rejects distributions
    // from large generated models. The floor keeps the historical 1e-6
    // for small models — the tolerance is never stricter than before.
    let tolerance = 1e-6_f64.max(count as f64 * 1e-7);
    if (total_probability - 1.0).abs() > tolerance {
        return Err(CoreError::BadWeights {
            reason: format!(
                "state probabilities sum to {total_probability}, expected 1 \
                 (tolerance {tolerance:e} for {count} states)"
            ),
        });
    }
    if uavail_obs::enabled() {
        let drift = (total_probability - 1.0).abs();
        uavail_obs::health_record("core.composite.prob_drift", drift);
        // Headroom left before the model would have been rejected; a
        // shrinking minimum means probability mass is drifting toward
        // the tolerance cliff.
        uavail_obs::health_record("core.composite.tolerance_headroom", tolerance - drift);
    }
    Ok(availability)
}

/// Checks the quasi-steady-state separation assumption behind the
/// composite approach: the fastest failure/recovery rate should be much
/// smaller than the slowest performance rate. Returns the separation ratio
/// `min(performance rates) / max(failure rates)`; the paper's setting has
/// ratios above 10⁵.
///
/// # Errors
///
/// [`CoreError::BadWeights`] when either slice is empty or contains a
/// non-positive rate.
pub fn separation_ratio(
    failure_recovery_rates: &[f64],
    performance_rates: &[f64],
) -> Result<f64, CoreError> {
    if failure_recovery_rates.is_empty() || performance_rates.is_empty() {
        return Err(CoreError::BadWeights {
            reason: "empty rate list".into(),
        });
    }
    for &r in failure_recovery_rates.iter().chain(performance_rates) {
        if !(r.is_finite() && r > 0.0) {
            return Err(CoreError::BadWeights {
                reason: format!("non-positive rate {r}"),
            });
        }
    }
    let max_fail = failure_recovery_rates
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    let min_perf = performance_rates
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    Ok(min_perf / max_fail)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_combination() {
        let a = composite_availability(&[
            CompositeState::new(0.5, 1.0),
            CompositeState::new(0.3, 0.5),
            CompositeState::new(0.2, 0.0),
        ])
        .unwrap();
        assert!((a - 0.65).abs() < 1e-15);
    }

    #[test]
    fn validation() {
        assert!(composite_availability(&[]).is_err());
        assert!(composite_availability(&[CompositeState::new(0.5, 0.5)]).is_err()); // sums to 0.5
        assert!(composite_availability(&[
            CompositeState::new(1.0, 1.5), // bad service prob
        ])
        .is_err());
        assert!(composite_availability(&[
            CompositeState::new(-0.5, 0.5),
            CompositeState::new(1.5, 0.5),
        ])
        .is_err());
    }

    #[test]
    fn perfect_and_zero_states() {
        let a = composite_availability(&[CompositeState::new(1.0, 1.0)]).unwrap();
        assert_eq!(a, 1.0);
    }

    #[test]
    fn tolerance_scales_with_state_count() {
        // 100 states each 1e-9 off: total drift 1e-7 per... scaled up —
        // total 1.0 + 5e-6, outside the fixed 1e-6 cutoff but within the
        // scaled 100 × 1e-7 = 1e-5 budget for a 100-state model.
        let n = 100;
        let drift = 5e-6;
        let mut states: Vec<CompositeState> = (0..n)
            .map(|_| CompositeState::new((1.0 + drift) / n as f64, 1.0))
            .collect();
        assert!(composite_availability(&states).is_ok());
        // The same absolute drift on a 2-state model still fails: the
        // floor keeps the historical 1e-6 for small models.
        states.truncate(2);
        for s in &mut states {
            s.probability = (1.0 + drift) / 2.0;
        }
        assert!(composite_availability(&states).is_err());
    }

    #[test]
    fn separation_ratio_paper_setting() {
        // Failures per hour vs requests per second (expressed per hour).
        let fail = [1e-4, 1.0, 12.0]; // lambda, mu, beta
        let perf = [100.0 * 3600.0, 100.0 * 3600.0]; // alpha, nu per hour
        let ratio = separation_ratio(&fail, &perf).unwrap();
        assert!(ratio > 1e4, "ratio {ratio}");
    }

    #[test]
    fn separation_validation() {
        assert!(separation_ratio(&[], &[1.0]).is_err());
        assert!(separation_ratio(&[1.0], &[]).is_err());
        assert!(separation_ratio(&[0.0], &[1.0]).is_err());
    }
}
