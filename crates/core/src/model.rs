use std::collections::HashMap;
use std::fmt;

use crate::dual::Dual;
use crate::{AvailExpr, CoreError};

/// The four abstraction levels of the framework (Figure 1 of the paper).
///
/// Levels are ordered: `Resource < Service < Function < User`. A
/// definition may reference quantities at its own or any lower level (the
/// paper's function formulas reference the LAN resource directly, skipping
/// the service level), but never a higher one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Hardware/software components and black-box external systems.
    Resource,
    /// Internal and external services (web, application, database,
    /// reservation systems, payment).
    Service,
    /// User-visible functions (Home, Browse, Search, Book, Pay).
    Function,
    /// The user-perceived measure over the operational profile.
    User,
}

impl Level {
    /// All levels, bottom-up.
    pub fn all() -> [Level; 4] {
        [
            Level::Resource,
            Level::Service,
            Level::Function,
            Level::User,
        ]
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Level::Resource => "resource",
            Level::Service => "service",
            Level::Function => "function",
            Level::User => "user",
        };
        f.write_str(s)
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Definition {
    /// A directly supplied availability (a measured or externally solved
    /// quantity — e.g. the output of a Markov model).
    Value(f64),
    /// A derived quantity.
    Expr(AvailExpr),
}

/// A four-level hierarchical availability model (the paper's Figure 1).
///
/// Quantities are defined bottom-up by name; expression definitions may
/// reference previously defined quantities at the same or lower levels.
/// [`HierarchicalModel::evaluate`] computes every quantity;
/// [`HierarchicalModel::sensitivity`] differentiates any quantity with
/// respect to any other exactly, via dual numbers.
///
/// See the [crate documentation](crate) for an example.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalModel {
    names: Vec<String>,
    index: HashMap<String, usize>,
    levels: Vec<Level>,
    defs: Vec<Definition>,
}

impl HierarchicalModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        HierarchicalModel::default()
    }

    /// Number of defined quantities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the model has no definitions.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Names defined at the given level, in definition order.
    pub fn names_at(&self, level: Level) -> Vec<&str> {
        self.names
            .iter()
            .zip(&self.levels)
            .filter(|(_, l)| **l == level)
            .map(|(n, _)| n.as_str())
            .collect()
    }

    fn check_new_name(&self, name: &str) -> Result<(), CoreError> {
        if self.index.contains_key(name) {
            return Err(CoreError::Redefined { name: name.into() });
        }
        Ok(())
    }

    /// Defines a directly supplied availability value.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Redefined`] for duplicate names.
    /// * [`CoreError::InvalidProbability`] for values outside `[0, 1]`.
    pub fn define_value(
        &mut self,
        name: impl Into<String>,
        level: Level,
        value: f64,
    ) -> Result<(), CoreError> {
        let name = name.into();
        self.check_new_name(&name)?;
        if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
            return Err(CoreError::InvalidProbability {
                context: format!("definition of {name:?}"),
                value,
            });
        }
        self.index.insert(name.clone(), self.names.len());
        self.names.push(name);
        self.levels.push(level);
        self.defs.push(Definition::Value(value));
        Ok(())
    }

    /// Defines a derived quantity.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Redefined`] for duplicate names.
    /// * Expression validation errors (see [`AvailExpr::validate`]).
    /// * [`CoreError::Undefined`] when the expression references a name not
    ///   yet defined (definitions are bottom-up, which also rules out
    ///   cycles).
    /// * [`CoreError::BadDependency`] when a referenced quantity lives at a
    ///   higher level than this definition.
    pub fn define_expr(
        &mut self,
        name: impl Into<String>,
        level: Level,
        expr: AvailExpr,
    ) -> Result<(), CoreError> {
        let name = name.into();
        self.check_new_name(&name)?;
        expr.validate()?;
        for dep in expr.parameters() {
            let idx = self
                .index
                .get(&dep)
                .copied()
                .ok_or(CoreError::Undefined { name: dep.clone() })?;
            if self.levels[idx] > level {
                return Err(CoreError::BadDependency {
                    reason: format!(
                        "{name:?} at level {level} references {dep:?} at higher level {}",
                        self.levels[idx]
                    ),
                });
            }
        }
        self.index.insert(name.clone(), self.names.len());
        self.names.push(name);
        self.levels.push(level);
        self.defs.push(Definition::Expr(expr));
        Ok(())
    }

    /// Replaces the value of an existing [`define_value`] quantity —
    /// the primitive behind parameter sweeps.
    ///
    /// # Errors
    ///
    /// * [`CoreError::Undefined`] for unknown names.
    /// * [`CoreError::BadDependency`] when the name is expression-defined.
    /// * [`CoreError::InvalidProbability`] for values outside `[0, 1]`.
    ///
    /// [`define_value`]: HierarchicalModel::define_value
    pub fn set_value(&mut self, name: &str, value: f64) -> Result<(), CoreError> {
        let idx = self
            .index
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::Undefined { name: name.into() })?;
        match &mut self.defs[idx] {
            Definition::Value(v) => {
                if !(value.is_finite() && (0.0..=1.0).contains(&value)) {
                    return Err(CoreError::InvalidProbability {
                        context: format!("set_value of {name:?}"),
                        value,
                    });
                }
                *v = value;
                Ok(())
            }
            Definition::Expr(_) => Err(CoreError::BadDependency {
                reason: format!("{name:?} is expression-defined; redefine the expression"),
            }),
        }
    }

    /// Evaluates every quantity bottom-up.
    ///
    /// # Errors
    ///
    /// Propagates expression-evaluation failures (which cannot occur for a
    /// model built exclusively through the checked `define_*` methods).
    pub fn evaluate(&self) -> Result<Evaluation, CoreError> {
        let mut values: Vec<f64> = Vec::with_capacity(self.defs.len());
        for def in &self.defs {
            let v = match def {
                Definition::Value(v) => *v,
                Definition::Expr(e) => e.eval_with(&mut |name| {
                    let idx = self
                        .index
                        .get(name)
                        .copied()
                        .ok_or_else(|| CoreError::Undefined { name: name.into() })?;
                    Ok(values[idx])
                })?,
            };
            values.push(v);
        }
        Ok(Evaluation {
            names: self.names.clone(),
            index: self.index.clone(),
            levels: self.levels.clone(),
            values,
        })
    }

    /// Exact partial derivative `∂target/∂param`, treating `param` as an
    /// independent input at its current value (its own definition held
    /// fixed).
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] for unknown names.
    pub fn sensitivity(&self, target: &str, param: &str) -> Result<f64, CoreError> {
        let target_idx = self
            .index
            .get(target)
            .copied()
            .ok_or_else(|| CoreError::Undefined {
                name: target.into(),
            })?;
        let param_idx = self
            .index
            .get(param)
            .copied()
            .ok_or_else(|| CoreError::Undefined { name: param.into() })?;
        let mut duals: Vec<Dual> = Vec::with_capacity(self.defs.len());
        for (i, def) in self.defs.iter().enumerate() {
            let mut d = match def {
                Definition::Value(v) => Dual::constant(*v),
                Definition::Expr(e) => e.eval_with(&mut |name| {
                    let idx = self
                        .index
                        .get(name)
                        .copied()
                        .ok_or_else(|| CoreError::Undefined { name: name.into() })?;
                    Ok(duals[idx])
                })?,
            };
            if i == param_idx {
                // Seed: treat this quantity as the differentiation variable.
                d = Dual::new(d.value(), 1.0);
            }
            duals.push(d);
        }
        Ok(duals[target_idx].derivative())
    }

    /// Sensitivities of `target` to every quantity at `level`, ranked by
    /// decreasing absolute derivative — the paper's "most influential
    /// availabilities" analysis, computed exactly.
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] for an unknown target.
    pub fn ranked_sensitivities(
        &self,
        target: &str,
        level: Level,
    ) -> Result<Vec<(String, f64)>, CoreError> {
        let mut out = Vec::new();
        for name in self.names_at(level) {
            let d = self.sensitivity(target, name)?;
            out.push((name.to_string(), d));
        }
        out.sort_by(|a, b| {
            b.1.abs()
                .partial_cmp(&a.1.abs())
                .expect("finite sensitivities")
        });
        Ok(out)
    }
}

/// The result of evaluating a [`HierarchicalModel`]: every quantity's
/// availability, queryable by name or level.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    names: Vec<String>,
    index: HashMap<String, usize>,
    levels: Vec<Level>,
    values: Vec<f64>,
}

impl Evaluation {
    /// The availability of a quantity.
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] for unknown names.
    pub fn value(&self, name: &str) -> Result<f64, CoreError> {
        self.index
            .get(name)
            .map(|&i| self.values[i])
            .ok_or_else(|| CoreError::Undefined { name: name.into() })
    }

    /// All `(name, availability)` pairs at a level, in definition order.
    pub fn at_level(&self, level: Level) -> Vec<(&str, f64)> {
        self.names
            .iter()
            .zip(&self.levels)
            .zip(&self.values)
            .filter(|((_, l), _)| **l == level)
            .map(|((n, _), v)| (n.as_str(), *v))
            .collect()
    }
}

impl fmt::Display for Evaluation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for level in Level::all() {
            let rows = self.at_level(level);
            if rows.is_empty() {
                continue;
            }
            writeln!(f, "[{level} level]")?;
            for (name, v) in rows {
                writeln!(f, "  A({name}) = {v:.9}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_model() -> HierarchicalModel {
        let mut m = HierarchicalModel::new();
        m.define_value("host", Level::Resource, 0.99).unwrap();
        m.define_value("lan", Level::Resource, 0.999).unwrap();
        m.define_expr(
            "web",
            Level::Service,
            AvailExpr::product(vec![AvailExpr::param("host"), AvailExpr::param("lan")]),
        )
        .unwrap();
        m.define_expr("home", Level::Function, AvailExpr::param("web"))
            .unwrap();
        m.define_expr(
            "user",
            Level::User,
            AvailExpr::weighted_sum(vec![(1.0, AvailExpr::param("home"))]),
        )
        .unwrap();
        m
    }

    #[test]
    fn bottom_up_evaluation() {
        let m = small_model();
        let eval = m.evaluate().unwrap();
        let expected = 0.99 * 0.999;
        assert!((eval.value("web").unwrap() - expected).abs() < 1e-15);
        assert!((eval.value("user").unwrap() - expected).abs() < 1e-15);
        assert!(eval.value("nope").is_err());
    }

    #[test]
    fn at_level_grouping() {
        let eval = small_model().evaluate().unwrap();
        assert_eq!(eval.at_level(Level::Resource).len(), 2);
        assert_eq!(eval.at_level(Level::Service).len(), 1);
        assert_eq!(eval.at_level(Level::User).len(), 1);
        let display = eval.to_string();
        assert!(display.contains("[resource level]"));
        assert!(display.contains("A(user)"));
    }

    #[test]
    fn duplicate_and_undefined_rejected() {
        let mut m = small_model();
        assert!(matches!(
            m.define_value("host", Level::Resource, 0.5),
            Err(CoreError::Redefined { .. })
        ));
        assert!(matches!(
            m.define_expr("x", Level::Service, AvailExpr::param("ghost")),
            Err(CoreError::Undefined { .. })
        ));
        assert!(matches!(
            m.define_value("bad", Level::Resource, 1.5),
            Err(CoreError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn level_ordering_enforced() {
        let mut m = small_model();
        // A service referencing a function is upside-down.
        assert!(matches!(
            m.define_expr("svc2", Level::Service, AvailExpr::param("home")),
            Err(CoreError::BadDependency { .. })
        ));
        // Function referencing resources directly is fine (paper does it).
        assert!(m
            .define_expr("fn2", Level::Function, AvailExpr::param("lan"))
            .is_ok());
    }

    #[test]
    fn set_value_sweeps() {
        let mut m = small_model();
        m.set_value("host", 0.5).unwrap();
        let eval = m.evaluate().unwrap();
        assert!((eval.value("user").unwrap() - 0.5 * 0.999).abs() < 1e-15);
        assert!(m.set_value("web", 0.5).is_err()); // expr-defined
        assert!(m.set_value("ghost", 0.5).is_err());
        assert!(m.set_value("host", 2.0).is_err());
    }

    #[test]
    fn sensitivity_chain_rule() {
        let m = small_model();
        // d(user)/d(host) = lan = 0.999.
        let d = m.sensitivity("user", "host").unwrap();
        assert!((d - 0.999).abs() < 1e-15);
        // d(user)/d(web) = 1.
        let d = m.sensitivity("user", "web").unwrap();
        assert!((d - 1.0).abs() < 1e-15);
        // d(user)/d(user) = 1.
        assert_eq!(m.sensitivity("user", "user").unwrap(), 1.0);
        assert!(m.sensitivity("user", "ghost").is_err());
    }

    #[test]
    fn ranked_sensitivities_order() {
        let mut m = HierarchicalModel::new();
        m.define_value("critical", Level::Resource, 0.9).unwrap();
        m.define_value("redundant", Level::Resource, 0.9).unwrap();
        m.define_expr(
            "system",
            Level::User,
            AvailExpr::product(vec![
                AvailExpr::param("critical"),
                AvailExpr::parallel(vec![
                    AvailExpr::param("redundant"),
                    AvailExpr::param("redundant"),
                ]),
            ]),
        )
        .unwrap();
        let ranked = m.ranked_sensitivities("system", Level::Resource).unwrap();
        assert_eq!(ranked[0].0, "critical");
        // d/d(critical) = 1 - 0.01 = 0.99;
        assert!((ranked[0].1 - 0.99).abs() < 1e-12);
        // d/d(redundant) = 0.9 * 2 * (1 - 0.9) = 0.18.
        assert!((ranked[1].1 - 0.18).abs() < 1e-12);
    }

    #[test]
    fn empty_model() {
        let m = HierarchicalModel::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        let eval = m.evaluate().unwrap();
        assert!(eval.at_level(Level::Resource).is_empty());
    }
}
