//! Parameter-sweep and tornado-analysis utilities.
//!
//! Every figure in the paper's evaluation section is a parameter sweep
//! (web-server count, failure rate, arrival rate, number of reservation
//! systems). This module provides small, composable helpers for generating
//! sweep grids and running sensitivity studies over arbitrary models.

use std::panic::{catch_unwind, AssertUnwindSafe};

use uavail_obs::json::JsonValue;

use crate::error::panic_payload_text;
use crate::par::{default_threads, par_map_threads, par_map_threads_capture, par_map_threads_with};
use crate::CoreError;

/// A single point of a sweep: the swept value and the measured output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The measured output.
    pub y: f64,
}

/// Wraps a model error with the sweep point it occurred at, so a failure
/// deep inside a 90-point figure sweep names the offending `x`.
fn at_sweep_point(x: f64, source: CoreError) -> CoreError {
    CoreError::EvalAt {
        context: format!("sweep point x = {x}"),
        source: Box::new(source),
    }
}

/// Wraps a model error with the tornado parameter and value it occurred
/// at.
fn at_tornado_point(name: &str, value: f64, source: CoreError) -> CoreError {
    CoreError::EvalAt {
        context: format!("tornado parameter {name:?} = {value}"),
        source: Box::new(source),
    }
}

/// Runs `f` over the given parameter values, collecting `(x, f(x))`.
///
/// # Errors
///
/// Propagates the first error from `f`, wrapped in [`CoreError::EvalAt`]
/// naming the failing sweep value.
///
/// # Examples
///
/// ```
/// use uavail_core::sweep::sweep;
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// let points = sweep(&[1.0, 2.0, 3.0], |x| Ok(x * x))?;
/// assert_eq!(points[2].y, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn sweep(
    values: &[f64],
    mut f: impl FnMut(f64) -> Result<f64, CoreError>,
) -> Result<Vec<SweepPoint>, CoreError> {
    let _span = uavail_obs::span("core.sweep");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    values
        .iter()
        .map(|&x| {
            let _point = uavail_obs::Stopwatch::start("core.sweep.point_ns");
            match f(x) {
                Ok(y) => Ok(SweepPoint { x, y }),
                Err(e) => Err(at_sweep_point(x, e)),
            }
        })
        .collect()
}

/// Parallel [`sweep`]: evaluates the points on scoped worker threads
/// (one per available core) while producing **bit-for-bit** the same
/// result — same points in the same order on success, and on failure the
/// same [`CoreError::EvalAt`] the serial sweep would have returned (the
/// error at the lowest failing index).
///
/// The closure is `Fn` (not `FnMut`) and `Sync` because it is shared
/// across threads; model evaluations in this workspace are pure, so this
/// is not restrictive in practice.
///
/// # Errors
///
/// Exactly the errors [`sweep`] would produce.
///
/// # Examples
///
/// ```
/// use uavail_core::sweep::{sweep, sweep_parallel};
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// let xs: Vec<f64> = (1..=100).map(f64::from).collect();
/// let f = |x: f64| Ok(1.0 / (1.0 + x));
/// assert_eq!(sweep_parallel(&xs, f)?, sweep(&xs, f)?);
/// # Ok(())
/// # }
/// ```
pub fn sweep_parallel(
    values: &[f64],
    f: impl Fn(f64) -> Result<f64, CoreError> + Sync,
) -> Result<Vec<SweepPoint>, CoreError> {
    sweep_parallel_threads(values, default_threads(), f)
}

/// [`sweep_parallel`] with an explicit worker-thread cap. `threads <= 1`
/// evaluates serially on the calling thread.
///
/// # Errors
///
/// Exactly the errors [`sweep`] would produce.
pub fn sweep_parallel_threads(
    values: &[f64],
    threads: usize,
    f: impl Fn(f64) -> Result<f64, CoreError> + Sync,
) -> Result<Vec<SweepPoint>, CoreError> {
    let _span = uavail_obs::span("core.sweep_parallel");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    par_map_threads(values, threads, |&x| {
        // A flat stopwatch, not a span: worker threads carry no span
        // context, and the histogram keys serial and parallel runs alike.
        let _point = uavail_obs::Stopwatch::start("core.sweep.point_ns");
        match f(x) {
            Ok(y) => Ok(SweepPoint { x, y }),
            Err(e) => Err(at_sweep_point(x, e)),
        }
    })
}

/// [`sweep`] with a caller-owned workspace threaded through every
/// evaluation, so per-point scratch (matrices, distribution buffers) is
/// allocated once and reused across the whole sweep.
///
/// The workspace must only provide reusable storage, never influence the
/// result; with such an `f`, the output is bit-for-bit the output of
/// [`sweep`] with the equivalent workspace-free closure.
///
/// # Errors
///
/// Exactly the errors [`sweep`] would produce.
///
/// # Examples
///
/// ```
/// use uavail_core::sweep::sweep_with;
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// let mut scratch: Vec<f64> = Vec::new();
/// let points = sweep_with(&[1.0, 2.0], &mut scratch, |buf, x| {
///     buf.clear();
///     buf.push(x * x);
///     Ok(buf[0])
/// })?;
/// assert_eq!(points[1].y, 4.0);
/// # Ok(())
/// # }
/// ```
pub fn sweep_with<W>(
    values: &[f64],
    workspace: &mut W,
    mut f: impl FnMut(&mut W, f64) -> Result<f64, CoreError>,
) -> Result<Vec<SweepPoint>, CoreError> {
    let _span = uavail_obs::span("core.sweep");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    values
        .iter()
        .map(|&x| {
            let _point = uavail_obs::Stopwatch::start("core.sweep.point_ns");
            match f(workspace, x) {
                Ok(y) => Ok(SweepPoint { x, y }),
                Err(e) => Err(at_sweep_point(x, e)),
            }
        })
        .collect()
}

/// Parallel [`sweep_with`]: each worker thread builds one private
/// workspace via `make` and reuses it for every point the worker claims.
/// Uses [`default_threads`] workers.
///
/// # Errors
///
/// Exactly the errors [`sweep`] would produce.
pub fn sweep_parallel_with<W>(
    values: &[f64],
    make: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, f64) -> Result<f64, CoreError> + Sync,
) -> Result<Vec<SweepPoint>, CoreError> {
    sweep_parallel_threads_with(values, default_threads(), make, f)
}

/// [`sweep_parallel_with`] with an explicit worker-thread cap.
/// `threads <= 1` evaluates serially on the calling thread with a single
/// workspace.
///
/// # Errors
///
/// Exactly the errors [`sweep`] would produce.
pub fn sweep_parallel_threads_with<W>(
    values: &[f64],
    threads: usize,
    make: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, f64) -> Result<f64, CoreError> + Sync,
) -> Result<Vec<SweepPoint>, CoreError> {
    let _span = uavail_obs::span("core.sweep_parallel");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    par_map_threads_with(values, threads, make, |workspace, &x| {
        // A flat stopwatch, not a span: worker threads carry no span
        // context, and the histogram keys serial and parallel runs alike.
        let _point = uavail_obs::Stopwatch::start("core.sweep.point_ns");
        match f(workspace, x) {
            Ok(y) => Ok(SweepPoint { x, y }),
            Err(e) => Err(at_sweep_point(x, e)),
        }
    })
}

/// Turns one evaluated block into its sweep points, enforcing the block
/// evaluator contract: on `Ok` the evaluator must have appended exactly
/// one output per input, and on `Err` the number of outputs already
/// appended identifies the first failing input, which is named in the
/// wrapped error exactly as [`sweep_with`] would name it.
fn block_points(
    xs: &[f64],
    out: &[f64],
    outcome: Result<(), CoreError>,
) -> Result<Vec<SweepPoint>, CoreError> {
    match outcome {
        Ok(()) => {
            if out.len() != xs.len() {
                return Err(CoreError::BadWeights {
                    reason: format!(
                        "block evaluator produced {} outputs for {} inputs",
                        out.len(),
                        xs.len()
                    ),
                });
            }
            Ok(xs
                .iter()
                .zip(out)
                .map(|(&x, &y)| SweepPoint { x, y })
                .collect())
        }
        Err(e) => {
            // A well-behaved evaluator fails before pushing the failing
            // point's output; clamp in case it errored after the last push.
            let failing = out.len().min(xs.len().saturating_sub(1));
            Err(at_sweep_point(xs[failing], e))
        }
    }
}

/// Validates a batched block size.
fn check_block(block: usize) -> Result<(), CoreError> {
    if block == 0 {
        return Err(CoreError::BadWeights {
            reason: "batched sweep block size must be at least 1".into(),
        });
    }
    Ok(())
}

/// Batched [`sweep_with`]: partitions `values` into contiguous blocks of
/// up to `block` points and hands each *whole block* to the evaluator, so
/// model structures that are invariant across neighboring points (an LU
/// factorization, a CSR sparsity pattern, a state-space enumeration) can
/// be computed once per block instead of once per point.
///
/// The evaluator receives the block slice and an output buffer, and must
/// append exactly one `y` per `x`, in order. On failure it returns the
/// error of the first point it could not evaluate; the number of outputs
/// already appended tells the engine which point that was, so the error is
/// wrapped in the same [`CoreError::EvalAt`] that [`sweep_with`] would
/// produce for that point.
///
/// With an evaluator that computes each output exactly as the scalar
/// closure would, the result is **bit-for-bit** the result of
/// [`sweep_with`]; batching may only change *when* shared structure is
/// built, never the floating-point operations behind each output.
///
/// # Errors
///
/// Exactly the errors [`sweep_with`] would produce, plus
/// [`CoreError::BadWeights`] when `block == 0` or the evaluator breaks the
/// one-output-per-input contract.
///
/// # Examples
///
/// ```
/// use uavail_core::sweep::{sweep_batched, sweep_with};
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
/// let mut ws = ();
/// let batched = sweep_batched(&xs, 2, &mut ws, |_, block, out| {
///     out.extend(block.iter().map(|x| x * x));
///     Ok(())
/// })?;
/// let scalar = sweep_with(&xs, &mut ws, |_, x| Ok(x * x))?;
/// assert_eq!(batched, scalar);
/// # Ok(())
/// # }
/// ```
pub fn sweep_batched<W>(
    values: &[f64],
    block: usize,
    workspace: &mut W,
    mut f: impl FnMut(&mut W, &[f64], &mut Vec<f64>) -> Result<(), CoreError>,
) -> Result<Vec<SweepPoint>, CoreError> {
    check_block(block)?;
    let _span = uavail_obs::span("core.sweep_batched");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    uavail_obs::counter_add("core.sweep.blocks", values.len().div_ceil(block) as u64);
    let mut points = Vec::with_capacity(values.len());
    let mut out = Vec::with_capacity(block);
    for xs in values.chunks(block) {
        // Per-block timing, not per-point: the point of batching is that
        // per-point cost is no longer separable.
        let _block = uavail_obs::Stopwatch::start("core.sweep.block_ns");
        out.clear();
        let outcome = f(workspace, xs, &mut out);
        points.extend(block_points(xs, &out, outcome)?);
    }
    Ok(points)
}

/// Parallel [`sweep_batched`]: blocks are distributed over
/// [`default_threads`] scoped workers, each with a private workspace from
/// `make`, and results are reassembled in input order.
///
/// # Errors
///
/// Exactly the errors [`sweep_batched`] would produce: blocks are claimed
/// in increasing index order and the lowest-index failure wins, which is
/// the first failure the serial batched sweep would have hit.
pub fn sweep_parallel_batched<W>(
    values: &[f64],
    block: usize,
    make: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, &[f64], &mut Vec<f64>) -> Result<(), CoreError> + Sync,
) -> Result<Vec<SweepPoint>, CoreError> {
    sweep_parallel_batched_threads(values, block, default_threads(), make, f)
}

/// [`sweep_parallel_batched`] with an explicit worker-thread cap.
/// `threads <= 1` evaluates serially on the calling thread with a single
/// workspace.
///
/// # Errors
///
/// Exactly the errors [`sweep_batched`] would produce.
pub fn sweep_parallel_batched_threads<W>(
    values: &[f64],
    block: usize,
    threads: usize,
    make: impl Fn() -> W + Sync,
    f: impl Fn(&mut W, &[f64], &mut Vec<f64>) -> Result<(), CoreError> + Sync,
) -> Result<Vec<SweepPoint>, CoreError> {
    check_block(block)?;
    let _span = uavail_obs::span("core.sweep_parallel_batched");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    uavail_obs::counter_add("core.sweep.blocks", values.len().div_ceil(block) as u64);
    let blocks: Vec<&[f64]> = values.chunks(block).collect();
    let per_block = par_map_threads_with(
        &blocks,
        threads,
        || (make(), Vec::with_capacity(block)),
        |(workspace, out), &xs| {
            let _block = uavail_obs::Stopwatch::start("core.sweep.block_ns");
            out.clear();
            let outcome = f(workspace, xs, out);
            block_points(xs, out, outcome)
        },
    )?;
    Ok(per_block.into_iter().flatten().collect())
}

/// One failed point of a resilient sweep: where it failed and why.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepFailure {
    /// Index of the failing value in the swept slice.
    pub index: usize,
    /// The swept parameter value at which evaluation failed.
    pub x: f64,
    /// The failure, already wrapped in [`CoreError::EvalAt`] (or a
    /// [`CoreError::WorkerPanicked`] for a caught panic).
    pub error: CoreError,
}

/// Outcome of a resilient sweep: every point that evaluated successfully
/// plus a typed record of every point that did not.
///
/// Unlike [`sweep`], which aborts at the first failure, the resilient
/// twins degrade gracefully — the paper's own coverage argument applied
/// to the evaluation stack: a fault at one point must not take down the
/// whole study.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SweepReport {
    /// Successfully evaluated points, in input order.
    pub points: Vec<SweepPoint>,
    /// Failed points, in input order.
    pub failures: Vec<SweepFailure>,
}

impl SweepReport {
    /// `true` when every point evaluated successfully.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Serializes the report as one JSON object (schema
    /// `uavail-sweep-report/v1`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema", JsonValue::str("uavail-sweep-report/v1")),
            (
                "points",
                JsonValue::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            JsonValue::object(vec![
                                ("x", JsonValue::Float(p.x)),
                                ("y", JsonValue::Float(p.y)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "failures",
                JsonValue::Array(
                    self.failures
                        .iter()
                        .map(|fail| {
                            JsonValue::object(vec![
                                ("index", JsonValue::UInt(fail.index as u64)),
                                ("x", JsonValue::Float(fail.x)),
                                ("error", fail.error.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a report serialized by [`SweepReport::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed field, unknown schema tag, or
    /// JSON syntax error.
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let value = uavail_obs::json::parse(text)?;
        let schema = value
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("report has no \"schema\" field")?;
        if schema != "uavail-sweep-report/v1" {
            return Err(format!("unknown sweep-report schema {schema:?}"));
        }
        let point_of = |v: &JsonValue, key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("missing numeric field {key:?}"))
        };
        let points = value
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("report has no \"points\" array")?
            .iter()
            .map(|p| {
                Ok(SweepPoint {
                    x: point_of(p, "x")?,
                    y: point_of(p, "y")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let failures = value
            .get("failures")
            .and_then(JsonValue::as_array)
            .ok_or("report has no \"failures\" array")?
            .iter()
            .map(|fail| {
                Ok(SweepFailure {
                    index: fail
                        .get("index")
                        .and_then(JsonValue::as_u64)
                        .ok_or("failure has no integer \"index\"")?
                        as usize,
                    x: point_of(fail, "x")?,
                    error: CoreError::from_json(
                        fail.get("error").ok_or("failure has no \"error\" object")?,
                    )?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(SweepReport { points, failures })
    }
}

/// Evaluates one resilient sweep point: an `Err` from `f` is wrapped with
/// its point context, and a panic inside `f` is caught and converted to
/// [`CoreError::WorkerPanicked`], so the outer map never fails or unwinds.
fn resilient_point(
    index: usize,
    x: f64,
    f: impl FnOnce() -> Result<f64, CoreError>,
) -> Result<f64, CoreError> {
    let _point = uavail_obs::Stopwatch::start("core.sweep.point_ns");
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(y)) => Ok(y),
        Ok(Err(e)) => Err(at_sweep_point(x, e)),
        Err(payload) => Err(CoreError::WorkerPanicked {
            index,
            payload: panic_payload_text(payload.as_ref()),
        }),
    }
}

/// Splits per-point outcomes into a [`SweepReport`] and records the
/// recovery counters shared by every resilient sweep path. The counters
/// are recorded unconditionally (a zero is still a record), so a metrics
/// artifact always shows whether the resilient machinery ran.
fn collect_report(values: &[f64], outcomes: Vec<Result<f64, CoreError>>) -> SweepReport {
    let mut report = SweepReport::default();
    for (index, (&x, outcome)) in values.iter().zip(outcomes).enumerate() {
        match outcome {
            Ok(y) => report.points.push(SweepPoint { x, y }),
            Err(error) => report.failures.push(SweepFailure { index, x, error }),
        }
    }
    uavail_obs::counter_add("core.sweep.resilient.points", report.points.len() as u64);
    uavail_obs::counter_add(
        "core.sweep.resilient.failures",
        report.failures.len() as u64,
    );
    report
}

/// Fault-tolerant [`sweep`]: evaluates every point, recording failures
/// (including caught panics) into a [`SweepReport`] instead of aborting.
///
/// Points that evaluate successfully are bit-for-bit the points [`sweep`]
/// would produce.
pub fn sweep_resilient(
    values: &[f64],
    mut f: impl FnMut(f64) -> Result<f64, CoreError>,
) -> SweepReport {
    let _span = uavail_obs::span("core.sweep_resilient");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    let outcomes = values
        .iter()
        .enumerate()
        .map(|(i, &x)| resilient_point(i, x, || f(x)))
        .collect();
    collect_report(values, outcomes)
}

/// Parallel [`sweep_resilient`] on one worker per available core.
///
/// The report is identical to the serial one: successful points in input
/// order, failures in input order, panics caught per point.
pub fn sweep_parallel_resilient(
    values: &[f64],
    f: impl Fn(f64) -> Result<f64, CoreError> + Sync,
) -> SweepReport {
    sweep_parallel_resilient_threads(values, default_threads(), f)
}

/// [`sweep_parallel_resilient`] with an explicit worker-thread cap.
/// `threads <= 1` evaluates serially on the calling thread.
pub fn sweep_parallel_resilient_threads(
    values: &[f64],
    threads: usize,
    f: impl Fn(f64) -> Result<f64, CoreError> + Sync,
) -> SweepReport {
    let _span = uavail_obs::span("core.sweep_parallel_resilient");
    uavail_obs::counter_add("core.sweep.points", values.len() as u64);
    let indexed: Vec<(usize, f64)> = values.iter().copied().enumerate().collect();
    // The capture map hands back one outcome per point: closure panics are
    // caught by `resilient_point`, and a panic injected at the map layer
    // itself (`core.par.worker_panic`) is captured into that point's slot
    // as a typed `WorkerPanicked` — either way every point is evaluated
    // and the sweep never aborts.
    let outcomes =
        par_map_threads_capture(&indexed, threads, |&(i, x)| resilient_point(i, x, || f(x)));
    collect_report(values, outcomes)
}

/// Logarithmically spaced grid from `start` to `end` (inclusive), the
/// natural axis for failure-rate sweeps like the paper's
/// `λ ∈ {10⁻², 10⁻³, 10⁻⁴}`.
///
/// # Errors
///
/// [`CoreError::BadWeights`] (domain reuse) when endpoints are
/// non-positive or `points < 2`.
pub fn log_grid(start: f64, end: f64, points: usize) -> Result<Vec<f64>, CoreError> {
    if !(start.is_finite() && end.is_finite() && start > 0.0 && end > 0.0) {
        return Err(CoreError::BadWeights {
            reason: format!("log grid endpoints must be positive, got {start}..{end}"),
        });
    }
    if points < 2 {
        return Err(CoreError::BadWeights {
            reason: "log grid needs at least 2 points".into(),
        });
    }
    let (ls, le) = (start.ln(), end.ln());
    Ok((0..points)
        .map(|i| (ls + (le - ls) * i as f64 / (points - 1) as f64).exp())
        .collect())
}

/// Linearly spaced grid from `start` to `end` (inclusive).
///
/// # Errors
///
/// [`CoreError::BadWeights`] when `points < 2` or the endpoints are not
/// finite.
pub fn linear_grid(start: f64, end: f64, points: usize) -> Result<Vec<f64>, CoreError> {
    if !(start.is_finite() && end.is_finite()) {
        return Err(CoreError::BadWeights {
            reason: "linear grid endpoints must be finite".into(),
        });
    }
    if points < 2 {
        return Err(CoreError::BadWeights {
            reason: "linear grid needs at least 2 points".into(),
        });
    }
    Ok((0..points)
        .map(|i| start + (end - start) * i as f64 / (points - 1) as f64)
        .collect())
}

/// One bar of a tornado diagram: how far the output moves when one
/// parameter swings across its plausible range.
#[derive(Debug, Clone, PartialEq)]
pub struct TornadoBar {
    /// Parameter name.
    pub name: String,
    /// Output at the low end of the parameter range.
    pub low_output: f64,
    /// Output at the high end of the parameter range.
    pub high_output: f64,
}

impl TornadoBar {
    /// Total output swing of this bar.
    pub fn swing(&self) -> f64 {
        (self.high_output - self.low_output).abs()
    }
}

/// Builds a tornado diagram: for each `(name, low, high)` parameter range,
/// evaluates `f(name, value)` at both ends while other parameters stay at
/// their baseline (handled inside `f`), and ranks bars by swing.
///
/// # Errors
///
/// Propagates the first error from `f`, wrapped in [`CoreError::EvalAt`]
/// naming the failing parameter and its value.
pub fn tornado(
    ranges: &[(&str, f64, f64)],
    mut f: impl FnMut(&str, f64) -> Result<f64, CoreError>,
) -> Result<Vec<TornadoBar>, CoreError> {
    let _span = uavail_obs::span("core.tornado");
    uavail_obs::counter_add("core.tornado.evaluations", 2 * ranges.len() as u64);
    let mut bars = Vec::with_capacity(ranges.len());
    for &(name, low, high) in ranges {
        bars.push(TornadoBar {
            name: name.to_string(),
            low_output: f(name, low).map_err(|e| at_tornado_point(name, low, e))?,
            high_output: f(name, high).map_err(|e| at_tornado_point(name, high, e))?,
        });
    }
    sort_bars(&mut bars);
    Ok(bars)
}

/// Parallel [`tornado`]: evaluates the `2 × ranges.len()` endpoint
/// evaluations on scoped worker threads, returning exactly the bars (and
/// exactly the errors) the serial [`tornado`] would.
///
/// # Errors
///
/// Exactly the errors [`tornado`] would produce.
pub fn tornado_parallel(
    ranges: &[(&str, f64, f64)],
    f: impl Fn(&str, f64) -> Result<f64, CoreError> + Sync,
) -> Result<Vec<TornadoBar>, CoreError> {
    tornado_parallel_threads(ranges, default_threads(), f)
}

/// [`tornado_parallel`] with an explicit worker-thread cap. `threads <= 1`
/// evaluates serially on the calling thread.
///
/// # Errors
///
/// Exactly the errors [`tornado`] would produce.
pub fn tornado_parallel_threads(
    ranges: &[(&str, f64, f64)],
    threads: usize,
    f: impl Fn(&str, f64) -> Result<f64, CoreError> + Sync,
) -> Result<Vec<TornadoBar>, CoreError> {
    let _span = uavail_obs::span("core.tornado_parallel");
    uavail_obs::counter_add("core.tornado.evaluations", 2 * ranges.len() as u64);
    // Flatten to one evaluation per endpoint, in the order the serial
    // loop performs them (low then high per range), so the lowest-index
    // error of the parallel map is the first error of the serial loop.
    let endpoints: Vec<(&str, f64)> = ranges
        .iter()
        .flat_map(|&(name, low, high)| [(name, low), (name, high)])
        .collect();
    let outputs = par_map_threads(&endpoints, threads, |&(name, value)| {
        f(name, value).map_err(|e| at_tornado_point(name, value, e))
    })?;
    let mut bars: Vec<TornadoBar> = ranges
        .iter()
        .zip(outputs.chunks_exact(2))
        .map(|(&(name, _, _), pair)| TornadoBar {
            name: name.to_string(),
            low_output: pair[0],
            high_output: pair[1],
        })
        .collect();
    sort_bars(&mut bars);
    Ok(bars)
}

/// Ranks bars by swing, largest first — shared by the serial and parallel
/// tornado paths so their outputs stay identical.
fn sort_bars(bars: &mut [TornadoBar]) {
    bars.sort_by(|a, b| {
        b.swing()
            .partial_cmp(&a.swing())
            .expect("finite tornado outputs")
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_collects_points() {
        let pts = sweep(&[0.0, 0.5, 1.0], |x| Ok(1.0 - x)).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], SweepPoint { x: 0.5, y: 0.5 });
    }

    #[test]
    fn sweep_propagates_errors() {
        let result = sweep(&[1.0], |_| {
            Err(CoreError::BadWeights {
                reason: "boom".into(),
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn sweep_error_names_failing_point() {
        let err = sweep(&[1.0, 2.5, 3.0], |x| {
            if x > 2.0 {
                Err(CoreError::BadWeights {
                    reason: "boom".into(),
                })
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("2.5"), "{text}");
        assert!(text.contains("boom"), "{text}");
    }

    #[test]
    fn parallel_sweep_matches_serial_including_errors() {
        let xs: Vec<f64> = (0..200).map(|i| 0.01 + i as f64 * 0.005).collect();
        let f = |x: f64| -> Result<f64, CoreError> {
            if x > 0.9 {
                Err(CoreError::InvalidProbability {
                    context: "test".into(),
                    value: x,
                })
            } else {
                Ok((1.0 - x).powi(3) / (1.0 + x))
            }
        };
        let serial_err = sweep(&xs[..180], f).unwrap_err();
        for threads in [1, 2, 7] {
            let ok_serial = sweep(&xs[..170], f).unwrap();
            let ok_parallel = sweep_parallel_threads(&xs[..170], threads, f).unwrap();
            assert_eq!(ok_serial, ok_parallel, "threads={threads}");
            let parallel_err = sweep_parallel_threads(&xs[..180], threads, f).unwrap_err();
            assert_eq!(serial_err, parallel_err, "threads={threads}");
        }
    }

    #[test]
    fn workspace_sweeps_match_plain_sweeps_bit_for_bit() {
        let xs: Vec<f64> = (0..150).map(|i| 0.01 + i as f64 * 0.006).collect();
        let plain = |x: f64| -> Result<f64, CoreError> { Ok((1.0 - x).powi(3) / (1.0 + x)) };
        let with_ws = |buf: &mut Vec<f64>, x: f64| -> Result<f64, CoreError> {
            buf.clear();
            buf.push((1.0 - x).powi(3));
            Ok(buf[0] / (1.0 + x))
        };
        let serial = sweep(&xs, plain).unwrap();
        let mut ws = Vec::new();
        assert_eq!(serial, sweep_with(&xs, &mut ws, with_ws).unwrap());
        for threads in [1, 2, 7] {
            assert_eq!(
                serial,
                sweep_parallel_threads_with(&xs, threads, Vec::new, with_ws).unwrap(),
                "threads={threads}"
            );
        }
        assert_eq!(serial, sweep_parallel_with(&xs, Vec::new, with_ws).unwrap());
    }

    #[test]
    fn workspace_sweep_error_names_failing_point() {
        let mut ws = 0u8;
        let err = sweep_with(&[1.0, 2.5], &mut ws, |_, x| {
            Err(CoreError::BadWeights {
                reason: format!("boom at {x}"),
            })
        })
        .unwrap_err();
        assert!(err.to_string().contains("x = 1"), "{err}");
    }

    /// Block evaluator used by the batched tests: same math as `scalar`,
    /// failing on any `x > limit` exactly where the scalar closure would.
    fn block_eval(limit: f64) -> impl Fn(&mut (), &[f64], &mut Vec<f64>) -> Result<(), CoreError> {
        move |_, xs: &[f64], out: &mut Vec<f64>| {
            for &x in xs {
                if x > limit {
                    return Err(CoreError::InvalidProbability {
                        context: "batched test".into(),
                        value: x,
                    });
                }
                out.push((1.0 - x).powi(3) / (1.0 + x));
            }
            Ok(())
        }
    }

    fn scalar(limit: f64) -> impl Fn(&mut (), f64) -> Result<f64, CoreError> {
        move |_, x| {
            if x > limit {
                Err(CoreError::InvalidProbability {
                    context: "batched test".into(),
                    value: x,
                })
            } else {
                Ok((1.0 - x).powi(3) / (1.0 + x))
            }
        }
    }

    #[test]
    fn batched_sweep_matches_scalar_for_every_block_size() {
        let xs: Vec<f64> = (0..97).map(|i| 0.001 + i as f64 * 0.0072).collect();
        let mut ws = ();
        let serial = sweep_with(&xs, &mut ws, scalar(f64::INFINITY)).unwrap();
        for block in [1, 2, 3, 7, 10, 96, 97, 500] {
            let batched = sweep_batched(&xs, block, &mut ws, block_eval(f64::INFINITY)).unwrap();
            assert_eq!(serial.len(), batched.len(), "block={block}");
            for (a, b) in serial.iter().zip(&batched) {
                assert_eq!(a.x.to_bits(), b.x.to_bits(), "block={block}");
                assert_eq!(a.y.to_bits(), b.y.to_bits(), "block={block}");
            }
            for threads in [1, 2, 7] {
                let parallel = sweep_parallel_batched_threads(
                    &xs,
                    block,
                    threads,
                    || (),
                    block_eval(f64::INFINITY),
                )
                .unwrap();
                assert_eq!(serial, parallel, "block={block} threads={threads}");
            }
        }
        assert_eq!(
            serial,
            sweep_parallel_batched(&xs, 8, || (), block_eval(f64::INFINITY)).unwrap()
        );
    }

    #[test]
    fn batched_sweep_error_matches_scalar_error() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.01).collect();
        let mut ws = ();
        let serial_err = sweep_with(&xs, &mut ws, scalar(0.3)).unwrap_err();
        for block in [1, 4, 13, 50] {
            let batched_err = sweep_batched(&xs, block, &mut ws, block_eval(0.3)).unwrap_err();
            assert_eq!(serial_err, batched_err, "block={block}");
            for threads in [1, 3] {
                let parallel_err =
                    sweep_parallel_batched_threads(&xs, block, threads, || (), block_eval(0.3))
                        .unwrap_err();
                assert_eq!(serial_err, parallel_err, "block={block} threads={threads}");
            }
        }
    }

    #[test]
    fn batched_sweep_rejects_zero_block_and_contract_violations() {
        let xs = [1.0, 2.0];
        let mut ws = ();
        assert!(sweep_batched(&xs, 0, &mut ws, |_, _, _| Ok(())).is_err());
        assert!(sweep_parallel_batched_threads(&xs, 0, 2, || (), |_, _, _| Ok(())).is_err());
        // An evaluator that under- or over-produces is a typed error, not
        // a silent misalignment of xs and ys.
        let short = sweep_batched(&xs, 2, &mut ws, |_, _, out: &mut Vec<f64>| {
            out.push(1.0);
            Ok(())
        })
        .unwrap_err();
        assert!(
            short.to_string().contains("1 outputs for 2 inputs"),
            "{short}"
        );
        let long = sweep_batched(&xs, 2, &mut ws, |_, _, out: &mut Vec<f64>| {
            out.extend_from_slice(&[1.0, 2.0, 3.0]);
            Ok(())
        });
        assert!(long.is_err());
    }

    #[test]
    fn batched_sweep_on_empty_grid_is_empty() {
        let mut ws = ();
        assert!(sweep_batched(&[], 4, &mut ws, block_eval(1.0))
            .unwrap()
            .is_empty());
        assert!(
            sweep_parallel_batched_threads(&[], 4, 3, || (), block_eval(1.0))
                .unwrap()
                .is_empty()
        );
    }

    #[test]
    fn tornado_error_names_failing_parameter() {
        let err = tornado(&[("ok", 0.0, 1.0), ("bad", 0.0, 2.0)], |_, v| {
            if v > 1.5 {
                Err(CoreError::BadWeights {
                    reason: "out of range".into(),
                })
            } else {
                Ok(v)
            }
        })
        .unwrap_err();
        let text = err.to_string();
        assert!(text.contains("\"bad\""), "{text}");
        assert!(text.contains('2'), "{text}");
    }

    #[test]
    fn parallel_tornado_matches_serial_including_errors() {
        let ranges: Vec<(&str, f64, f64)> = vec![
            ("a", 0.0, 1.0),
            ("b", -1.0, 1.0),
            ("c", 0.2, 0.3),
            ("d", 0.0, 5.0),
        ];
        let f = |name: &str, v: f64| -> Result<f64, CoreError> {
            if name == "d" && v > 4.0 {
                Err(CoreError::Undefined { name: name.into() })
            } else {
                Ok(v * v + name.len() as f64)
            }
        };
        let serial_ok = tornado(&ranges[..3], f).unwrap();
        let serial_err = tornado(&ranges, f).unwrap_err();
        for threads in [1, 2, 8] {
            assert_eq!(
                serial_ok,
                tornado_parallel_threads(&ranges[..3], threads, f).unwrap()
            );
            assert_eq!(
                serial_err,
                tornado_parallel_threads(&ranges, threads, f).unwrap_err()
            );
        }
    }

    #[test]
    fn resilient_sweep_keeps_partial_results_and_typed_failures() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let f = |x: f64| -> Result<f64, CoreError> {
            if (x as usize) % 25 == 7 {
                Err(CoreError::BadWeights {
                    reason: format!("bad at {x}"),
                })
            } else {
                Ok(x * 2.0)
            }
        };
        let serial = sweep_resilient(&xs, f);
        assert_eq!(serial.points.len(), 96);
        assert_eq!(serial.failures.len(), 4);
        assert!(!serial.is_complete());
        assert_eq!(serial.failures[0].index, 7);
        assert_eq!(serial.failures[1].x, 32.0);
        assert!(matches!(serial.failures[0].error, CoreError::EvalAt { .. }));
        for threads in [1, 2, 8] {
            assert_eq!(
                serial,
                sweep_parallel_resilient_threads(&xs, threads, f),
                "threads={threads}"
            );
        }
        assert_eq!(serial, sweep_parallel_resilient(&xs, f));
    }

    #[test]
    fn resilient_sweep_catches_panics_without_aborting() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let f = |x: f64| -> Result<f64, CoreError> {
            if x as usize == 41 {
                panic!("model blew up at {x}");
            }
            Ok(1.0 / (1.0 + x))
        };
        for threads in [1, 4] {
            let report = sweep_parallel_resilient_threads(&xs, threads, f);
            assert_eq!(report.points.len(), 59, "threads={threads}");
            assert_eq!(report.failures.len(), 1);
            assert_eq!(
                report.failures[0].error,
                CoreError::WorkerPanicked {
                    index: 41,
                    payload: "model blew up at 41".into()
                }
            );
        }
    }

    #[test]
    fn resilient_success_points_match_plain_sweep_bit_for_bit() {
        let xs: Vec<f64> = (0..90).map(|i| 0.01 + i as f64 * 0.01).collect();
        let f = |x: f64| -> Result<f64, CoreError> { Ok((1.0 - x).powi(3) / (1.0 + x)) };
        let plain = sweep(&xs, f).unwrap();
        let report = sweep_parallel_resilient(&xs, f);
        assert!(report.is_complete());
        assert_eq!(plain.len(), report.points.len());
        for (a, b) in plain.iter().zip(&report.points) {
            assert_eq!(a.y.to_bits(), b.y.to_bits());
        }
    }

    #[test]
    fn sweep_report_round_trips_through_json() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64 * 0.1).collect();
        let report = sweep_resilient(&xs, |x| {
            if x > 1.5 {
                Err(CoreError::InvalidProbability {
                    context: "demo".into(),
                    value: x,
                })
            } else {
                Ok(x.exp())
            }
        });
        assert!(!report.is_complete());
        let text = report.to_json().to_string();
        let back = SweepReport::from_json_str(&text).unwrap();
        assert_eq!(report, back);
        assert!(SweepReport::from_json_str("{\"schema\":\"nope\"}").is_err());
        assert!(SweepReport::from_json_str("not json").is_err());
    }

    #[test]
    fn log_grid_endpoints_and_spacing() {
        let g = log_grid(1e-4, 1e-2, 3).unwrap();
        assert!((g[0] - 1e-4).abs() < 1e-18);
        assert!((g[1] - 1e-3).abs() < 1e-12);
        assert!((g[2] - 1e-2).abs() < 1e-12);
        assert!(log_grid(0.0, 1.0, 3).is_err());
        assert!(log_grid(1.0, 2.0, 1).is_err());
    }

    #[test]
    fn linear_grid_endpoints() {
        let g = linear_grid(0.0, 10.0, 5).unwrap();
        assert_eq!(g, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        assert!(linear_grid(f64::NAN, 1.0, 2).is_err());
        assert!(linear_grid(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn tornado_ranks_by_swing() {
        // Output = value for "big", value/10 for "small".
        let bars = tornado(&[("small", 0.0, 1.0), ("big", 0.0, 1.0)], |name, v| {
            Ok(if name == "big" { v } else { v / 10.0 })
        })
        .unwrap();
        assert_eq!(bars[0].name, "big");
        assert!((bars[0].swing() - 1.0).abs() < 1e-15);
        assert!((bars[1].swing() - 0.1).abs() < 1e-15);
    }
}
