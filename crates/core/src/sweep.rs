//! Parameter-sweep and tornado-analysis utilities.
//!
//! Every figure in the paper's evaluation section is a parameter sweep
//! (web-server count, failure rate, arrival rate, number of reservation
//! systems). This module provides small, composable helpers for generating
//! sweep grids and running sensitivity studies over arbitrary models.

use crate::CoreError;

/// A single point of a sweep: the swept value and the measured output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The swept parameter value.
    pub x: f64,
    /// The measured output.
    pub y: f64,
}

/// Runs `f` over the given parameter values, collecting `(x, f(x))`.
///
/// # Errors
///
/// Propagates the first error from `f`.
///
/// # Examples
///
/// ```
/// use uavail_core::sweep::sweep;
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// let points = sweep(&[1.0, 2.0, 3.0], |x| Ok(x * x))?;
/// assert_eq!(points[2].y, 9.0);
/// # Ok(())
/// # }
/// ```
pub fn sweep(
    values: &[f64],
    mut f: impl FnMut(f64) -> Result<f64, CoreError>,
) -> Result<Vec<SweepPoint>, CoreError> {
    values
        .iter()
        .map(|&x| Ok(SweepPoint { x, y: f(x)? }))
        .collect()
}

/// Logarithmically spaced grid from `start` to `end` (inclusive), the
/// natural axis for failure-rate sweeps like the paper's
/// `λ ∈ {10⁻², 10⁻³, 10⁻⁴}`.
///
/// # Errors
///
/// [`CoreError::BadWeights`] (domain reuse) when endpoints are
/// non-positive or `points < 2`.
pub fn log_grid(start: f64, end: f64, points: usize) -> Result<Vec<f64>, CoreError> {
    if !(start.is_finite() && end.is_finite() && start > 0.0 && end > 0.0) {
        return Err(CoreError::BadWeights {
            reason: format!("log grid endpoints must be positive, got {start}..{end}"),
        });
    }
    if points < 2 {
        return Err(CoreError::BadWeights {
            reason: "log grid needs at least 2 points".into(),
        });
    }
    let (ls, le) = (start.ln(), end.ln());
    Ok((0..points)
        .map(|i| (ls + (le - ls) * i as f64 / (points - 1) as f64).exp())
        .collect())
}

/// Linearly spaced grid from `start` to `end` (inclusive).
///
/// # Errors
///
/// [`CoreError::BadWeights`] when `points < 2` or the endpoints are not
/// finite.
pub fn linear_grid(start: f64, end: f64, points: usize) -> Result<Vec<f64>, CoreError> {
    if !(start.is_finite() && end.is_finite()) {
        return Err(CoreError::BadWeights {
            reason: "linear grid endpoints must be finite".into(),
        });
    }
    if points < 2 {
        return Err(CoreError::BadWeights {
            reason: "linear grid needs at least 2 points".into(),
        });
    }
    Ok((0..points)
        .map(|i| start + (end - start) * i as f64 / (points - 1) as f64)
        .collect())
}

/// One bar of a tornado diagram: how far the output moves when one
/// parameter swings across its plausible range.
#[derive(Debug, Clone, PartialEq)]
pub struct TornadoBar {
    /// Parameter name.
    pub name: String,
    /// Output at the low end of the parameter range.
    pub low_output: f64,
    /// Output at the high end of the parameter range.
    pub high_output: f64,
}

impl TornadoBar {
    /// Total output swing of this bar.
    pub fn swing(&self) -> f64 {
        (self.high_output - self.low_output).abs()
    }
}

/// Builds a tornado diagram: for each `(name, low, high)` parameter range,
/// evaluates `f(name, value)` at both ends while other parameters stay at
/// their baseline (handled inside `f`), and ranks bars by swing.
///
/// # Errors
///
/// Propagates the first error from `f`.
pub fn tornado(
    ranges: &[(&str, f64, f64)],
    mut f: impl FnMut(&str, f64) -> Result<f64, CoreError>,
) -> Result<Vec<TornadoBar>, CoreError> {
    let mut bars = Vec::with_capacity(ranges.len());
    for &(name, low, high) in ranges {
        bars.push(TornadoBar {
            name: name.to_string(),
            low_output: f(name, low)?,
            high_output: f(name, high)?,
        });
    }
    bars.sort_by(|a, b| {
        b.swing()
            .partial_cmp(&a.swing())
            .expect("finite tornado outputs")
    });
    Ok(bars)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_collects_points() {
        let pts = sweep(&[0.0, 0.5, 1.0], |x| Ok(1.0 - x)).unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[1], SweepPoint { x: 0.5, y: 0.5 });
    }

    #[test]
    fn sweep_propagates_errors() {
        let result = sweep(&[1.0], |_| {
            Err(CoreError::BadWeights {
                reason: "boom".into(),
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn log_grid_endpoints_and_spacing() {
        let g = log_grid(1e-4, 1e-2, 3).unwrap();
        assert!((g[0] - 1e-4).abs() < 1e-18);
        assert!((g[1] - 1e-3).abs() < 1e-12);
        assert!((g[2] - 1e-2).abs() < 1e-12);
        assert!(log_grid(0.0, 1.0, 3).is_err());
        assert!(log_grid(1.0, 2.0, 1).is_err());
    }

    #[test]
    fn linear_grid_endpoints() {
        let g = linear_grid(0.0, 10.0, 5).unwrap();
        assert_eq!(g, vec![0.0, 2.5, 5.0, 7.5, 10.0]);
        assert!(linear_grid(f64::NAN, 1.0, 2).is_err());
        assert!(linear_grid(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn tornado_ranks_by_swing() {
        // Output = value for "big", value/10 for "small".
        let bars = tornado(&[("small", 0.0, 1.0), ("big", 0.0, 1.0)], |name, v| {
            Ok(if name == "big" { v } else { v / 10.0 })
        })
        .unwrap();
        assert_eq!(bars[0].name, "big");
        assert!((bars[0].swing() - 1.0).abs() < 1e-15);
        assert!((bars[1].swing() - 0.1).abs() < 1e-15);
    }
}
