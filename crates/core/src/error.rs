use std::fmt;

/// Errors produced by the hierarchical modeling framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A referenced quantity is not defined in the model.
    Undefined {
        /// The missing name.
        name: String,
    },
    /// A quantity was defined twice.
    Redefined {
        /// The duplicated name.
        name: String,
    },
    /// A value is not a probability (outside `[0, 1]` or non-finite).
    InvalidProbability {
        /// Where the value appeared.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// Definitions form a reference cycle, or a definition references a
    /// quantity at the same or a higher level.
    BadDependency {
        /// Explanation.
        reason: String,
    },
    /// An interaction diagram is structurally invalid (unreachable End,
    /// cyclic, dangling branch probabilities).
    BadDiagram {
        /// Explanation.
        reason: String,
    },
    /// A weighted sum's weights are invalid (negative, or not summing to
    /// at most one).
    BadWeights {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Undefined { name } => write!(f, "undefined quantity {name:?}"),
            CoreError::Redefined { name } => write!(f, "quantity {name:?} defined twice"),
            CoreError::InvalidProbability { context, value } => {
                write!(f, "invalid probability {value} in {context}")
            }
            CoreError::BadDependency { reason } => write!(f, "bad dependency: {reason}"),
            CoreError::BadDiagram { reason } => write!(f, "bad interaction diagram: {reason}"),
            CoreError::BadWeights { reason } => write!(f, "bad weights: {reason}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::Undefined { name: "x".into() }.to_string().contains('x'));
        assert!(CoreError::BadDiagram {
            reason: "cycle".into()
        }
        .to_string()
        .contains("cycle"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
