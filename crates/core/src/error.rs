use std::fmt;

/// Errors produced by the hierarchical modeling framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A referenced quantity is not defined in the model.
    Undefined {
        /// The missing name.
        name: String,
    },
    /// A quantity was defined twice.
    Redefined {
        /// The duplicated name.
        name: String,
    },
    /// A value is not a probability (outside `[0, 1]` or non-finite).
    InvalidProbability {
        /// Where the value appeared.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// Definitions form a reference cycle, or a definition references a
    /// quantity at the same or a higher level.
    BadDependency {
        /// Explanation.
        reason: String,
    },
    /// An interaction diagram is structurally invalid (unreachable End,
    /// cyclic, dangling branch probabilities).
    BadDiagram {
        /// Explanation.
        reason: String,
    },
    /// A weighted sum's weights are invalid (negative, or not summing to
    /// at most one).
    BadWeights {
        /// Explanation.
        reason: String,
    },
    /// A sweep or tornado evaluation failed at a specific point. Wraps the
    /// underlying error with enough context (the swept value, or the
    /// tornado parameter and its value) to identify the failing point.
    EvalAt {
        /// Human-readable description of the failing point, e.g.
        /// `x = 0.001` or `parameter "nu" = 0.25`.
        context: String,
        /// The underlying error.
        source: Box<CoreError>,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Undefined { name } => write!(f, "undefined quantity {name:?}"),
            CoreError::Redefined { name } => write!(f, "quantity {name:?} defined twice"),
            CoreError::InvalidProbability { context, value } => {
                write!(f, "invalid probability {value} in {context}")
            }
            CoreError::BadDependency { reason } => write!(f, "bad dependency: {reason}"),
            CoreError::BadDiagram { reason } => write!(f, "bad interaction diagram: {reason}"),
            CoreError::BadWeights { reason } => write!(f, "bad weights: {reason}"),
            CoreError::EvalAt { context, source } => {
                write!(f, "evaluating {context}: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::EvalAt { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::Undefined { name: "x".into() }
            .to_string()
            .contains('x'));
        assert!(CoreError::BadDiagram {
            reason: "cycle".into()
        }
        .to_string()
        .contains("cycle"));
    }

    #[test]
    fn eval_at_carries_point_context_and_source() {
        let inner = CoreError::BadWeights {
            reason: "boom".into(),
        };
        let wrapped = CoreError::EvalAt {
            context: "x = 2".into(),
            source: Box::new(inner.clone()),
        };
        let text = wrapped.to_string();
        assert!(text.contains("x = 2"), "{text}");
        assert!(text.contains("boom"), "{text}");
        use std::error::Error;
        assert_eq!(wrapped.source().unwrap().to_string(), inner.to_string());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
