use std::fmt;

use uavail_obs::json::JsonValue;

/// Errors produced by the hierarchical modeling framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A referenced quantity is not defined in the model.
    Undefined {
        /// The missing name.
        name: String,
    },
    /// A quantity was defined twice.
    Redefined {
        /// The duplicated name.
        name: String,
    },
    /// A value is not a probability (outside `[0, 1]` or non-finite).
    InvalidProbability {
        /// Where the value appeared.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// Definitions form a reference cycle, or a definition references a
    /// quantity at the same or a higher level.
    BadDependency {
        /// Explanation.
        reason: String,
    },
    /// An interaction diagram is structurally invalid (unreachable End,
    /// cyclic, dangling branch probabilities).
    BadDiagram {
        /// Explanation.
        reason: String,
    },
    /// A weighted sum's weights are invalid (negative, or not summing to
    /// at most one).
    BadWeights {
        /// Explanation.
        reason: String,
    },
    /// A sweep or tornado evaluation failed at a specific point. Wraps the
    /// underlying error with enough context (the swept value, or the
    /// tornado parameter and its value) to identify the failing point.
    EvalAt {
        /// Human-readable description of the failing point, e.g.
        /// `x = 0.001` or `parameter "nu" = 0.25`.
        context: String,
        /// The underlying error.
        source: Box<CoreError>,
    },
    /// A worker closure panicked during a parallel (or panic-isolated
    /// serial) evaluation. The panic was caught at the item boundary and
    /// converted into this typed error, preserving the input index so
    /// first-error semantics stay deterministic.
    WorkerPanicked {
        /// Index of the input item whose evaluation panicked.
        index: usize,
        /// The panic payload rendered as text (`&str`/`String` payloads
        /// verbatim; anything else as a placeholder).
        payload: String,
    },
}

/// Conversion from a caught worker panic into a typed error.
///
/// The parallel map and its callers are generic over the error type, so
/// panic isolation needs a way to build an `E` out of a caught payload.
/// Every error type flowing through [`crate::par::par_map`] or the sweep
/// engine implements this; domain crates implement it for their own error
/// enums (usually by wrapping [`CoreError::WorkerPanicked`] or adding an
/// equivalent variant).
pub trait FromWorkerPanic {
    /// Builds the error representing a panic at input `index` with the
    /// stringified panic `payload`.
    fn from_worker_panic(index: usize, payload: String) -> Self;
}

impl FromWorkerPanic for CoreError {
    fn from_worker_panic(index: usize, payload: String) -> Self {
        CoreError::WorkerPanicked { index, payload }
    }
}

/// Renders a caught panic payload (`Box<dyn Any>`) as text.
pub fn panic_payload_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Encodes an `f64` so every value — including the non-finite ones the
/// strict artifact JSON cannot carry as numbers — survives a round trip.
fn f64_to_json(value: f64) -> JsonValue {
    if value.is_finite() {
        JsonValue::Float(value)
    } else if value.is_nan() {
        JsonValue::str("NaN")
    } else if value > 0.0 {
        JsonValue::str("inf")
    } else {
        JsonValue::str("-inf")
    }
}

fn f64_from_json(value: &JsonValue) -> Result<f64, String> {
    match value {
        JsonValue::Str(s) => match s.as_str() {
            "NaN" => Ok(f64::NAN),
            "inf" => Ok(f64::INFINITY),
            "-inf" => Ok(f64::NEG_INFINITY),
            other => Err(format!("unknown f64 encoding {other:?}")),
        },
        other => other.as_f64().ok_or_else(|| "expected a number".into()),
    }
}

fn str_field(value: &JsonValue, key: &str) -> Result<String, String> {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

impl CoreError {
    /// Serializes this error as a tagged JSON object, the form used inside
    /// [`crate::sweep::SweepReport`] artifacts.
    pub fn to_json(&self) -> JsonValue {
        match self {
            CoreError::Undefined { name } => JsonValue::object(vec![
                ("kind", JsonValue::str("undefined")),
                ("name", JsonValue::str(name.clone())),
            ]),
            CoreError::Redefined { name } => JsonValue::object(vec![
                ("kind", JsonValue::str("redefined")),
                ("name", JsonValue::str(name.clone())),
            ]),
            CoreError::InvalidProbability { context, value } => JsonValue::object(vec![
                ("kind", JsonValue::str("invalid_probability")),
                ("context", JsonValue::str(context.clone())),
                ("value", f64_to_json(*value)),
            ]),
            CoreError::BadDependency { reason } => JsonValue::object(vec![
                ("kind", JsonValue::str("bad_dependency")),
                ("reason", JsonValue::str(reason.clone())),
            ]),
            CoreError::BadDiagram { reason } => JsonValue::object(vec![
                ("kind", JsonValue::str("bad_diagram")),
                ("reason", JsonValue::str(reason.clone())),
            ]),
            CoreError::BadWeights { reason } => JsonValue::object(vec![
                ("kind", JsonValue::str("bad_weights")),
                ("reason", JsonValue::str(reason.clone())),
            ]),
            CoreError::EvalAt { context, source } => JsonValue::object(vec![
                ("kind", JsonValue::str("eval_at")),
                ("context", JsonValue::str(context.clone())),
                ("source", source.to_json()),
            ]),
            CoreError::WorkerPanicked { index, payload } => JsonValue::object(vec![
                ("kind", JsonValue::str("worker_panicked")),
                ("index", JsonValue::UInt(*index as u64)),
                ("payload", JsonValue::str(payload.clone())),
            ]),
        }
    }

    /// Decodes an error previously produced by [`CoreError::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the first malformed or missing field.
    pub fn from_json(value: &JsonValue) -> Result<Self, String> {
        let kind = value
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| "error object has no \"kind\" tag".to_string())?;
        match kind {
            "undefined" => Ok(CoreError::Undefined {
                name: str_field(value, "name")?,
            }),
            "redefined" => Ok(CoreError::Redefined {
                name: str_field(value, "name")?,
            }),
            "invalid_probability" => Ok(CoreError::InvalidProbability {
                context: str_field(value, "context")?,
                value: f64_from_json(value.get("value").ok_or("missing field \"value\"")?)?,
            }),
            "bad_dependency" => Ok(CoreError::BadDependency {
                reason: str_field(value, "reason")?,
            }),
            "bad_diagram" => Ok(CoreError::BadDiagram {
                reason: str_field(value, "reason")?,
            }),
            "bad_weights" => Ok(CoreError::BadWeights {
                reason: str_field(value, "reason")?,
            }),
            "eval_at" => Ok(CoreError::EvalAt {
                context: str_field(value, "context")?,
                source: Box::new(CoreError::from_json(
                    value.get("source").ok_or("missing field \"source\"")?,
                )?),
            }),
            "worker_panicked" => Ok(CoreError::WorkerPanicked {
                index: value
                    .get("index")
                    .and_then(JsonValue::as_u64)
                    .ok_or("missing integer field \"index\"")? as usize,
                payload: str_field(value, "payload")?,
            }),
            other => Err(format!("unknown error kind {other:?}")),
        }
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Undefined { name } => write!(f, "undefined quantity {name:?}"),
            CoreError::Redefined { name } => write!(f, "quantity {name:?} defined twice"),
            CoreError::InvalidProbability { context, value } => {
                write!(f, "invalid probability {value} in {context}")
            }
            CoreError::BadDependency { reason } => write!(f, "bad dependency: {reason}"),
            CoreError::BadDiagram { reason } => write!(f, "bad interaction diagram: {reason}"),
            CoreError::BadWeights { reason } => write!(f, "bad weights: {reason}"),
            CoreError::EvalAt { context, source } => {
                write!(f, "evaluating {context}: {source}")
            }
            CoreError::WorkerPanicked { index, payload } => {
                write!(f, "worker panicked at input index {index}: {payload}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::EvalAt { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(CoreError::Undefined { name: "x".into() }
            .to_string()
            .contains('x'));
        assert!(CoreError::BadDiagram {
            reason: "cycle".into()
        }
        .to_string()
        .contains("cycle"));
    }

    #[test]
    fn eval_at_carries_point_context_and_source() {
        let inner = CoreError::BadWeights {
            reason: "boom".into(),
        };
        let wrapped = CoreError::EvalAt {
            context: "x = 2".into(),
            source: Box::new(inner.clone()),
        };
        let text = wrapped.to_string();
        assert!(text.contains("x = 2"), "{text}");
        assert!(text.contains("boom"), "{text}");
        use std::error::Error;
        assert_eq!(wrapped.source().unwrap().to_string(), inner.to_string());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }

    #[test]
    fn worker_panic_conversion_and_display() {
        let e = CoreError::from_worker_panic(7, "index out of bounds".into());
        assert_eq!(
            e,
            CoreError::WorkerPanicked {
                index: 7,
                payload: "index out of bounds".into()
            }
        );
        let text = e.to_string();
        assert!(text.contains("index 7"), "{text}");
        assert!(text.contains("out of bounds"), "{text}");
    }

    #[test]
    fn panic_payload_text_handles_common_payloads() {
        let s: Box<dyn std::any::Any + Send> = Box::new("literal");
        assert_eq!(panic_payload_text(s.as_ref()), "literal");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_payload_text(owned.as_ref()), "owned");
        let other: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(
            panic_payload_text(other.as_ref()),
            "non-string panic payload"
        );
    }

    #[test]
    fn every_variant_round_trips_through_json() {
        let variants = vec![
            CoreError::Undefined { name: "λ".into() },
            CoreError::Redefined {
                name: "x\"y".into(),
            },
            CoreError::InvalidProbability {
                context: "test".into(),
                value: 1.5,
            },
            CoreError::BadDependency {
                reason: "cycle".into(),
            },
            CoreError::BadDiagram {
                reason: "dangling".into(),
            },
            CoreError::BadWeights {
                reason: "negative".into(),
            },
            CoreError::EvalAt {
                context: "x = 0.5".into(),
                source: Box::new(CoreError::WorkerPanicked {
                    index: 3,
                    payload: "boom".into(),
                }),
            },
        ];
        for e in variants {
            let text = e.to_json().to_string();
            let parsed = uavail_obs::json::parse(&text).unwrap();
            assert_eq!(CoreError::from_json(&parsed).unwrap(), e, "{text}");
        }
    }

    #[test]
    fn non_finite_probability_values_survive_json() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let e = CoreError::InvalidProbability {
                context: "nan".into(),
                value: v,
            };
            let parsed = uavail_obs::json::parse(&e.to_json().to_string()).unwrap();
            let back = CoreError::from_json(&parsed).unwrap();
            match back {
                CoreError::InvalidProbability { value, .. } => {
                    assert_eq!(value.to_bits(), v.to_bits());
                }
                other => panic!("wrong variant {other:?}"),
            }
        }
    }
}
