//! Order-preserving parallel map on `std::thread::scope`.
//!
//! The evaluation workloads in this workspace — figure sweeps, tornado
//! diagrams, Monte-Carlo replications — are embarrassingly parallel maps
//! over independent points. This module provides the one primitive they
//! all share: [`par_map`], a chunked, work-stealing map that preserves
//! input order and reproduces serial first-error semantics exactly, built
//! on scoped threads so it needs no external dependencies and no `'static`
//! bounds on the closure or its captures. For reductions too large to
//! materialize, [`par_fold_threads_with`] streams the same ordered result
//! sequence through a bounded ring into a fold on the calling thread.
//!
//! # Determinism
//!
//! `par_map(items, f)` returns bit-for-bit the same `Ok` vector as the
//! serial `items.iter().map(f).collect()`: each output slot is written
//! from exactly one evaluation of `f` on the corresponding input, and
//! thread scheduling only decides *when* a slot is computed, never *what*
//! is stored in it. On failure, the error with the **lowest input index**
//! is returned — the same error the serial loop would have surfaced —
//! even when a later point happens to fail first in wall-clock time.
//!
//! # Panic isolation
//!
//! A panicking closure does not tear the map down: every evaluation runs
//! under `catch_unwind`, and a caught panic becomes a typed error via
//! [`FromWorkerPanic`] carrying the input index and the panic payload, so
//! it participates in the same lowest-index-wins error semantics as an
//! ordinary `Err`. The serial fallback path applies the same isolation,
//! keeping serial and parallel behavior identical. The
//! `core.par.worker_panic` injection site (see `uavail-faultinject`) can
//! force such panics deterministically to exercise this machinery.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use crate::error::{panic_payload_text, FromWorkerPanic};

/// Upper bound on worker threads, from `std::thread::available_parallelism`.
///
/// Falls back to 1 when parallelism cannot be queried (the call is allowed
/// to fail on exotic platforms), which degrades to serial evaluation.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Maps `f` over `items` in parallel, preserving input order.
///
/// Uses [`default_threads`] workers. See [`par_map_threads`] for the
/// semantics and error contract.
///
/// # Errors
///
/// Returns the error produced at the lowest failing input index, exactly
/// as the serial map would.
pub fn par_map<T, U, E, F>(items: &[T], f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send + FromWorkerPanic,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    par_map_threads(items, default_threads(), f)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads.
///
/// Work is distributed in contiguous chunks claimed from an atomic
/// counter, so threads that finish early steal the remaining chunks. The
/// output vector is identical to the serial map's output: order is
/// preserved and every element is the result of one call of `f` on the
/// matching input.
///
/// With `threads <= 1`, or fewer than two items, the map runs serially on
/// the calling thread (no thread is ever spawned), so callers can use one
/// code path for both modes.
///
/// # Errors
///
/// When one or more evaluations fail, the error at the **lowest** failing
/// index is returned. Chunks are claimed in increasing index order and
/// every already-claimed chunk runs to completion, so all indices below
/// the winning one were evaluated — matching what the serial loop, which
/// stops at the first failure, would have reported. Remaining unclaimed
/// chunks are skipped once a failure is recorded.
pub fn par_map_threads<T, U, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send + FromWorkerPanic,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    par_map_threads_with(items, threads, || (), |(), item| f(item))
}

/// Like [`par_map_threads`], but hands each worker thread a private
/// workspace created by `make` and passes it to every evaluation the worker
/// performs, so per-point scratch allocations can be reused across points.
///
/// The workspace is created *on* the worker thread (so `W` needs neither
/// `Send` nor `Sync`) and dropped when the worker runs out of chunks. In
/// serial mode a single workspace serves the whole map. Determinism is
/// unchanged from [`par_map_threads`] — the workspace must not influence
/// results, only provide reusable storage; with such an `f`, output and
/// error semantics are identical to the plain map.
///
/// # Errors
///
/// Exactly as [`par_map_threads`]: the error at the lowest failing input
/// index wins.
pub fn par_map_threads_with<T, U, E, W, M, F>(
    items: &[T],
    threads: usize,
    make: M,
    f: F,
) -> Result<Vec<U>, E>
where
    T: Sync,
    U: Send,
    E: Send + FromWorkerPanic,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, &T) -> Result<U, E> + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    // One panic-isolated evaluation: the closure runs under
    // `catch_unwind`, a caught panic becomes `E::from_worker_panic`, and
    // the workspace — whose invariants the unwound closure may have
    // broken — is dropped and rebuilt before the next item. The
    // `core.par.worker_panic` injection site fires *inside* the guarded
    // region, so an injected panic exercises exactly the recovery path a
    // real one would.
    let eval_isolated = |workspace: &mut Option<W>, index: usize, item: &T| -> Result<U, E> {
        let ws = workspace.get_or_insert_with(&make);
        match catch_unwind(AssertUnwindSafe(|| {
            if uavail_faultinject::fired("core.par.worker_panic") {
                panic!("injected worker panic at input index {index}");
            }
            f(ws, item)
        })) {
            Ok(result) => result,
            Err(payload) => {
                *workspace = None;
                Err(E::from_worker_panic(
                    index,
                    panic_payload_text(payload.as_ref()),
                ))
            }
        }
    };
    if threads <= 1 || n < 2 {
        let mut workspace = Some(make());
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| eval_isolated(&mut workspace, i, item))
            .collect();
    }

    // Several short chunks per thread so an expensive tail point cannot
    // serialize the whole sweep behind one worker.
    let chunk = n.div_ceil(threads * 4).max(1);
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let slots: Vec<Mutex<Option<Result<U, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (next, failed, slots, eval_isolated) = (&next, &failed, &slots, &eval_isolated);
            scope.spawn(move || {
                {
                    // One trace span per worker lifetime, plus one per
                    // claimed chunk, so Perfetto shows utilization and
                    // work stealing.
                    let _worker_span = uavail_obs::TraceSpan::enter_with_arg(
                        "par.worker",
                        "worker",
                        worker as f64,
                    );
                    let mut workspace = None;
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n || failed.load(Ordering::Relaxed) {
                            break;
                        }
                        let _chunk_span = uavail_obs::TraceSpan::enter_with_arg(
                            "par.chunk",
                            "start",
                            start as f64,
                        );
                        let end = (start + chunk).min(n);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            let result = eval_isolated(&mut workspace, i, item);
                            if result.is_err() {
                                failed.store(true, Ordering::Relaxed);
                            }
                            *slots[i].lock().expect("no poisoned slot") = Some(result);
                        }
                    }
                }
                // Scope join returns when this closure does, *before* this
                // thread's TLS destructors flush its trace ring — flush
                // explicitly so `take_trace` after the join sees this
                // worker's events.
                uavail_obs::trace::flush_current_thread();
            });
        }
    });

    let mut out = Vec::with_capacity(n);
    for slot in slots {
        match slot.into_inner().expect("no poisoned slot") {
            // A hole can only sit above the lowest failing index (chunks
            // are claimed in order; holes come from skipped chunks), so
            // by the time we reach one, an error was already returned.
            None => unreachable!("unevaluated slot without a preceding error"),
            Some(Ok(value)) => out.push(value),
            Some(Err(e)) => return Err(e),
        }
    }
    Ok(out)
}

/// Streaming ordered reduction: maps `f` over `items` on up to `threads`
/// workers and folds every result into `init` **in input order** on the
/// calling thread, without ever materializing the full output vector.
///
/// This is the reducer under high-volume Monte-Carlo replication: workers
/// write completed results into a bounded ring (a fixed window of slots,
/// sized from the chunk geometry), and the calling thread drains the ring
/// in index order, folding each value and freeing its slot. A worker that
/// runs ahead of the consumer by more than the window blocks until the
/// consumer catches up, so peak memory is `O(threads)` results regardless
/// of `items.len()`.
///
/// # Determinism
///
/// The fold sees exactly the sequence `f(ws, &items[0]), f(ws, &items[1]),
/// …` — the same sequence the serial loop would produce — so for any
/// `fold` the final accumulator is bit-for-bit identical across thread
/// counts, including `threads <= 1` (which runs serially on the calling
/// thread with a single workspace and no ring).
///
/// Each worker gets a private workspace from `make`, created on the worker
/// thread and reused across every item that worker evaluates, exactly as
/// in [`par_map_threads_with`]; the workspace must not influence results.
///
/// # Errors
///
/// The consumer folds in index order and stops at the first `Err` it
/// meets, so the error at the **lowest** failing input index is returned —
/// serial first-error semantics. All indices below it were evaluated and
/// folded; results above it are discarded. Panicking evaluations become
/// typed errors via [`FromWorkerPanic`] and compete on index like ordinary
/// errors.
pub fn par_fold_threads_with<T, U, E, W, A, M, F, G>(
    items: &[T],
    threads: usize,
    make: M,
    f: F,
    init: A,
    mut fold: G,
) -> Result<A, E>
where
    T: Sync,
    U: Send,
    E: Send + FromWorkerPanic,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, &T) -> Result<U, E> + Sync,
    G: FnMut(&mut A, U),
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    // Same panic-isolated evaluation as `par_map_threads_with`: a caught
    // panic becomes `E::from_worker_panic` and the (possibly broken)
    // workspace is rebuilt before the next item.
    let eval_isolated = |workspace: &mut Option<W>, index: usize, item: &T| -> Result<U, E> {
        let ws = workspace.get_or_insert_with(&make);
        match catch_unwind(AssertUnwindSafe(|| {
            if uavail_faultinject::fired("core.par.worker_panic") {
                panic!("injected worker panic at input index {index}");
            }
            f(ws, item)
        })) {
            Ok(result) => result,
            Err(payload) => {
                *workspace = None;
                Err(E::from_worker_panic(
                    index,
                    panic_payload_text(payload.as_ref()),
                ))
            }
        }
    };
    if threads <= 1 || n < 2 {
        let mut workspace = Some(make());
        let mut acc = init;
        for (i, item) in items.iter().enumerate() {
            acc = match eval_isolated(&mut workspace, i, item) {
                Ok(value) => {
                    fold(&mut acc, value);
                    acc
                }
                Err(e) => return Err(e),
            };
        }
        return Ok(acc);
    }

    let chunk = n.div_ceil(threads * 4).max(1);
    // The window must let every worker hold one full in-flight chunk ahead
    // of the consumer; one extra chunk of slack keeps workers from
    // thrashing on the condvar at the boundary.
    let window = (chunk * (threads + 1)).min(n);
    let next = AtomicUsize::new(0);
    struct Ring<U, E> {
        slots: Vec<Option<Result<U, E>>>,
        /// Next index the consumer will fold; slot `i` may be written only
        /// once `i - consumed < window`.
        consumed: usize,
        /// Set by the consumer on first error so blocked workers bail out.
        failed: bool,
    }
    let ring = Mutex::new(Ring::<U, E> {
        slots: (0..window).map(|_| None).collect(),
        consumed: 0,
        failed: false,
    });
    let space = Condvar::new();
    let ready = Condvar::new();

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (next, ring, space, ready, eval_isolated) =
                (&next, &ring, &space, &ready, &eval_isolated);
            scope.spawn(move || {
                {
                    let _worker_span = uavail_obs::TraceSpan::enter_with_arg(
                        "par.worker",
                        "worker",
                        worker as f64,
                    );
                    let mut workspace = None;
                    'claims: loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n || ring.lock().expect("no poisoned ring").failed {
                            break;
                        }
                        let _chunk_span = uavail_obs::TraceSpan::enter_with_arg(
                            "par.chunk",
                            "start",
                            start as f64,
                        );
                        let end = (start + chunk).min(n);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            let result = eval_isolated(&mut workspace, i, item);
                            let mut st = ring.lock().expect("no poisoned ring");
                            while !st.failed && i >= st.consumed + window {
                                st = space.wait(st).expect("no poisoned ring");
                            }
                            if st.failed {
                                break 'claims;
                            }
                            st.slots[i % window] = Some(result);
                            drop(st);
                            ready.notify_all();
                        }
                    }
                }
                // See par_map_threads_with: flush this worker's trace ring
                // before the scope join observes the closure returning.
                uavail_obs::trace::flush_current_thread();
            });
        }

        // The calling thread is the consumer: fold strictly in index
        // order, freeing each slot as it goes.
        let mut acc = init;
        for i in 0..n {
            let mut st = ring.lock().expect("no poisoned ring");
            let value = loop {
                match st.slots[i % window].take() {
                    Some(result) => break result,
                    None => st = ready.wait(st).expect("no poisoned ring"),
                }
            };
            st.consumed = i + 1;
            match value {
                Ok(value) => {
                    drop(st);
                    space.notify_all();
                    fold(&mut acc, value);
                }
                Err(e) => {
                    // First error met in index order is the lowest failing
                    // index. Release every blocked worker so the scope can
                    // join, then surface it.
                    st.failed = true;
                    drop(st);
                    space.notify_all();
                    return Err(e);
                }
            }
        }
        Ok(acc)
    })
}

/// Like [`par_map_threads`], but returns every item's outcome instead of
/// aborting at the lowest failing index: the output has one
/// `Result<U, E>` per input, in input order, and **every** input is
/// always evaluated. A caught panic — real or injected via
/// `core.par.worker_panic` — becomes `E::from_worker_panic` for that item
/// only and never tears the map down.
///
/// This is the primitive under the resilient sweeps: callers that must
/// degrade gracefully need the full outcome vector, not first-error
/// semantics.
pub fn par_map_threads_capture<T, U, E, F>(items: &[T], threads: usize, f: F) -> Vec<Result<U, E>>
where
    T: Sync,
    U: Send,
    E: Send + FromWorkerPanic,
    F: Fn(&T) -> Result<U, E> + Sync,
{
    let n = items.len();
    let threads = threads.clamp(1, n.max(1));
    let eval_captured = |index: usize, item: &T| -> Result<U, E> {
        match catch_unwind(AssertUnwindSafe(|| {
            if uavail_faultinject::fired("core.par.worker_panic") {
                panic!("injected worker panic at input index {index}");
            }
            f(item)
        })) {
            Ok(result) => result,
            Err(payload) => Err(E::from_worker_panic(
                index,
                panic_payload_text(payload.as_ref()),
            )),
        }
    };
    if threads <= 1 || n < 2 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| eval_captured(i, item))
            .collect();
    }

    let chunk = n.div_ceil(threads * 4).max(1);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<U, E>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for worker in 0..threads {
            let (next, slots, eval_captured) = (&next, &slots, &eval_captured);
            scope.spawn(move || {
                {
                    let _worker_span = uavail_obs::TraceSpan::enter_with_arg(
                        "par.worker",
                        "worker",
                        worker as f64,
                    );
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let _chunk_span = uavail_obs::TraceSpan::enter_with_arg(
                            "par.chunk",
                            "start",
                            start as f64,
                        );
                        let end = (start + chunk).min(n);
                        for (i, item) in items.iter().enumerate().take(end).skip(start) {
                            *slots[i].lock().expect("no poisoned slot") =
                                Some(eval_captured(i, item));
                        }
                    }
                }
                // See par_map_threads_with: scope join does not wait for
                // TLS teardown, so flush this worker's trace ring now.
                uavail_obs::trace::flush_current_thread();
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no poisoned slot")
                .expect("every chunk is claimed, so every slot is evaluated")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreError;

    #[test]
    fn matches_serial_map_bit_for_bit() {
        let items: Vec<f64> = (0..997).map(|i| i as f64 * 0.37).collect();
        let f = |x: &f64| -> Result<f64, CoreError> { Ok((x.sin() * 1e3).exp().ln_1p()) };
        let serial: Vec<f64> = items.iter().map(f).collect::<Result<_, _>>().unwrap();
        for threads in [1, 2, 3, 8] {
            let parallel = par_map_threads(&items, threads, f).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn lowest_index_error_wins() {
        let items: Vec<usize> = (0..500).collect();
        let f = |&i: &usize| -> Result<usize, CoreError> {
            if i % 100 == 37 {
                Err(CoreError::Undefined {
                    name: format!("item-{i}"),
                })
            } else {
                Ok(i)
            }
        };
        for threads in [1, 4, 16] {
            let err = par_map_threads(&items, threads, f).unwrap_err();
            assert_eq!(
                err,
                CoreError::Undefined {
                    name: "item-37".into()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        let out = par_map(&none, |&x: &u32| Ok::<_, CoreError>(x)).unwrap();
        assert!(out.is_empty());
        let one = par_map(&[5u32], |&x| Ok::<_, CoreError>(x * 2)).unwrap();
        assert_eq!(one, vec![10]);
    }

    #[test]
    fn oversubscribed_thread_count_is_clamped() {
        let items: Vec<usize> = (0..7).collect();
        let out = par_map_threads(&items, 64, |&i| Ok::<_, CoreError>(i + 1)).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn workspace_variant_matches_plain_map_bit_for_bit() {
        let items: Vec<f64> = (0..499).map(|i| i as f64 * 0.73).collect();
        let serial: Vec<f64> = items
            .iter()
            .map(|x| (x.cos() * 1e2).exp().ln_1p())
            .collect();
        for threads in [1, 2, 8] {
            let out = par_map_threads_with(
                &items,
                threads,
                Vec::<f64>::new,
                |scratch: &mut Vec<f64>, x: &f64| -> Result<f64, CoreError> {
                    // Use the scratch buffer the way a real workspace
                    // would: fill and read it, then reuse next point.
                    scratch.clear();
                    scratch.push((x.cos() * 1e2).exp());
                    Ok(scratch[0].ln_1p())
                },
            )
            .unwrap();
            for (s, p) in serial.iter().zip(&out) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn every_parallel_worker_emits_trace_events() {
        // `--trace` must show one lane per worker: each of the N spawned
        // workers opens a `par.worker` span on its own thread, so the
        // exported timeline has at least one event per worker and N
        // distinct worker ids. Concurrent tests may add their own events
        // to the shared sink — assertions are lower bounds on our names.
        let items: Vec<usize> = (0..64).collect();
        let threads = 4;
        uavail_obs::trace::reset();
        uavail_obs::set_trace_enabled(true);
        let out = par_map_threads(&items, threads, |&i| Ok::<_, CoreError>(i * 2)).unwrap();
        uavail_obs::set_trace_enabled(false);
        let data = uavail_obs::take_trace();
        assert_eq!(out[63], 126);
        let workers: Vec<&uavail_obs::TraceEvent> = data
            .events
            .iter()
            .filter(|e| e.name == "par.worker")
            .collect();
        let begins = workers
            .iter()
            .filter(|e| matches!(e.phase, uavail_obs::trace::TracePhase::Begin))
            .count();
        assert!(
            begins >= threads,
            "only {begins} worker spans for {threads} workers"
        );
        let tids: std::collections::BTreeSet<u64> = workers.iter().map(|e| e.tid).collect();
        assert!(tids.len() >= threads, "worker spans on {tids:?}");
        // Chunk spans carry their start index and the export is valid
        // Chrome-trace JSON.
        assert!(data.events.iter().any(|e| e.name == "par.chunk"));
        uavail_obs::trace::validate_chrome_trace(&data.to_chrome_trace()).unwrap();
    }

    #[test]
    fn panicking_closure_becomes_typed_error_on_serial_and_parallel_paths() {
        let items: Vec<usize> = (0..200).collect();
        let f = |&i: &usize| -> Result<usize, CoreError> {
            if i == 111 {
                panic!("worker died at {i}");
            }
            Ok(i)
        };
        for threads in [1, 4] {
            let err = par_map_threads(&items, threads, f).unwrap_err();
            assert_eq!(
                err,
                CoreError::WorkerPanicked {
                    index: 111,
                    payload: "worker died at 111".into()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn lowest_index_wins_between_panic_and_error() {
        // An Err at index 40 must beat a panic at index 170 and vice
        // versa, exactly as two ordinary errors would compete.
        let items: Vec<usize> = (0..300).collect();
        let f = |&i: &usize| -> Result<usize, CoreError> {
            match i {
                40 => Err(CoreError::Undefined {
                    name: "first".into(),
                }),
                170 => panic!("later panic"),
                _ => Ok(i),
            }
        };
        for threads in [1, 8] {
            let err = par_map_threads(&items, threads, f).unwrap_err();
            assert_eq!(
                err,
                CoreError::Undefined {
                    name: "first".into()
                },
                "threads={threads}"
            );
        }
        let g = |&i: &usize| -> Result<usize, CoreError> {
            match i {
                40 => panic!("first panic"),
                170 => Err(CoreError::Undefined {
                    name: "later".into(),
                }),
                _ => Ok(i),
            }
        };
        for threads in [1, 8] {
            let err = par_map_threads(&items, threads, g).unwrap_err();
            assert_eq!(
                err,
                CoreError::WorkerPanicked {
                    index: 40,
                    payload: "first panic".into()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn workspace_is_rebuilt_after_a_panic() {
        // A panic mid-evaluation may leave the workspace inconsistent;
        // the next item on that worker must see a freshly built one.
        let items: Vec<usize> = (0..6).collect();
        let out = par_map_threads_with(
            &items,
            1,
            Vec::<usize>::new,
            |ws: &mut Vec<usize>, &i| -> Result<usize, CoreError> {
                ws.push(i);
                if i == 2 {
                    panic!("poisoned workspace");
                }
                Ok(ws.len())
            },
        );
        // Serial path: workspace grows 1, 2, 3(panic) then restarts.
        assert!(matches!(
            out,
            Err(CoreError::WorkerPanicked { index: 2, .. })
        ));
        let partial = par_map_threads_with(
            &items[3..],
            1,
            Vec::<usize>::new,
            |ws: &mut Vec<usize>, &i| -> Result<usize, CoreError> {
                ws.push(i);
                Ok(ws.len())
            },
        )
        .unwrap();
        assert_eq!(partial, vec![1, 2, 3]);
    }

    #[test]
    fn capture_variant_records_every_outcome_without_aborting() {
        // Errors *and* panics land in their own slot; unlike `par_map`,
        // nothing is skipped and nothing unwinds out of the map.
        let items: Vec<usize> = (0..100).collect();
        let f = |&i: &usize| -> Result<usize, CoreError> {
            match i % 30 {
                7 => Err(CoreError::Undefined {
                    name: format!("item-{i}"),
                }),
                13 => panic!("boom at {i}"),
                _ => Ok(i * 2),
            }
        };
        for threads in [1, 4] {
            let out = par_map_threads_capture(&items, threads, f);
            assert_eq!(out.len(), items.len(), "threads={threads}");
            for (i, outcome) in out.iter().enumerate() {
                match i % 30 {
                    7 => assert_eq!(
                        outcome,
                        &Err(CoreError::Undefined {
                            name: format!("item-{i}")
                        })
                    ),
                    13 => assert_eq!(
                        outcome,
                        &Err(CoreError::WorkerPanicked {
                            index: i,
                            payload: format!("boom at {i}"),
                        })
                    ),
                    _ => assert_eq!(outcome, &Ok(i * 2), "threads={threads} index={i}"),
                }
            }
        }
    }

    #[test]
    fn fold_matches_serial_fold_bit_for_bit() {
        // The ordered fold must reproduce the serial map-then-fold result
        // exactly, including for a non-commutative accumulator where any
        // reordering would change the bits.
        let items: Vec<f64> = (0..1213).map(|i| i as f64 * 0.41).collect();
        let f = |x: &f64| (x.sin() * 1e3).exp().ln_1p();
        let mut serial = 0.0f64;
        for x in &items {
            serial = serial * 0.875 + f(x);
        }
        for threads in [1, 2, 3, 8] {
            let folded = par_fold_threads_with(
                &items,
                threads,
                || (),
                |(), x| Ok::<_, CoreError>(f(x)),
                0.0f64,
                |acc, v| *acc = *acc * 0.875 + v,
            )
            .unwrap();
            assert_eq!(serial.to_bits(), folded.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn fold_lowest_index_error_wins_and_prefix_is_folded() {
        let items: Vec<usize> = (0..500).collect();
        let f = |_ws: &mut (), &i: &usize| -> Result<usize, CoreError> {
            if i % 100 == 61 {
                Err(CoreError::Undefined {
                    name: format!("item-{i}"),
                })
            } else {
                Ok(i)
            }
        };
        for threads in [1, 4, 16] {
            let mut seen = Vec::new();
            let err = par_fold_threads_with(&items, threads, || (), f, (), |(), i| seen.push(i))
                .unwrap_err();
            assert_eq!(
                err,
                CoreError::Undefined {
                    name: "item-61".into()
                },
                "threads={threads}"
            );
            // Exactly the items below the failing index were folded, in order.
            assert_eq!(seen, (0..61).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn fold_panic_becomes_typed_error() {
        let items: Vec<usize> = (0..300).collect();
        for threads in [1, 4] {
            let err = par_fold_threads_with(
                &items,
                threads,
                || (),
                |(), &i| -> Result<usize, CoreError> {
                    if i == 123 {
                        panic!("fold worker died at {i}");
                    }
                    Ok(i)
                },
                0usize,
                |acc, i| *acc += i,
            )
            .unwrap_err();
            assert_eq!(
                err,
                CoreError::WorkerPanicked {
                    index: 123,
                    payload: "fold worker died at 123".into()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn fold_empty_and_single_inputs() {
        let none: Vec<u32> = vec![];
        let sum = par_fold_threads_with(
            &none,
            4,
            || (),
            |(), &x| Ok::<_, CoreError>(x),
            0u32,
            |acc, x| *acc += x,
        )
        .unwrap();
        assert_eq!(sum, 0);
        let one = par_fold_threads_with(
            &[5u32],
            4,
            || (),
            |(), &x| Ok::<_, CoreError>(x * 2),
            0u32,
            |acc, x| *acc += x,
        )
        .unwrap();
        assert_eq!(one, 10);
    }

    #[test]
    fn fold_workspace_is_reused_across_items() {
        // Count workspace constructions: with `threads` workers at most
        // `threads` workspaces exist over the whole fold, however many
        // items pass through.
        use std::sync::atomic::AtomicUsize;
        let built = AtomicUsize::new(0);
        let items: Vec<usize> = (0..4000).collect();
        let threads = 3;
        let total = par_fold_threads_with(
            &items,
            threads,
            || {
                built.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::with_capacity(8)
            },
            |ws, &i| -> Result<usize, CoreError> {
                ws.clear();
                ws.push(i);
                Ok(ws[0])
            },
            0usize,
            |acc, i| *acc += i,
        )
        .unwrap();
        assert_eq!(total, items.iter().sum::<usize>());
        assert!(
            built.load(Ordering::Relaxed) <= threads,
            "workspaces rebuilt per item"
        );
    }

    #[test]
    fn workspace_variant_keeps_lowest_index_error() {
        let items: Vec<usize> = (0..300).collect();
        for threads in [1, 4] {
            let err = par_map_threads_with(
                &items,
                threads,
                || 0u32,
                |_ws, &i| -> Result<usize, CoreError> {
                    if i % 90 == 53 {
                        Err(CoreError::Undefined {
                            name: format!("item-{i}"),
                        })
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(
                err,
                CoreError::Undefined {
                    name: "item-53".into()
                },
                "threads={threads}"
            );
        }
    }
}
