//! # uavail-core
//!
//! The hierarchical user-perceived availability modeling framework of
//! Kaâniche, Kanoun & Martinello (DSN 2003).
//!
//! The framework structures an Internet application into four levels and
//! propagates availability bottom-up (Figure 1 of the paper):
//!
//! ```text
//!  user level      A(user)      ← operational profile over functions
//!  function level  A(function)  ← interaction diagrams over services
//!  service level   A(service)   ← structural formulas over resources,
//!                                 incl. composite performance–availability
//!  resource level  A(resource)  ← component models (Markov, measured, …)
//! ```
//!
//! ## Components
//!
//! * [`AvailExpr`] — an algebraic availability expression over named
//!   quantities: products (series use), complements, parallel redundancy,
//!   k-of-n, and probability-weighted sums (scenario mixtures). Expressions
//!   evaluate over plain `f64` or over [`Dual`] numbers, which makes every
//!   evaluation differentiable: `∂A(user)/∂A(LAN)` is exact, not a finite
//!   difference.
//! * [`InteractionDiagram`] — the paper's function-level notation
//!   (Figures 3–6): stages that use services, probabilistic branches,
//!   AND-forks; compiles into an [`AvailExpr`].
//! * [`HierarchicalModel`] — the four-level registry: define quantities at
//!   each [`Level`], reference lower-level quantities by name, evaluate
//!   everything in dependency order, and query exact sensitivities.
//! * [`composite`] — the Meyer-style composite performance–availability
//!   operator used by the paper's web service (equations 5 and 9).
//! * [`downtime`] — availability ↔ downtime conversions and the revenue
//!   -loss model of Section 5.2.
//! * [`sweep`] — parameter-sweep and tornado sensitivity utilities used by
//!   the evaluation section, with serial and parallel
//!   ([`sweep::sweep_parallel`]) evaluation paths that produce identical
//!   results.
//! * [`par`] — the order-preserving scoped-thread parallel map the
//!   parallel paths are built on, reusable for any embarrassingly
//!   parallel evaluation (the simulation crates use it for independent
//!   replications).
//!
//! # Examples
//!
//! A miniature two-level model:
//!
//! ```
//! use uavail_core::{AvailExpr, HierarchicalModel, Level};
//!
//! # fn main() -> Result<(), uavail_core::CoreError> {
//! let mut m = HierarchicalModel::new();
//! m.define_value("web_host", Level::Resource, 0.99)?;
//! m.define_value("lan", Level::Resource, 0.999)?;
//! m.define_expr(
//!     "web_service",
//!     Level::Service,
//!     AvailExpr::product(vec![AvailExpr::param("lan"), AvailExpr::param("web_host")]),
//! )?;
//! let eval = m.evaluate()?;
//! assert!((eval.value("web_service")? - 0.99 * 0.999).abs() < 1e-12);
//! // Exact sensitivity of the service to the LAN availability:
//! let d = m.sensitivity("web_service", "lan")?;
//! assert!((d - 0.99).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod composite;
mod dot;
pub mod downtime;
mod dual;
mod error;
mod expr;
mod interaction;
mod model;
pub mod par;
mod simplify;
pub mod sweep;

pub use dual::{Dual, Scalar};
pub use error::{panic_payload_text, CoreError, FromWorkerPanic};
pub use expr::AvailExpr;
pub use interaction::{InteractionDiagram, NodeId};
pub use model::{Evaluation, HierarchicalModel, Level};
