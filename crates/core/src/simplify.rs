//! Algebraic simplification of availability expressions.
//!
//! Machine-generated expressions (compiled interaction diagrams, the
//! equation-(10) scenario expansion) accumulate structural noise: nested
//! products, unit constants, single-child composites, duplicate
//! weighted-sum terms. [`AvailExpr::simplify`] normalizes them without
//! changing the evaluated value — verified by property test.

use std::collections::BTreeMap;

use crate::AvailExpr;

impl AvailExpr {
    /// Returns an algebraically equivalent, structurally smaller
    /// expression:
    ///
    /// * products/parallels are flattened and their constants folded;
    /// * `1`-factors (products) and `0`-terms (parallels) are dropped;
    /// * single-child composites collapse;
    /// * weighted-sum terms with identical bodies merge their weights and
    ///   zero-weight terms vanish;
    /// * double complements cancel.
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_core::AvailExpr;
    ///
    /// let noisy = AvailExpr::product(vec![
    ///     AvailExpr::constant(1.0),
    ///     AvailExpr::product(vec![AvailExpr::param("a"), AvailExpr::constant(0.5)]),
    /// ]);
    /// let clean = noisy.simplify();
    /// assert_eq!(clean.parameters(), vec!["a".to_string()]);
    /// ```
    pub fn simplify(&self) -> AvailExpr {
        match self {
            AvailExpr::Const(_) | AvailExpr::Param(_) => self.clone(),
            AvailExpr::Product(children) => {
                let mut constant = 1.0;
                let mut rest: Vec<AvailExpr> = Vec::new();
                for child in children {
                    match child.simplify() {
                        AvailExpr::Const(v) => constant *= v,
                        AvailExpr::Product(grandchildren) => {
                            for g in grandchildren {
                                match g {
                                    AvailExpr::Const(v) => constant *= v,
                                    other => rest.push(other),
                                }
                            }
                        }
                        other => rest.push(other),
                    }
                }
                if constant == 0.0 {
                    return AvailExpr::Const(0.0);
                }
                if (constant - 1.0).abs() > 0.0 {
                    rest.insert(0, AvailExpr::Const(constant));
                }
                match rest.len() {
                    0 => AvailExpr::Const(1.0),
                    1 => rest.pop().expect("one element"),
                    _ => AvailExpr::Product(rest),
                }
            }
            AvailExpr::Parallel(children) => {
                let mut rest: Vec<AvailExpr> = Vec::new();
                for child in children {
                    match child.simplify() {
                        // A certain branch makes the whole parallel certain.
                        AvailExpr::Const(v) if v >= 1.0 => return AvailExpr::Const(1.0),
                        // A never-working branch contributes nothing.
                        AvailExpr::Const(v) if v <= 0.0 => {}
                        AvailExpr::Parallel(grandchildren) => rest.extend(grandchildren),
                        other => rest.push(other),
                    }
                }
                match rest.len() {
                    0 => AvailExpr::Const(0.0),
                    1 => rest.pop().expect("one element"),
                    _ => AvailExpr::Parallel(rest),
                }
            }
            AvailExpr::KOfN(k, children) => {
                let simplified: Vec<AvailExpr> = children.iter().map(AvailExpr::simplify).collect();
                if *k == 1 {
                    return AvailExpr::Parallel(simplified).simplify();
                }
                if *k == simplified.len() {
                    return AvailExpr::Product(simplified).simplify();
                }
                AvailExpr::KOfN(*k, simplified)
            }
            AvailExpr::WeightedSum(terms) => {
                // Merge identical bodies; drop zero weights.
                let mut merged: BTreeMap<String, (f64, AvailExpr)> = BTreeMap::new();
                for (w, child) in terms {
                    if *w == 0.0 {
                        continue;
                    }
                    let body = child.simplify();
                    let key = format!("{body}");
                    merged
                        .entry(key)
                        .and_modify(|(acc, _)| *acc += w)
                        .or_insert((*w, body));
                }
                let rest: Vec<(f64, AvailExpr)> = merged.into_values().collect();
                match rest.len() {
                    0 => AvailExpr::Const(0.0),
                    1 if (rest[0].0 - 1.0).abs() < 1e-15 => rest.into_iter().next().expect("one").1,
                    _ => AvailExpr::WeightedSum(rest),
                }
            }
            AvailExpr::Complement(inner) => match inner.simplify() {
                AvailExpr::Const(v) => AvailExpr::Const(1.0 - v),
                AvailExpr::Complement(inner2) => *inner2,
                other => AvailExpr::Complement(Box::new(other)),
            },
        }
    }

    /// Number of nodes in the expression tree — a size metric for
    /// simplification tests and diagnostics.
    pub fn node_count(&self) -> usize {
        match self {
            AvailExpr::Const(_) | AvailExpr::Param(_) => 1,
            AvailExpr::Product(ch) | AvailExpr::Parallel(ch) | AvailExpr::KOfN(_, ch) => {
                1 + ch.iter().map(AvailExpr::node_count).sum::<usize>()
            }
            AvailExpr::WeightedSum(terms) => {
                1 + terms.iter().map(|(_, c)| c.node_count()).sum::<usize>()
            }
            AvailExpr::Complement(c) => 1 + c.node_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(entries: &[(&str, f64)]) -> HashMap<String, f64> {
        entries.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    #[test]
    fn folds_constants_in_products() {
        let e = AvailExpr::product(vec![
            AvailExpr::constant(0.5),
            AvailExpr::constant(0.5),
            AvailExpr::param("a"),
        ]);
        let s = e.simplify();
        assert_eq!(s.node_count(), 3); // Product(Const, Param)
        let v = s.eval(&env(&[("a", 0.8)])).unwrap();
        assert!((v - 0.2).abs() < 1e-15);
    }

    #[test]
    fn unit_product_disappears() {
        let e = AvailExpr::product(vec![AvailExpr::constant(1.0), AvailExpr::param("a")]);
        assert_eq!(e.simplify(), AvailExpr::param("a"));
        let e = AvailExpr::product(vec![AvailExpr::constant(1.0)]);
        assert_eq!(e.simplify(), AvailExpr::constant(1.0));
    }

    #[test]
    fn zero_annihilates_product() {
        let e = AvailExpr::product(vec![AvailExpr::constant(0.0), AvailExpr::param("a")]);
        assert_eq!(e.simplify(), AvailExpr::constant(0.0));
    }

    #[test]
    fn nested_products_flatten() {
        let e = AvailExpr::product(vec![
            AvailExpr::param("a"),
            AvailExpr::product(vec![
                AvailExpr::param("b"),
                AvailExpr::product(vec![AvailExpr::param("c")]),
            ]),
        ]);
        let s = e.simplify();
        assert_eq!(s.node_count(), 4); // Product(a, b, c)
    }

    #[test]
    fn parallel_rules() {
        let e = AvailExpr::parallel(vec![AvailExpr::constant(0.0), AvailExpr::param("a")]);
        assert_eq!(e.simplify(), AvailExpr::param("a"));
        let e = AvailExpr::parallel(vec![AvailExpr::constant(1.0), AvailExpr::param("a")]);
        assert_eq!(e.simplify(), AvailExpr::constant(1.0));
    }

    #[test]
    fn k_of_n_degenerate_cases() {
        let ch = vec![AvailExpr::param("a"), AvailExpr::param("b")];
        let one_of = AvailExpr::k_of_n(1, ch.clone()).simplify();
        assert!(matches!(one_of, AvailExpr::Parallel(_)));
        let all_of = AvailExpr::k_of_n(2, ch).simplify();
        assert!(matches!(all_of, AvailExpr::Product(_)));
    }

    #[test]
    fn weighted_sum_merging() {
        let e = AvailExpr::weighted_sum(vec![
            (0.2, AvailExpr::param("a")),
            (0.3, AvailExpr::param("a")),
            (0.0, AvailExpr::param("b")),
            (0.5, AvailExpr::param("c")),
        ]);
        let s = e.simplify();
        if let AvailExpr::WeightedSum(terms) = &s {
            assert_eq!(terms.len(), 2);
        } else {
            panic!("expected weighted sum, got {s}");
        }
        let v = s.eval(&env(&[("a", 1.0), ("c", 0.0)])).unwrap();
        assert!((v - 0.5).abs() < 1e-15);
    }

    #[test]
    fn full_weight_single_term_collapses() {
        let e = AvailExpr::weighted_sum(vec![(1.0, AvailExpr::param("a"))]);
        assert_eq!(e.simplify(), AvailExpr::param("a"));
    }

    #[test]
    fn double_complement_cancels() {
        let e = AvailExpr::complement(AvailExpr::complement(AvailExpr::param("a")));
        assert_eq!(e.simplify(), AvailExpr::param("a"));
        let e = AvailExpr::complement(AvailExpr::constant(0.3));
        assert_eq!(e.simplify(), AvailExpr::constant(0.7));
    }

    #[test]
    fn simplify_preserves_value_on_nested_example() {
        let e = AvailExpr::weighted_sum(vec![
            (
                0.4,
                AvailExpr::product(vec![
                    AvailExpr::constant(1.0),
                    AvailExpr::parallel(vec![AvailExpr::param("x"), AvailExpr::constant(0.0)]),
                ]),
            ),
            (
                0.6,
                AvailExpr::k_of_n(2, vec![AvailExpr::param("x"), AvailExpr::param("y")]),
            ),
        ]);
        let s = e.simplify();
        assert!(s.node_count() < e.node_count());
        let values = env(&[("x", 0.7), ("y", 0.9)]);
        assert!((e.eval(&values).unwrap() - s.eval(&values).unwrap()).abs() < 1e-15);
    }
}
