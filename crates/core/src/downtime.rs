//! Downtime and business-impact conversions.
//!
//! The paper reports unavailability as hours of downtime per year
//! (Section 5.2: "173 hours per year for class A users") and converts it
//! into lost transactions and lost revenue ("5.7 million transactions …
//! 570 million dollars"). This module provides those conversions.

use std::fmt;

use crate::CoreError;

/// Hours in a (non-leap) year, the paper's implicit convention.
pub const HOURS_PER_YEAR: f64 = 8760.0;

/// Seconds in a year under the same convention.
pub const SECONDS_PER_YEAR: f64 = HOURS_PER_YEAR * 3600.0;

fn check_availability(a: f64) -> Result<(), CoreError> {
    if a.is_finite() && (0.0..=1.0).contains(&a) {
        Ok(())
    } else {
        Err(CoreError::InvalidProbability {
            context: "availability".into(),
            value: a,
        })
    }
}

/// Downtime per year implied by a steady-state availability.
///
/// # Errors
///
/// [`CoreError::InvalidProbability`] for an availability outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use uavail_core::downtime::hours_per_year;
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// // "five nines" is about 5.3 minutes a year.
/// let h = hours_per_year(0.99999)?;
/// assert!((h * 60.0 - 5.256).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn hours_per_year(availability: f64) -> Result<f64, CoreError> {
    check_availability(availability)?;
    Ok((1.0 - availability) * HOURS_PER_YEAR)
}

/// Minutes of downtime per year.
///
/// # Errors
///
/// As for [`hours_per_year`].
pub fn minutes_per_year(availability: f64) -> Result<f64, CoreError> {
    Ok(hours_per_year(availability)? * 60.0)
}

/// The availability matching a downtime budget in minutes per year —
/// the inverse of [`minutes_per_year`], used for requirements like the
/// paper's "unavailability lower than 5 min/year".
///
/// # Errors
///
/// [`CoreError::InvalidProbability`] for a negative budget or one
/// exceeding a full year.
pub fn availability_for_minutes_per_year(minutes: f64) -> Result<f64, CoreError> {
    let total = HOURS_PER_YEAR * 60.0;
    if !(minutes.is_finite() && (0.0..=total).contains(&minutes)) {
        return Err(CoreError::InvalidProbability {
            context: "downtime budget in minutes".into(),
            value: minutes,
        });
    }
    Ok(1.0 - minutes / total)
}

/// Number of "nines" of an availability (`0.999 → 3.0`), a common
/// shorthand; `availability = 1` maps to infinity.
///
/// # Errors
///
/// As for [`hours_per_year`].
pub fn nines(availability: f64) -> Result<f64, CoreError> {
    check_availability(availability)?;
    Ok(-(1.0 - availability).log10())
}

/// The revenue-loss model of Section 5.2.
///
/// # Examples
///
/// ```
/// use uavail_core::downtime::RevenueModel;
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// // The paper's numbers: 100 transactions/s, $100 each.
/// let model = RevenueModel::new(100.0, 100.0)?;
/// let loss = model.annual_loss(0.98)?;
/// // 2% of a year of transactions.
/// assert!((loss.lost_transactions - 0.02 * 100.0 * 8760.0 * 3600.0).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RevenueModel {
    transactions_per_second: f64,
    revenue_per_transaction: f64,
}

/// Annual business impact of an availability level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnualLoss {
    /// Transactions lost per year.
    pub lost_transactions: f64,
    /// Revenue lost per year (same currency as the model's
    /// revenue-per-transaction).
    pub lost_revenue: f64,
    /// Downtime in hours per year.
    pub downtime_hours: f64,
}

impl RevenueModel {
    /// Creates the model from a transaction rate (per second) and an
    /// average revenue per transaction.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidProbability`] (reused for domain violations)
    /// when either argument is non-positive or non-finite.
    pub fn new(
        transactions_per_second: f64,
        revenue_per_transaction: f64,
    ) -> Result<Self, CoreError> {
        for (name, v) in [
            ("transactions_per_second", transactions_per_second),
            ("revenue_per_transaction", revenue_per_transaction),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(CoreError::InvalidProbability {
                    context: name.to_string(),
                    value: v,
                });
            }
        }
        Ok(RevenueModel {
            transactions_per_second,
            revenue_per_transaction,
        })
    }

    /// Annual loss at a given availability.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidProbability`] for an availability outside
    /// `[0, 1]`.
    pub fn annual_loss(&self, availability: f64) -> Result<AnnualLoss, CoreError> {
        check_availability(availability)?;
        let unavailability = 1.0 - availability;
        let lost_transactions = unavailability * self.transactions_per_second * SECONDS_PER_YEAR;
        Ok(AnnualLoss {
            lost_transactions,
            lost_revenue: lost_transactions * self.revenue_per_transaction,
            downtime_hours: unavailability * HOURS_PER_YEAR,
        })
    }
}

impl fmt::Display for AnnualLoss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.1} h/yr downtime, {:.2e} lost transactions, {:.2e} lost revenue",
            self.downtime_hours, self.lost_transactions, self.lost_revenue
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_conversions() {
        assert!((hours_per_year(0.0).unwrap() - 8760.0).abs() < 1e-9);
        assert_eq!(hours_per_year(1.0).unwrap(), 0.0);
        assert!((minutes_per_year(0.5).unwrap() - 8760.0 * 30.0).abs() < 1e-6);
        assert!(hours_per_year(1.5).is_err());
        assert!(hours_per_year(f64::NAN).is_err());
    }

    #[test]
    fn budget_round_trip() {
        let a = availability_for_minutes_per_year(5.0).unwrap();
        assert!((minutes_per_year(a).unwrap() - 5.0).abs() < 1e-9);
        assert!(availability_for_minutes_per_year(-1.0).is_err());
    }

    #[test]
    fn nines_scale() {
        assert!((nines(0.999).unwrap() - 3.0).abs() < 1e-9);
        assert!((nines(0.99999).unwrap() - 5.0).abs() < 1e-9);
        assert!(nines(1.0).unwrap().is_infinite());
    }

    #[test]
    fn paper_revenue_numbers() {
        // Section 5.2: 16 h/yr of SC4 downtime for class A at 100 tx/s and
        // $100/tx is ~5.7M transactions and ~$570M.
        let model = RevenueModel::new(100.0, 100.0).unwrap();
        let sc4_unavailability = 16.0 / HOURS_PER_YEAR;
        let loss = model.annual_loss(1.0 - sc4_unavailability).unwrap();
        assert!((loss.lost_transactions - 5.76e6).abs() < 0.01e6);
        assert!((loss.lost_revenue - 5.76e8).abs() < 0.01e8);
    }

    #[test]
    fn validation() {
        assert!(RevenueModel::new(0.0, 100.0).is_err());
        assert!(RevenueModel::new(100.0, -1.0).is_err());
        let m = RevenueModel::new(1.0, 1.0).unwrap();
        assert!(m.annual_loss(2.0).is_err());
    }

    #[test]
    fn display_contains_units() {
        let m = RevenueModel::new(10.0, 5.0).unwrap();
        let loss = m.annual_loss(0.99).unwrap();
        let s = loss.to_string();
        assert!(s.contains("h/yr"));
        assert!(s.contains("lost revenue"));
    }
}
