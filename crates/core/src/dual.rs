use std::ops::{Add, Div, Mul, Neg, Sub};

/// A forward-mode dual number `value + ε·derivative` (`ε² = 0`).
///
/// Evaluating an availability expression over duals — with the seed
/// derivative 1 on one parameter — yields the *exact* partial derivative of
/// the result with respect to that parameter, with no finite-difference
/// truncation error. This is how [`crate::HierarchicalModel::sensitivity`]
/// computes the influence rankings the paper derives by inspection
/// ("the availabilities of the LAN, the net and the web service are the
/// most influential ones").
///
/// # Examples
///
/// ```
/// use uavail_core::Dual;
///
/// // d/dx (x * x) at x = 3 is 6.
/// let x = Dual::variable(3.0);
/// let y = x * x;
/// assert_eq!(y.value(), 9.0);
/// assert_eq!(y.derivative(), 6.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Dual {
    value: f64,
    derivative: f64,
}

impl Dual {
    /// A constant (derivative 0).
    pub fn constant(value: f64) -> Self {
        Dual {
            value,
            derivative: 0.0,
        }
    }

    /// The differentiation variable (derivative 1).
    pub fn variable(value: f64) -> Self {
        Dual {
            value,
            derivative: 1.0,
        }
    }

    /// Creates a dual with explicit parts.
    pub fn new(value: f64, derivative: f64) -> Self {
        Dual { value, derivative }
    }

    /// The primal value.
    pub fn value(self) -> f64 {
        self.value
    }

    /// The derivative part.
    pub fn derivative(self) -> f64 {
        self.derivative
    }

    /// Natural exponential.
    pub fn exp(self) -> Self {
        let e = self.value.exp();
        Dual {
            value: e,
            derivative: self.derivative * e,
        }
    }

    /// Natural logarithm.
    pub fn ln(self) -> Self {
        Dual {
            value: self.value.ln(),
            derivative: self.derivative / self.value,
        }
    }

    /// Integer power.
    pub fn powi(self, n: i32) -> Self {
        Dual {
            value: self.value.powi(n),
            derivative: n as f64 * self.value.powi(n - 1) * self.derivative,
        }
    }
}

impl From<f64> for Dual {
    fn from(v: f64) -> Self {
        Dual::constant(v)
    }
}

impl Add for Dual {
    type Output = Dual;
    fn add(self, rhs: Dual) -> Dual {
        Dual {
            value: self.value + rhs.value,
            derivative: self.derivative + rhs.derivative,
        }
    }
}

impl Sub for Dual {
    type Output = Dual;
    fn sub(self, rhs: Dual) -> Dual {
        Dual {
            value: self.value - rhs.value,
            derivative: self.derivative - rhs.derivative,
        }
    }
}

impl Mul for Dual {
    type Output = Dual;
    fn mul(self, rhs: Dual) -> Dual {
        Dual {
            value: self.value * rhs.value,
            derivative: self.value * rhs.derivative + self.derivative * rhs.value,
        }
    }
}

impl Div for Dual {
    type Output = Dual;
    fn div(self, rhs: Dual) -> Dual {
        Dual {
            value: self.value / rhs.value,
            derivative: (self.derivative * rhs.value - self.value * rhs.derivative)
                / (rhs.value * rhs.value),
        }
    }
}

impl Neg for Dual {
    type Output = Dual;
    fn neg(self) -> Dual {
        Dual {
            value: -self.value,
            derivative: -self.derivative,
        }
    }
}

/// The scalar abstraction availability expressions evaluate over: plain
/// numbers for values, [`Dual`] for values-with-derivatives.
///
/// This trait is sealed in spirit — it exists to let one evaluator serve
/// both number types, not as a public extension point.
pub trait Scalar:
    Copy + Add<Output = Self> + Sub<Output = Self> + Mul<Output = Self> + From<f64>
{
    /// The multiplicative identity.
    fn one() -> Self;
    /// The additive identity.
    fn zero() -> Self;
}

impl Scalar for f64 {
    fn one() -> Self {
        1.0
    }
    fn zero() -> Self {
        0.0
    }
}

impl Scalar for Dual {
    fn one() -> Self {
        Dual::constant(1.0)
    }
    fn zero() -> Self {
        Dual::constant(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_rules() {
        let x = Dual::variable(2.0);
        let c = Dual::constant(3.0);
        assert_eq!((x + c).derivative(), 1.0);
        assert_eq!((x - c).derivative(), 1.0);
        assert_eq!((c - x).derivative(), -1.0);
        assert_eq!((x * c).derivative(), 3.0);
        assert_eq!((x * x).derivative(), 4.0);
        assert_eq!((-x).derivative(), -1.0);
    }

    #[test]
    fn quotient_rule() {
        // d/dx (1 / x) = -1 / x^2 at x = 2: -0.25.
        let x = Dual::variable(2.0);
        let y = Dual::constant(1.0) / x;
        assert!((y.derivative() + 0.25).abs() < 1e-15);
    }

    #[test]
    fn chain_rule_through_exp_ln() {
        // d/dx exp(ln(x) * 2) = 2x at x = 3.
        let x = Dual::variable(3.0);
        let y = (x.ln() * Dual::constant(2.0)).exp();
        assert!((y.value() - 9.0).abs() < 1e-12);
        assert!((y.derivative() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn powi_matches_repeated_multiplication() {
        let x = Dual::variable(1.5);
        let by_powi = x.powi(3);
        let by_mul = x * x * x;
        assert!((by_powi.value() - by_mul.value()).abs() < 1e-15);
        assert!((by_powi.derivative() - by_mul.derivative()).abs() < 1e-15);
    }

    #[test]
    fn availability_like_expression() {
        // A = p * (1 - (1 - q)^2) with q the variable, p = 0.9, q = 0.8:
        // dA/dq = p * 2 (1 - q) = 0.36.
        let p = Dual::constant(0.9);
        let q = Dual::variable(0.8);
        let one = Dual::constant(1.0);
        let a = p * (one - (one - q) * (one - q));
        assert!((a.derivative() - 0.36).abs() < 1e-15);
    }

    #[test]
    fn scalar_trait_identities() {
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(Dual::zero().value(), 0.0);
        let from: Dual = 0.5f64.into();
        assert_eq!(from.value(), 0.5);
        assert_eq!(from.derivative(), 0.0);
    }
}
