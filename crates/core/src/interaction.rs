use std::collections::BTreeSet;
use std::fmt;

use crate::{AvailExpr, CoreError};

/// Opaque handle to a stage in an [`InteractionDiagram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Raw index of the stage.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Stage {
    /// Services used while executing this stage. Multiple services model
    /// the paper's AND-fork (Figure 4: Flight, Hotel and Car reservation
    /// systems queried simultaneously).
    services: Vec<String>,
    /// Outgoing `(target, probability)` edges; `None` target = End.
    edges: Vec<(Option<usize>, f64)>,
}

/// An interaction diagram — the paper's function-level notation
/// (Figures 3–6).
///
/// A function execution starts at the implicit `Begin` node, traverses
/// stages (each using one or more services), branches probabilistically,
/// and terminates at the implicit `End` node. Each `Begin → End` path is a
/// *function scenario*; the function is available in a scenario iff every
/// distinct service used along the path is available. Compiling the diagram
/// yields the function's availability expression:
///
/// `A(function) = Σ_paths P(path) · Π_{s ∈ services(path)} A(s)`.
///
/// # Examples
///
/// The paper's Browse function (Figure 3):
///
/// ```
/// use std::collections::HashMap;
/// use uavail_core::InteractionDiagram;
///
/// # fn main() -> Result<(), uavail_core::CoreError> {
/// let mut d = InteractionDiagram::new();
/// let ws = d.add_stage(vec!["WS"]);
/// let cached = d.add_stage(vec!["WS"]);        // answer from cache
/// let app = d.add_stage(vec!["AS"]);           // dynamic page
/// let db = d.add_stage(vec!["AS", "DS"]);      // page needing the DB
/// d.connect_begin(ws, 1.0)?;
/// d.connect(ws, cached, 0.2)?;                 // q23
/// d.connect(ws, app, 0.8 * 0.4)?;              // q24 * q45
/// d.connect(ws, db, 0.8 * 0.6)?;               // q24 * q47
/// d.connect_end(cached, 1.0)?;
/// d.connect_end(app, 1.0)?;
/// d.connect_end(db, 1.0)?;
/// let expr = d.compile()?;
/// let mut env = HashMap::new();
/// env.insert("WS".into(), 1.0);
/// env.insert("AS".into(), 0.99);
/// env.insert("DS".into(), 0.98);
/// let a = expr.eval(&env)?;
/// let expected = 0.2 + 0.32 * 0.99 + 0.48 * 0.99 * 0.98;
/// assert!((a - expected).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct InteractionDiagram {
    stages: Vec<Stage>,
    /// Outgoing `(target, probability)` edges from Begin.
    begin_edges: Vec<(usize, f64)>,
}

impl InteractionDiagram {
    /// Creates an empty diagram.
    pub fn new() -> Self {
        InteractionDiagram::default()
    }

    /// Adds a stage using the given services and returns its handle.
    pub fn add_stage<S: Into<String>>(&mut self, services: Vec<S>) -> NodeId {
        self.stages.push(Stage {
            services: services.into_iter().map(Into::into).collect(),
            edges: Vec::new(),
        });
        NodeId(self.stages.len() - 1)
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Services used by each stage, indexed by stage id.
    pub fn stage_services(&self) -> Vec<Vec<String>> {
        self.stages.iter().map(|s| s.services.clone()).collect()
    }

    /// Edges out of Begin, as `(target stage index, probability)`.
    pub fn begin_edge_list(&self) -> Vec<(usize, f64)> {
        self.begin_edges.clone()
    }

    /// All stage edges as `(from, to, probability)` with `None` meaning
    /// End.
    pub fn edge_list(&self) -> Vec<(usize, Option<usize>, f64)> {
        let mut out = Vec::new();
        for (from, stage) in self.stages.iter().enumerate() {
            for &(to, p) in &stage.edges {
                out.push((from, to, p));
            }
        }
        out
    }

    fn check_probability(&self, context: &str, p: f64) -> Result<(), CoreError> {
        if p.is_finite() && p > 0.0 && p <= 1.0 + 1e-12 {
            Ok(())
        } else {
            Err(CoreError::InvalidProbability {
                context: context.to_string(),
                value: p,
            })
        }
    }

    fn check_node(&self, id: NodeId) -> Result<(), CoreError> {
        if id.0 >= self.stages.len() {
            return Err(CoreError::Undefined {
                name: id.to_string(),
            });
        }
        Ok(())
    }

    /// Connects Begin to `to` with the given probability.
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] / [`CoreError::InvalidProbability`].
    pub fn connect_begin(&mut self, to: NodeId, p: f64) -> Result<(), CoreError> {
        self.check_node(to)?;
        self.check_probability(&format!("Begin -> {to}"), p)?;
        self.begin_edges.push((to.0, p));
        Ok(())
    }

    /// Connects stage `from` to stage `to` with the given probability.
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] / [`CoreError::InvalidProbability`].
    pub fn connect(&mut self, from: NodeId, to: NodeId, p: f64) -> Result<(), CoreError> {
        self.check_node(from)?;
        self.check_node(to)?;
        self.check_probability(&format!("{from} -> {to}"), p)?;
        self.stages[from.0].edges.push((Some(to.0), p));
        Ok(())
    }

    /// Connects stage `from` to End with the given probability.
    ///
    /// # Errors
    ///
    /// [`CoreError::Undefined`] / [`CoreError::InvalidProbability`].
    pub fn connect_end(&mut self, from: NodeId, p: f64) -> Result<(), CoreError> {
        self.check_node(from)?;
        self.check_probability(&format!("{from} -> End"), p)?;
        self.stages[from.0].edges.push((None, p));
        Ok(())
    }

    fn validate(&self) -> Result<(), CoreError> {
        if self.begin_edges.is_empty() {
            return Err(CoreError::BadDiagram {
                reason: "Begin has no outgoing edges".into(),
            });
        }
        let begin_sum: f64 = self.begin_edges.iter().map(|(_, p)| p).sum();
        if (begin_sum - 1.0).abs() > 1e-9 {
            return Err(CoreError::BadDiagram {
                reason: format!("Begin edge probabilities sum to {begin_sum}, expected 1"),
            });
        }
        // Every reachable stage must have edges summing to 1.
        let mut reachable = vec![false; self.stages.len()];
        let mut stack: Vec<usize> = self.begin_edges.iter().map(|&(t, _)| t).collect();
        while let Some(i) = stack.pop() {
            if reachable[i] {
                continue;
            }
            reachable[i] = true;
            for &(t, _) in &self.stages[i].edges {
                if let Some(t) = t {
                    if !reachable[t] {
                        stack.push(t);
                    }
                }
            }
        }
        for (i, stage) in self.stages.iter().enumerate() {
            if !reachable[i] {
                continue;
            }
            let sum: f64 = stage.edges.iter().map(|(_, p)| p).sum();
            if (sum - 1.0).abs() > 1e-9 {
                return Err(CoreError::BadDiagram {
                    reason: format!("stage#{i} edge probabilities sum to {sum}, expected 1"),
                });
            }
        }
        // Acyclicity (the paper's diagrams are DAGs; cycles would make the
        // path enumeration diverge).
        let mut color = vec![0u8; self.stages.len()]; // 0 white, 1 grey, 2 black
        fn dfs(stages: &[Stage], color: &mut [u8], i: usize) -> Result<(), CoreError> {
            if color[i] == 1 {
                return Err(CoreError::BadDiagram {
                    reason: format!("cycle through stage#{i}"),
                });
            }
            if color[i] == 2 {
                return Ok(());
            }
            color[i] = 1;
            for &(t, _) in &stages[i].edges {
                if let Some(t) = t {
                    dfs(stages, color, t)?;
                }
            }
            color[i] = 2;
            Ok(())
        }
        for &(t, _) in &self.begin_edges {
            dfs(&self.stages, &mut color, t)?;
        }
        Ok(())
    }

    /// Enumerates all function scenarios as
    /// `(probability, services-used)` pairs.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadDiagram`] for invalid structure (see
    /// [`InteractionDiagram::compile`]).
    pub fn scenarios(&self) -> Result<Vec<(f64, Vec<String>)>, CoreError> {
        self.validate()?;
        let mut out = Vec::new();
        // DFS over paths, accumulating probability and the service set.
        struct Frame {
            node: usize,
            prob: f64,
            services: BTreeSet<String>,
        }
        let mut stack: Vec<Frame> = Vec::new();
        for &(t, p) in &self.begin_edges {
            let mut services = BTreeSet::new();
            services.extend(self.stages[t].services.iter().cloned());
            stack.push(Frame {
                node: t,
                prob: p,
                services,
            });
        }
        while let Some(frame) = stack.pop() {
            for &(t, p) in &self.stages[frame.node].edges {
                match t {
                    None => {
                        out.push((frame.prob * p, frame.services.iter().cloned().collect()));
                    }
                    Some(t) => {
                        let mut services = frame.services.clone();
                        services.extend(self.stages[t].services.iter().cloned());
                        stack.push(Frame {
                            node: t,
                            prob: frame.prob * p,
                            services,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// Compiles the diagram into the function's availability expression
    /// `Σ_paths P(path) · Π_{distinct s ∈ path} A(s)`.
    ///
    /// # Errors
    ///
    /// [`CoreError::BadDiagram`] when Begin has no edges, a reachable
    /// stage's probabilities do not sum to one, or the diagram is cyclic.
    pub fn compile(&self) -> Result<AvailExpr, CoreError> {
        let scenarios = self.scenarios()?;
        let terms = scenarios
            .into_iter()
            .map(|(p, services)| {
                let expr = if services.is_empty() {
                    AvailExpr::constant(1.0)
                } else {
                    AvailExpr::product(services.into_iter().map(AvailExpr::param).collect())
                };
                (p, expr)
            })
            .collect();
        let expr = AvailExpr::weighted_sum(terms);
        expr.validate()?;
        Ok(expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env(entries: &[(&str, f64)]) -> HashMap<String, f64> {
        entries.iter().map(|(n, v)| (n.to_string(), *v)).collect()
    }

    /// Single stage using one service, straight through.
    #[test]
    fn trivial_diagram() {
        let mut d = InteractionDiagram::new();
        let s = d.add_stage(vec!["WS"]);
        d.connect_begin(s, 1.0).unwrap();
        d.connect_end(s, 1.0).unwrap();
        let expr = d.compile().unwrap();
        let a = expr.eval(&env(&[("WS", 0.97)])).unwrap();
        assert!((a - 0.97).abs() < 1e-15);
    }

    #[test]
    fn and_fork_uses_all_services() {
        // Search-like: one stage touching three reservation services.
        let mut d = InteractionDiagram::new();
        let fork = d.add_stage(vec!["Flight", "Hotel", "Car"]);
        d.connect_begin(fork, 1.0).unwrap();
        d.connect_end(fork, 1.0).unwrap();
        let a = d
            .compile()
            .unwrap()
            .eval(&env(&[("Flight", 0.9), ("Hotel", 0.8), ("Car", 0.7)]))
            .unwrap();
        assert!((a - 0.9 * 0.8 * 0.7).abs() < 1e-15);
    }

    #[test]
    fn branching_mixes_scenarios() {
        let mut d = InteractionDiagram::new();
        let first = d.add_stage(vec!["WS"]);
        let heavy = d.add_stage(vec!["AS"]);
        d.connect_begin(first, 1.0).unwrap();
        d.connect_end(first, 0.3).unwrap();
        d.connect(first, heavy, 0.7).unwrap();
        d.connect_end(heavy, 1.0).unwrap();
        let a = d
            .compile()
            .unwrap()
            .eval(&env(&[("WS", 0.9), ("AS", 0.5)]))
            .unwrap();
        let expected = 0.3 * 0.9 + 0.7 * 0.9 * 0.5;
        assert!((a - expected).abs() < 1e-15);
    }

    #[test]
    fn shared_service_counted_once_per_path() {
        // Two stages both using WS: availability must be linear in WS.
        let mut d = InteractionDiagram::new();
        let a1 = d.add_stage(vec!["WS"]);
        let a2 = d.add_stage(vec!["WS"]);
        d.connect_begin(a1, 1.0).unwrap();
        d.connect(a1, a2, 1.0).unwrap();
        d.connect_end(a2, 1.0).unwrap();
        let a = d.compile().unwrap().eval(&env(&[("WS", 0.9)])).unwrap();
        assert!((a - 0.9).abs() < 1e-15);
    }

    #[test]
    fn scenario_probabilities_sum_to_one() {
        let mut d = InteractionDiagram::new();
        let s1 = d.add_stage(vec!["A"]);
        let s2 = d.add_stage(vec!["B"]);
        let s3 = d.add_stage(vec!["C"]);
        d.connect_begin(s1, 1.0).unwrap();
        d.connect(s1, s2, 0.25).unwrap();
        d.connect(s1, s3, 0.35).unwrap();
        d.connect_end(s1, 0.4).unwrap();
        d.connect_end(s2, 1.0).unwrap();
        d.connect_end(s3, 1.0).unwrap();
        let scenarios = d.scenarios().unwrap();
        let total: f64 = scenarios.iter().map(|(p, _)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(scenarios.len(), 3);
    }

    #[test]
    fn rejects_unnormalized_or_empty() {
        let d = InteractionDiagram::new();
        assert!(matches!(d.compile(), Err(CoreError::BadDiagram { .. })));
        let mut d = InteractionDiagram::new();
        let s = d.add_stage(vec!["A"]);
        d.connect_begin(s, 1.0).unwrap();
        d.connect_end(s, 0.5).unwrap(); // missing 0.5
        assert!(matches!(d.compile(), Err(CoreError::BadDiagram { .. })));
    }

    #[test]
    fn rejects_cycles() {
        let mut d = InteractionDiagram::new();
        let a = d.add_stage(vec!["A"]);
        let b = d.add_stage(vec!["B"]);
        d.connect_begin(a, 1.0).unwrap();
        d.connect(a, b, 1.0).unwrap();
        d.connect(b, a, 0.5).unwrap();
        d.connect_end(b, 0.5).unwrap();
        assert!(matches!(d.compile(), Err(CoreError::BadDiagram { .. })));
    }

    #[test]
    fn rejects_bad_probabilities_and_nodes() {
        let mut d = InteractionDiagram::new();
        let s = d.add_stage(vec!["A"]);
        assert!(d.connect_begin(s, 0.0).is_err());
        assert!(d.connect_begin(s, f64::NAN).is_err());
        assert!(d.connect_begin(NodeId(9), 1.0).is_err());
        assert!(d.connect(s, NodeId(9), 1.0).is_err());
    }

    #[test]
    fn unreachable_stage_is_ignored() {
        let mut d = InteractionDiagram::new();
        let s = d.add_stage(vec!["A"]);
        let _orphan = d.add_stage(vec!["B"]); // no edges, unreachable
        d.connect_begin(s, 1.0).unwrap();
        d.connect_end(s, 1.0).unwrap();
        let a = d.compile().unwrap().eval(&env(&[("A", 0.5)])).unwrap();
        assert!((a - 0.5).abs() < 1e-15);
    }
}
