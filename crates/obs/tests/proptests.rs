//! Property-based tests for `uavail-obs`: the aggregation layer must be
//! exactly order-independent, because parallel sweeps merge per-thread
//! recorders in whatever order the scheduler finishes them.

use proptest::prelude::*;
use uavail_obs::{Histogram, Recorder, SpanStats};

/// Builds a recorder from a batch of `(metric index, value)` operations.
fn build(ops: &[(u8, u64)]) -> Recorder {
    let r = Recorder::new();
    for &(kind, value) in ops {
        match kind % 5 {
            0 => r.counter_add("c", value),
            1 => r.gauge_set("g", value),
            2 => r.histogram_record("h", value),
            3 => r.record_span("outer/inner", value),
            _ => r.label("l", &format!("v{}", value % 8)),
        }
    }
    r
}

proptest! {
    #[test]
    fn recorder_merge_is_order_independent(
        batches in prop::collection::vec(
            prop::collection::vec((0u8..5, 0u64..1_000_000), 0..20),
            1..6
        ),
        rotate in 0usize..6
    ) {
        let parts: Vec<Recorder> = batches.iter().map(|b| build(b)).collect();
        // Forward order, reverse order and an arbitrary rotation must all
        // fold to bit-identical snapshots.
        let forward = Recorder::new();
        for p in &parts {
            forward.merge(p);
        }
        let backward = Recorder::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        let rotated = Recorder::new();
        let k = rotate % parts.len();
        for p in parts[k..].iter().chain(&parts[..k]) {
            rotated.merge(p);
        }
        prop_assert_eq!(forward.snapshot(), backward.snapshot());
        prop_assert_eq!(forward.snapshot(), rotated.snapshot());
    }

    #[test]
    fn split_merge_equals_single_recorder(
        ops in prop::collection::vec((0u8..5, 0u64..1_000_000), 1..60),
        split in 0usize..60
    ) {
        // Recording everything in one recorder equals recording a prefix
        // and a suffix separately and merging — except for gauges, whose
        // last-write-wins semantics cannot survive a split, so this batch
        // uses no gauge operations.
        let ops: Vec<(u8, u64)> = ops
            .into_iter()
            .map(|(k, v)| (if k % 5 == 1 { 0 } else { k }, v))
            .collect();
        let split = split % ops.len();
        let whole = build(&ops);
        let merged = build(&ops[..split]);
        merged.merge(&build(&ops[split..]));
        prop_assert_eq!(whole.snapshot(), merged.snapshot());
    }

    #[test]
    fn histogram_merge_matches_pooled_samples(
        a in prop::collection::vec(0u64..u64::MAX / 4, 0..50),
        b in prop::collection::vec(0u64..u64::MAX / 4, 0..50)
    ) {
        let whole = Histogram::new();
        let left = Histogram::new();
        let right = Histogram::new();
        for &v in &a {
            whole.record(v);
            left.record(v);
        }
        for &v in &b {
            whole.record(v);
            right.record(v);
        }
        left.merge(&right);
        prop_assert_eq!(left.summary(), whole.summary());
    }

    #[test]
    fn span_stats_merge_commutes(
        a in prop::collection::vec(0u64..1_000_000_000, 0..30),
        b in prop::collection::vec(0u64..1_000_000_000, 0..30)
    ) {
        let ab = SpanStats::new();
        let ba = SpanStats::new();
        let (sa, sb) = (SpanStats::new(), SpanStats::new());
        for &v in &a {
            sa.record(v);
        }
        for &v in &b {
            sb.record(v);
        }
        ab.merge(&sa);
        ab.merge(&sb);
        ba.merge(&sb);
        ba.merge(&sa);
        prop_assert_eq!(ab.summary(), ba.summary());
    }

    #[test]
    fn json_lines_always_validate(
        ops in prop::collection::vec((0u8..5, 0u64..u64::MAX), 0..40)
    ) {
        let r = build(&ops);
        let text = r.snapshot().to_json_lines();
        let lines = uavail_obs::json::validate_lines(&text);
        prop_assert!(lines.is_ok(), "{}\n{}", lines.unwrap_err(), text);
    }
}
