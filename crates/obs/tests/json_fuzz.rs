//! Adversarial property tests for the artifact JSON parser.
//!
//! Every artifact the harness writes is re-read by the in-tree parser, so
//! the parser is attack surface for corrupted or hostile files. The
//! contract fuzzed here is *error-not-panic*: whatever the input — random
//! bytes, deep nesting, truncated escapes, surrogate halves — `parse`
//! returns `Ok` or `Err`, never panics, and never overflows the stack.

use proptest::prelude::*;
use uavail_obs::json::{parse, JsonValue, MAX_DEPTH};

/// Characters weighted toward JSON structure so random strings regularly
/// get deep into the parser instead of failing on byte one.
const JSON_ALPHABET: &[char] = &[
    '{', '}', '[', ']', '"', ':', ',', '\\', 'u', 'd', '8', '0', 'e', 'E', '+', '-', '.', '1', '9',
    'n', 't', 'f', 'a', 'l', 's', 'r', ' ', '\n', '\u{7f}', 'é', '😀',
];

fn json_soup(len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..JSON_ALPHABET.len(), len)
        .prop_map(|picks| picks.into_iter().map(|i| JSON_ALPHABET[i]).collect())
}

/// A generated JSON document that is valid by construction, so the fuzz
/// also covers the accepting paths, not just rejections. Keys are made
/// unique per object (the parser rejects duplicates by design), and only
/// finite floats are used (non-finite serialize as `null`).
fn json_value(depth: u32) -> BoxedStrategy<JsonValue> {
    let leaf = prop_oneof![
        Just(JsonValue::Null),
        any::<bool>().prop_map(JsonValue::Bool),
        any::<u64>().prop_map(JsonValue::UInt),
        (-1.0e15f64..1.0e15).prop_map(JsonValue::Float),
        json_soup(0..12).prop_map(JsonValue::Str),
    ];
    leaf.prop_recursive(depth, 32, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..4).prop_map(JsonValue::Array),
            prop::collection::vec(inner, 0..4).prop_map(|vals| {
                JsonValue::Object(
                    vals.into_iter()
                        .enumerate()
                        .map(|(i, v)| (format!("k{i}"), v))
                        .collect(),
                )
            }),
        ]
    })
}

proptest! {
    #[test]
    fn arbitrary_soup_never_panics(text in json_soup(0..200)) {
        // Ok or Err are both fine; reaching this line at all is the test.
        let _ = parse(&text);
    }

    #[test]
    fn truncated_valid_documents_never_panic(
        value in json_value(4),
        cut in 0usize..400
    ) {
        let text = value.to_string();
        // Truncate at an arbitrary char boundary: mid-string, mid-escape,
        // mid-number, mid-literal. The parser must reject gracefully.
        let cut = text
            .char_indices()
            .map(|(i, _)| i)
            .take_while(|&i| i <= cut)
            .last()
            .unwrap_or(0);
        let _ = parse(&text[..cut]);
    }

    #[test]
    fn valid_documents_round_trip(value in json_value(4)) {
        let text = value.to_string();
        let back = parse(&text)
            .unwrap_or_else(|e| panic!("emitter produced unparseable JSON: {e}\n{text}"));
        prop_assert_eq!(back, value);
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing(
        depth in 1usize..4000,
        brace in any::<bool>()
    ) {
        let open = if brace { "{\"k\":".repeat(depth) } else { "[".repeat(depth) };
        let result = parse(&open);
        if depth > MAX_DEPTH {
            // Unclosed *and* too deep — but the depth bound must kick in
            // before the truncation error can be reached on huge inputs.
            prop_assert!(result.is_err());
        } else {
            prop_assert!(result.is_err(), "unclosed containers must not parse");
        }
        // Balanced nesting: within the bound parses, beyond errors.
        let closed = format!("{}1{}", "[".repeat(depth), "]".repeat(depth));
        prop_assert_eq!(parse(&closed).is_ok(), depth <= MAX_DEPTH);
    }

    #[test]
    fn escape_and_surrogate_corruptions_never_panic(
        hex in 0u32..0x1_0000,
        tail in json_soup(0..8)
    ) {
        // Lone halves (D800–DFFF) must be rejected; everything else must
        // round-trip or error — never panic in the char decoder.
        let lone = format!("\"\\u{hex:04x}\"");
        let parsed = parse(&lone);
        if (0xD800..0xE000).contains(&hex) {
            prop_assert!(parsed.is_err(), "lone surrogate {hex:04x} accepted");
        } else {
            prop_assert!(parsed.is_ok(), "{lone}: {parsed:?}");
        }
        // A high surrogate followed by arbitrary garbage instead of its
        // low half, and escapes truncated mid-hex.
        let _ = parse(&format!("\"\\ud83d{tail}\""));
        let _ = parse(&format!("\"\\ud83d\\u{tail}\""));
        let _ = parse(&format!("\"\\u{}\"", &format!("{hex:04x}")[..2]));
    }
}
