//! Span-scoped hierarchical wall-clock timers.
//!
//! A [`SpanGuard`] measures the wall-clock time between its creation and
//! its drop and files it under a `/`-separated path built from the
//! thread-local stack of open spans — `reproduce/fig11/figure_sweep`
//! reads as "the figure sweep, inside fig11, inside the reproduce run".
//! Guards created while recording is disabled are inert: no clock read,
//! no allocation, no stack push.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timings of one span path, on lock-free atomics so worker
/// threads can report concurrently and merges are order-independent.
#[derive(Debug, Default)]
pub struct SpanStats {
    count: AtomicU64,
    total_nanos: AtomicU64,
    min_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl SpanStats {
    /// Creates empty stats.
    pub fn new() -> Self {
        let s = SpanStats::default();
        s.min_nanos.store(u64::MAX, Ordering::Relaxed);
        s
    }

    /// Records one completed span of `nanos` wall-clock nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.min_nanos.fetch_min(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Adds `other`'s recordings into `self` (integer sums/min/max, so
    /// merge order never matters).
    pub fn merge(&self, other: &SpanStats) {
        let other_count = other.count.load(Ordering::Relaxed);
        if other_count == 0 {
            return;
        }
        self.count.fetch_add(other_count, Ordering::Relaxed);
        self.total_nanos
            .fetch_add(other.total_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min_nanos
            .fetch_min(other.min_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_nanos
            .fetch_max(other.max_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Immutable summary of the current state.
    pub fn summary(&self) -> SpanSummary {
        let count = self.count.load(Ordering::Relaxed);
        let total_nanos = self.total_nanos.load(Ordering::Relaxed);
        SpanSummary {
            count,
            total_nanos,
            min_nanos: if count == 0 {
                0
            } else {
                self.min_nanos.load(Ordering::Relaxed)
            },
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
            mean_nanos: if count == 0 {
                0.0
            } else {
                total_nanos as f64 / count as f64
            },
        }
    }
}

/// Point-in-time summary of a [`SpanStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanSummary {
    /// Completed spans under this path.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_nanos: u64,
    /// Shortest span (0 when empty).
    pub min_nanos: u64,
    /// Longest span (0 when empty).
    pub max_nanos: u64,
    /// Mean span duration (0 when empty).
    pub mean_nanos: f64,
}

/// RAII guard for one open span; see [`crate::span`].
///
/// Besides the aggregated timing, the guard mirrors itself onto the trace
/// timeline (a `B` event on entry, an `E` event on drop) whenever trace
/// recording is on. Drop glue runs during unwinding too, so a panic
/// inside a span still records the frame and closes its trace event —
/// pinned by the `span_records_on_unwind` test.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records nothing useful"]
#[derive(Debug)]
pub struct SpanGuard {
    start: Option<Instant>,
    traced: Option<&'static str>,
}

impl SpanGuard {
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        let traced = if crate::trace_enabled() {
            crate::trace::trace_begin(name);
            Some(name)
        } else {
            None
        };
        if !crate::enabled() {
            return SpanGuard {
                start: None,
                traced,
            };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            start: Some(Instant::now()),
            traced,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.traced {
            crate::trace::trace_end(name);
        }
        let Some(start) = self.start else { return };
        let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            stack.pop();
            path
        });
        crate::global().record_span(&path, nanos);
    }
}

/// Times one region and records the elapsed nanoseconds into a named
/// histogram on drop — the flat (non-hierarchical) counterpart of
/// [`SpanGuard`], right for per-item timings inside parallel loops where
/// worker threads have no span context.
#[must_use = "a stopwatch records on drop; dropping it immediately measures nothing"]
#[derive(Debug)]
pub struct Stopwatch {
    name: &'static str,
    start: Option<Instant>,
}

impl Stopwatch {
    /// Starts a stopwatch for histogram `name`; inert while recording is
    /// disabled.
    pub fn start(name: &'static str) -> Stopwatch {
        Stopwatch {
            name,
            start: crate::enabled().then(Instant::now),
        }
    }
}

impl Drop for Stopwatch {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            crate::global().histogram_record(self.name, nanos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_stats_merge_matches_single() {
        let whole = SpanStats::new();
        let a = SpanStats::new();
        let b = SpanStats::new();
        for v in [5u64, 100, 2, 77, 31] {
            whole.record(v);
        }
        a.record(5);
        a.record(100);
        b.record(2);
        b.record(77);
        b.record(31);
        a.merge(&b);
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = SpanStats::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min_nanos, 0);
        assert_eq!(s.max_nanos, 0);
        assert_eq!(s.mean_nanos, 0.0);
    }

    #[test]
    fn span_records_on_unwind() {
        // A panic inside a span must not lose the frame: the guard's
        // drop glue runs during unwinding, so both the aggregated span
        // and the trace timeline keep the event. Without this, a single
        // failed sweep point would silently hole the whole timeline.
        use crate::trace::{self, TracePhase};
        let _guard = crate::test_support::lock();
        crate::set_enabled(true);
        crate::reset();
        trace::set_trace_enabled(true);
        trace::reset();

        let unwound = std::panic::catch_unwind(|| {
            let _span = crate::span("doomed");
            panic!("boom inside span");
        });
        assert!(unwound.is_err());

        trace::set_trace_enabled(false);
        crate::set_enabled(false);
        let snap = crate::global().snapshot();
        let data = trace::take_trace();
        trace::reset();
        crate::reset();

        assert_eq!(snap.spans["doomed"].count, 1, "unwound span recorded");
        let doomed: Vec<TracePhase> = data
            .events
            .iter()
            .filter(|e| e.name == "doomed")
            .map(|e| e.phase)
            .collect();
        assert_eq!(
            doomed,
            vec![TracePhase::Begin, TracePhase::End],
            "trace span closed during unwind"
        );
        // The span stack unwound cleanly: a fresh span lands at the root
        // path, not under "doomed/".
        crate::set_enabled(true);
        crate::reset();
        drop(crate::span("after"));
        crate::set_enabled(false);
        let after = crate::global().snapshot();
        crate::reset();
        assert_eq!(after.spans["after"].count, 1);
    }
}
