//! Numerical-health gauges: `f64` min/max/count channels fed by the
//! solvers.
//!
//! Counters and histograms answer "how much work"; health gauges answer
//! "how well-conditioned was it" — LU pivot-magnitude minima and solve
//! residuals, GTH steady-state probability drift and `‖πQ‖∞`, M/M/c/K
//! normalization error, composite-model tolerance headroom. Values are
//! `f64`, so the usual integer-sum aggregation does not apply; instead a
//! [`HealthStats`] keeps only **count, min and max** — the only `f64`
//! reductions that are exactly commutative and associative, which keeps
//! [`crate::Recorder::merge`] order-independent (an `f64` running *sum*
//! would make merged snapshots depend on merge order). Extremes are also
//! exactly what health questions need: the *worst* residual, the
//! *smallest* pivot.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free aggregate of one health channel: how many values were
/// recorded and their exact min/max. `f64` payloads live in `AtomicU64`
/// bit patterns, updated by compare-exchange on the numeric ordering.
#[derive(Debug)]
pub struct HealthStats {
    count: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for HealthStats {
    fn default() -> Self {
        HealthStats::new()
    }
}

/// CAS-loops `value` into `cell` whenever `better` says it improves on
/// the current occupant.
fn update_extreme(cell: &AtomicU64, value: f64, better: impl Fn(f64, f64) -> bool) {
    let mut current = cell.load(Ordering::Relaxed);
    while better(value, f64::from_bits(current)) {
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(observed) => current = observed,
        }
    }
}

impl HealthStats {
    /// Creates an empty channel.
    pub fn new() -> Self {
        HealthStats {
            count: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Records one observation. `NaN` counts but cannot order, so it
    /// leaves min/max untouched.
    pub fn record(&self, value: f64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        if value.is_nan() {
            return;
        }
        update_extreme(&self.min_bits, value, |v, cur| v < cur);
        update_extreme(&self.max_bits, value, |v, cur| v > cur);
    }

    /// Folds `other` into `self`; count/min/max merging is
    /// order-independent by construction.
    pub fn merge(&self, other: &HealthStats) {
        let other_count = other.count.load(Ordering::Relaxed);
        if other_count == 0 {
            return;
        }
        self.count.fetch_add(other_count, Ordering::Relaxed);
        let min = f64::from_bits(other.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(other.max_bits.load(Ordering::Relaxed));
        update_extreme(&self.min_bits, min, |v, cur| v < cur);
        update_extreme(&self.max_bits, max, |v, cur| v > cur);
    }

    /// Immutable summary of the current state.
    pub fn summary(&self) -> HealthSummary {
        let count = self.count.load(Ordering::Relaxed);
        let min = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        let max = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        HealthSummary {
            count,
            min: if min.is_finite() { min } else { 0.0 },
            max: if max.is_finite() { max } else { 0.0 },
        }
    }
}

/// Point-in-time summary of a [`HealthStats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSummary {
    /// Observations recorded.
    pub count: u64,
    /// Smallest finite observation (0 when empty).
    pub min: f64,
    /// Largest finite observation (0 when empty).
    pub max: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_extremes_and_count() {
        let h = HealthStats::new();
        for v in [3e-16, -2.0, 7.5, 0.0] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, -2.0);
        assert_eq!(s.max, 7.5);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = HealthStats::new().summary();
        assert_eq!(
            s,
            HealthSummary {
                count: 0,
                min: 0.0,
                max: 0.0
            }
        );
    }

    #[test]
    fn nan_counts_but_does_not_order() {
        let h = HealthStats::new();
        h.record(f64::NAN);
        h.record(1.0);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!((s.min, s.max), (1.0, 1.0));
    }

    #[test]
    fn merge_is_order_independent() {
        let parts: Vec<HealthStats> = (0..4)
            .map(|i| {
                let h = HealthStats::new();
                h.record(f64::from(i) * 0.25 - 0.3);
                h.record(f64::from(i * i));
                h
            })
            .collect();
        let forward = HealthStats::new();
        for p in &parts {
            forward.merge(p);
        }
        let backward = HealthStats::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward.summary(), backward.summary());
        assert_eq!(forward.summary().count, 8);
        assert_eq!(forward.summary().min, -0.3);
        assert_eq!(forward.summary().max, 9.0);
    }

    #[test]
    fn concurrent_records_land_exactly() {
        let h = HealthStats::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = &h;
                scope.spawn(move || {
                    for i in 0..1000 {
                        h.record(f64::from(t * 1000 + i));
                    }
                });
            }
        });
        let s = h.summary();
        assert_eq!(s.count, 4000);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 3999.0);
    }
}
