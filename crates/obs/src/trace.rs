//! Lock-free, thread-local trace-event buffers and a Chrome/Perfetto
//! `trace_event` exporter.
//!
//! Where the metric layer (`counter_add`, [`crate::span`]) aggregates,
//! tracing keeps the *sequence*: every begin/end/instant event lands in a
//! bounded per-thread ring with a monotonic timestamp, so a `figure12
//! --parallel` run can be opened in Perfetto and read as per-worker
//! timelines — which worker ran which sweep point, where the loss-cache
//! stalls are, how long each solver call took.
//!
//! The recording path takes no lock and allocates only on the first event
//! of a thread (the ring itself): one relaxed atomic load while tracing
//! is off, a `RefCell` borrow plus a `Vec` write while on. When a ring is
//! full, *new* events are dropped and counted ([`TraceData::dropped`]) —
//! dropping the newest keeps every retained per-thread sequence a
//! contiguous, time-ordered prefix. Rings of exited threads flush into a
//! global sink; [`take_trace`] drains that sink plus the calling thread's
//! ring, which covers the scoped-worker pattern of `par_map_threads_with`
//! (workers always exit before the harness exports).

use crate::json::JsonValue;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default per-thread ring capacity, in events. At ~64 bytes per event a
/// full ring is ~4 MiB; a 180-point figure sweep with per-point spans and
/// cache instants stays well below it.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Event kind, mirroring the Chrome `trace_event` phases we emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// Span opened (`ph: "B"`).
    Begin,
    /// Span closed (`ph: "E"`).
    End,
    /// Point event (`ph: "i"`).
    Instant,
}

impl TracePhase {
    fn code(self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }
}

/// One recorded event. Metadata is deliberately static-only (a `'static`
/// name plus at most one numeric argument) so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Small dense thread id (1-based, process-wide).
    pub tid: u64,
    /// Nanoseconds since the process trace epoch; monotonic per thread.
    pub ts_ns: u64,
    /// Begin / end / instant.
    pub phase: TracePhase,
    /// Event name.
    pub name: &'static str,
    /// Optional `(key, value)` argument, e.g. `("shard", 3.0)`.
    pub arg: Option<(&'static str, f64)>,
}

/// Everything [`take_trace`] collected: the events plus how many were
/// dropped to ring overflow.
#[derive(Debug, Clone, Default)]
pub struct TraceData {
    /// Collected events; per-tid subsequences are in recording order.
    pub events: Vec<TraceEvent>,
    /// Events lost to full rings across all contributing threads.
    pub dropped: u64,
}

impl TraceData {
    /// Renders the events as a Chrome/Perfetto `trace_event` JSON array
    /// (`chrome://tracing`, <https://ui.perfetto.dev>). Events are
    /// stably sorted by timestamp, so per-thread order survives;
    /// timestamps are fractional microseconds as the format requires.
    pub fn to_chrome_trace(&self) -> String {
        let mut ordered: Vec<&TraceEvent> = self.events.iter().collect();
        ordered.sort_by_key(|e| e.ts_ns);
        let mut out = String::with_capacity(ordered.len() * 96 + 2);
        out.push('[');
        for (i, e) in ordered.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut fields = vec![
                ("name", JsonValue::str(e.name)),
                ("ph", JsonValue::str(e.phase.code())),
                ("pid", JsonValue::UInt(1)),
                ("tid", JsonValue::UInt(e.tid)),
                ("ts", JsonValue::Float(e.ts_ns as f64 / 1e3)),
            ];
            if e.phase == TracePhase::Instant {
                // Thread-scoped instants render as ticks on their track.
                fields.push(("s", JsonValue::str("t")));
            }
            if let Some((key, value)) = e.arg {
                fields.push((
                    "args",
                    JsonValue::object(vec![(key, JsonValue::Float(value))]),
                ));
            }
            out.push_str(&JsonValue::object(fields).to_string());
        }
        out.push(']');
        out
    }
}

/// Checks that `text` is a well-formed Chrome trace: a JSON array whose
/// elements carry `name`/`ph`/`pid`/`tid`/`ts`, with `ph` one of
/// `B`/`E`/`X`/`i` and `ts` non-decreasing within each `tid`.
///
/// # Errors
///
/// A description of the first offending event.
///
/// Returns the event count on success.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let parsed = crate::json::parse(text)?;
    let events = parsed
        .as_array()
        .ok_or_else(|| "chrome trace must be a JSON array".to_string())?;
    let mut last_ts: std::collections::HashMap<u64, f64> = std::collections::HashMap::new();
    for (i, event) in events.iter().enumerate() {
        let field = |key: &str| {
            event
                .get(key)
                .ok_or_else(|| format!("event {i}: missing {key:?}"))
        };
        field("name")?
            .as_str()
            .ok_or_else(|| format!("event {i}: name must be a string"))?;
        let ph = field("ph")?
            .as_str()
            .ok_or_else(|| format!("event {i}: ph must be a string"))?;
        if !matches!(ph, "B" | "E" | "X" | "i") {
            return Err(format!("event {i}: unexpected phase {ph:?}"));
        }
        field("pid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: pid must be an integer"))?;
        let tid = field("tid")?
            .as_u64()
            .ok_or_else(|| format!("event {i}: tid must be an integer"))?;
        let ts = field("ts")?
            .as_f64()
            .ok_or_else(|| format!("event {i}: ts must be a number"))?;
        if let Some(&prev) = last_ts.get(&tid) {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards on tid {tid} (previous {prev})"
                ));
            }
        }
        last_ts.insert(tid, ts);
    }
    Ok(events.len())
}

static TRACE_ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
/// Running total of events lost to ring overflow since the last
/// [`reset`], across all threads. Unlike [`TraceData::dropped`] this
/// survives [`take_trace`] drains, so overflow that happened before an
/// export is never silently forgotten — the metrics artifact and the
/// `/metrics` endpoint publish it as the `trace.dropped` counter.
static DROPPED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Events lost to ring overflow since the last [`reset`], process-wide.
pub fn dropped_total() -> u64 {
    DROPPED_TOTAL.load(Ordering::Relaxed)
}
/// Capacity applied to rings created after the last [`reset`]; settable
/// (before recording) so overflow behaviour is testable.
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_TRACE_CAPACITY);

/// Events of exited threads (flushed by the thread-local ring's `Drop`)
/// plus their overflow drop counts.
static SINK: Mutex<TraceData> = Mutex::new(TraceData {
    events: Vec::new(),
    dropped: 0,
});

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_ns() -> u64 {
    u64::try_from(epoch().elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Turns trace recording on or off. Independent of [`crate::set_enabled`]
/// so timelines can be captured with or without the metric layer; off
/// (the default) makes every trace call a single relaxed atomic load.
pub fn set_trace_enabled(on: bool) {
    if on {
        // Pin the epoch before the first event so timestamps stay small.
        epoch();
    }
    TRACE_ENABLED.store(on, Ordering::SeqCst);
}

/// Whether trace recording is on. Call sites that need to prepare an
/// argument should check this first so the disabled path does no work.
#[inline]
pub fn trace_enabled() -> bool {
    TRACE_ENABLED.load(Ordering::Relaxed)
}

/// Caps rings created from now on at `capacity` events (test hook; the
/// default is [`DEFAULT_TRACE_CAPACITY`]). Existing rings keep theirs
/// until [`reset`] discards them.
pub fn set_trace_capacity(capacity: usize) {
    RING_CAPACITY.store(capacity.max(1), Ordering::SeqCst);
}

struct Ring {
    tid: u64,
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Ring {
    fn new() -> Ring {
        Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
            capacity: RING_CAPACITY.load(Ordering::Relaxed),
            dropped: 0,
        }
    }

    fn push(&mut self, phase: TracePhase, name: &'static str, arg: Option<(&'static str, f64)>) {
        if self.events.len() >= self.capacity {
            self.dropped += 1;
            DROPPED_TOTAL.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.events.push(TraceEvent {
            tid: self.tid,
            ts_ns: now_ns(),
            phase,
            name,
            arg,
        });
    }

    fn flush_into(&mut self, sink: &mut TraceData) {
        sink.events.append(&mut self.events);
        sink.dropped += self.dropped;
        self.dropped = 0;
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Thread exit: hand the ring's events to the global sink so
        // scoped workers' timelines survive them.
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        self.flush_into(&mut sink);
    }
}

thread_local! {
    static LOCAL_RING: RefCell<Option<Ring>> = const { RefCell::new(None) };
}

fn record(phase: TracePhase, name: &'static str, arg: Option<(&'static str, f64)>) {
    if !trace_enabled() {
        return;
    }
    // try_with: a drop during thread teardown must not abort the process.
    let _ = LOCAL_RING.try_with(|cell| {
        cell.borrow_mut()
            .get_or_insert_with(Ring::new)
            .push(phase, name, arg);
    });
}

/// Records a span-begin event on the current thread; no-op while tracing
/// is off.
#[inline]
pub fn trace_begin(name: &'static str) {
    record(TracePhase::Begin, name, None);
}

/// Records a span-begin event carrying one `(key, value)` argument.
#[inline]
pub fn trace_begin_arg(name: &'static str, key: &'static str, value: f64) {
    record(TracePhase::Begin, name, Some((key, value)));
}

/// Records a span-end event on the current thread; no-op while tracing
/// is off.
#[inline]
pub fn trace_end(name: &'static str) {
    record(TracePhase::End, name, None);
}

/// Records an instant event on the current thread; no-op while tracing
/// is off.
#[inline]
pub fn trace_instant(name: &'static str) {
    record(TracePhase::Instant, name, None);
}

/// Records an instant event carrying one `(key, value)` argument.
#[inline]
pub fn trace_instant_arg(name: &'static str, key: &'static str, value: f64) {
    record(TracePhase::Instant, name, Some((key, value)));
}

/// RAII pair of [`trace_begin`]/[`trace_end`]: emits `B` on creation and
/// `E` on drop (including unwinds). Inert while tracing is off.
#[must_use = "a trace span marks the scope it is bound to; dropping it immediately records an empty span"]
#[derive(Debug)]
pub struct TraceSpan {
    name: Option<&'static str>,
}

impl TraceSpan {
    /// Opens a trace span named `name`.
    pub fn enter(name: &'static str) -> TraceSpan {
        if !trace_enabled() {
            return TraceSpan { name: None };
        }
        trace_begin(name);
        TraceSpan { name: Some(name) }
    }

    /// Opens a trace span whose begin event carries one argument.
    pub fn enter_with_arg(name: &'static str, key: &'static str, value: f64) -> TraceSpan {
        if !trace_enabled() {
            return TraceSpan { name: None };
        }
        trace_begin_arg(name, key, value);
        TraceSpan { name: Some(name) }
    }
}

impl Drop for TraceSpan {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            trace_end(name);
        }
    }
}

/// Drains every flushed ring plus the calling thread's ring into one
/// [`TraceData`]. Rings of threads that are still alive (other than the
/// caller) are not visible until those threads exit or call
/// [`flush_current_thread`] — the engine's worker loops flush explicitly
/// before returning, because a joined `std::thread::scope` does not imply
/// its workers' thread-local destructors have run.
pub fn take_trace() -> TraceData {
    let mut data = {
        let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
        std::mem::take(&mut *sink)
    };
    let _ = LOCAL_RING.try_with(|cell| {
        if let Some(ring) = cell.borrow_mut().as_mut() {
            ring.flush_into(&mut data);
        }
    });
    data
}

/// Flushes the calling thread's ring into the global sink without waiting
/// for thread exit.
///
/// `std::thread::scope` joins when a worker's *closure* finishes, which
/// happens before the worker's thread-local destructors run — so a
/// freshly-joined scope does not guarantee its workers' rings reached the
/// sink yet, and a [`take_trace`] racing that teardown window silently
/// loses those workers' events. Worker loops call this as their last act
/// so everything they recorded is visible the moment the scope returns.
pub fn flush_current_thread() {
    let _ = LOCAL_RING.try_with(|cell| {
        if let Some(ring) = cell.borrow_mut().as_mut() {
            if !ring.events.is_empty() || ring.dropped > 0 {
                let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
                ring.flush_into(&mut sink);
            }
        }
    });
}

/// Discards all buffered trace events and drop counts (sink and calling
/// thread) and re-arms the ring capacity for the next recording.
pub fn reset() {
    let mut sink = SINK.lock().unwrap_or_else(|e| e.into_inner());
    sink.events.clear();
    sink.dropped = 0;
    drop(sink);
    DROPPED_TOTAL.store(0, Ordering::SeqCst);
    let _ = LOCAL_RING.try_with(|cell| {
        // Dropping the ring would flush into the sink; discard instead.
        if let Some(ring) = cell.borrow_mut().as_mut() {
            ring.events.clear();
            ring.dropped = 0;
            ring.capacity = RING_CAPACITY.load(Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state is process-global; tests of it serialize here.
    fn with_tracing<R>(capacity: usize, f: impl FnOnce() -> R) -> R {
        let _guard = crate::test_support::lock();
        set_trace_capacity(capacity);
        set_trace_enabled(true);
        reset();
        let result = f();
        set_trace_enabled(false);
        set_trace_capacity(DEFAULT_TRACE_CAPACITY);
        reset();
        result
    }

    #[test]
    fn disabled_records_nothing() {
        assert!(!trace_enabled());
        trace_instant("ignored");
        let _span = TraceSpan::enter("ignored");
    }

    #[test]
    fn spans_and_instants_round_trip_through_chrome_export() {
        let data = with_tracing(DEFAULT_TRACE_CAPACITY, || {
            {
                let _outer = TraceSpan::enter("outer");
                trace_instant_arg("cache.hit", "shard", 3.0);
                let _inner = TraceSpan::enter_with_arg("inner", "point", 7.0);
            }
            take_trace()
        });
        assert_eq!(data.dropped, 0);
        let phases: Vec<TracePhase> = data.events.iter().map(|e| e.phase).collect();
        assert_eq!(
            phases,
            vec![
                TracePhase::Begin,
                TracePhase::Instant,
                TracePhase::Begin,
                TracePhase::End,
                TracePhase::End,
            ]
        );
        let json = data.to_chrome_trace();
        let count = validate_chrome_trace(&json).unwrap_or_else(|e| panic!("{e}\n{json}"));
        assert_eq!(count, 5);
        assert!(json.contains("\"args\":{\"shard\":3.0}"), "{json}");
        assert!(json.contains("\"s\":\"t\""), "instants are thread-scoped");
    }

    #[test]
    fn worker_threads_flush_on_exit_and_keep_distinct_tids() {
        let data = with_tracing(DEFAULT_TRACE_CAPACITY, || {
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    scope.spawn(|| {
                        let _w = TraceSpan::enter("worker");
                        trace_instant("tick");
                    });
                }
            });
            take_trace()
        });
        let tids: std::collections::BTreeSet<u64> = data.events.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 3, "one tid per worker: {tids:?}");
        assert_eq!(data.events.len(), 9, "B + i + E per worker");
        validate_chrome_trace(&data.to_chrome_trace()).unwrap();
    }

    #[test]
    fn overflow_drops_newest_and_counts_exactly() {
        const CAP: usize = 8;
        const TOTAL: usize = 30;
        let (data, total_after_drain) = with_tracing(CAP, || {
            for _ in 0..TOTAL {
                trace_instant("tick");
            }
            let data = take_trace();
            // The process-wide total survives the take_trace drain.
            (data, dropped_total())
        });
        assert_eq!(data.events.len(), CAP);
        assert_eq!(data.dropped, (TOTAL - CAP) as u64);
        assert_eq!(total_after_drain, (TOTAL - CAP) as u64);
        // The retained prefix is still a valid, monotonic timeline.
        let json = data.to_chrome_trace();
        assert_eq!(validate_chrome_trace(&json).unwrap(), CAP);
        for pair in data.events.windows(2) {
            assert!(pair[0].ts_ns <= pair[1].ts_ns);
        }
    }

    #[test]
    fn chrome_validator_rejects_defects() {
        assert!(validate_chrome_trace("{}").is_err(), "not an array");
        assert!(
            validate_chrome_trace(r#"[{"name":"x","ph":"Q","pid":1,"tid":1,"ts":0}]"#).is_err(),
            "unknown phase"
        );
        assert!(
            validate_chrome_trace(r#"[{"ph":"B","pid":1,"tid":1,"ts":0}]"#).is_err(),
            "missing name"
        );
        assert!(
            validate_chrome_trace(
                r#"[{"name":"a","ph":"B","pid":1,"tid":1,"ts":5.0},
                    {"name":"a","ph":"E","pid":1,"tid":1,"ts":4.0}]"#
            )
            .is_err(),
            "ts must be monotonic per tid"
        );
        // Interleaved tids are fine as long as each is monotonic.
        validate_chrome_trace(
            r#"[{"name":"a","ph":"B","pid":1,"tid":1,"ts":1.0},
                {"name":"b","ph":"B","pid":1,"tid":2,"ts":0.5},
                {"name":"a","ph":"E","pid":1,"tid":1,"ts":2.0},
                {"name":"b","ph":"E","pid":1,"tid":2,"ts":2.5}]"#,
        )
        .unwrap();
    }
}
