//! Sliding-window aggregation: rings of per-epoch counters and
//! histograms with deterministic, clock-injected rotation.
//!
//! The one-shot recorder ([`crate::Recorder`]) accumulates forever —
//! right for end-of-run artifacts, wrong for a resident evaluator where
//! "availability over the last minute" is the question. A
//! [`SlidingWindow`] (histogram) or [`WindowCounter`] (sum) keeps a ring
//! of `epochs` fixed-width epochs of `epoch_ns` nanoseconds each;
//! recording into epoch `e` clears every epoch the clock skipped since
//! the last touch, so the window always covers the most recent
//! `epochs · epoch_ns` of logical time.
//!
//! **The clock is injected.** Every mutating call takes `now_ns`
//! explicitly and nothing here reads `Instant::now()`, so window contents
//! are a pure function of the (timestamp, value) sequence — tests and
//! replays are exactly reproducible, and the serve loop can drive the
//! telemetry clock from its own pinned schedule. Time never moves
//! backwards: a stale `now_ns` records into the current head epoch.
//!
//! The process-wide telemetry clock ([`clock_advance_to`] /
//! [`clock_now_ns`]) is the single logical "now" shared by the global
//! window registry ([`window_record`]) and the SLO monitor
//! ([`crate::slo`]); it only ever ratchets forward.

use crate::histogram::{bucket_upper_bound, quantile, BUCKET_COUNT};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Default epoch width for global windows: one second.
pub const DEFAULT_EPOCH_NS: u64 = 1_000_000_000;
/// Default ring length for global windows: a one-minute window.
pub const DEFAULT_EPOCHS: usize = 60;

/// Ring-of-epochs bookkeeping shared by [`SlidingWindow`] and
/// [`WindowCounter`]: which slot is the head, how many slots are live,
/// and which slots a clock advance retires.
#[derive(Debug, Clone)]
struct EpochRing<T> {
    epoch_ns: u64,
    slots: Vec<T>,
    /// Epoch index (`now_ns / epoch_ns`) of the newest live slot.
    head: u64,
    /// Live (initialized) slots, `0..=slots.len()`; 0 until first touch.
    live: usize,
}

impl<T> EpochRing<T> {
    fn new(epoch_ns: u64, epochs: usize, make: impl Fn() -> T) -> EpochRing<T> {
        let len = epochs.max(1);
        EpochRing {
            epoch_ns: epoch_ns.max(1),
            slots: (0..len).map(|_| make()).collect(),
            head: 0,
            live: 0,
        }
    }

    /// Advances the ring to the epoch containing `now_ns`, clearing every
    /// slot the clock skipped. A `now_ns` before the head is clamped to
    /// the head (time never rewinds).
    fn rotate_to(&mut self, now_ns: u64, clear: impl Fn(&mut T)) {
        let epoch = now_ns / self.epoch_ns;
        let len = self.slots.len();
        if self.live == 0 {
            self.head = epoch;
            self.live = 1;
            clear(&mut self.slots[(epoch % len as u64) as usize]);
            return;
        }
        if epoch <= self.head {
            return;
        }
        let advance = (epoch - self.head).min(len as u64) as usize;
        for step in 1..=advance {
            let idx = ((self.head + step as u64) % len as u64) as usize;
            clear(&mut self.slots[idx]);
        }
        self.head = epoch;
        self.live = (self.live + advance).min(len);
    }

    fn head_slot(&mut self) -> &mut T {
        let len = self.slots.len() as u64;
        let idx = (self.head % len) as usize;
        &mut self.slots[idx]
    }

    /// The live slots, oldest-first order not guaranteed (merges below
    /// are commutative, so order is irrelevant).
    fn live_slots(&self) -> impl Iterator<Item = &T> {
        let len = self.slots.len() as u64;
        let head = self.head;
        let live = self.live;
        (0..live as u64).map(move |back| {
            let idx = ((head + len - back) % len) as usize;
            &self.slots[idx]
        })
    }

    /// Nanoseconds of logical time the live slots cover.
    fn window_ns(&self) -> u64 {
        self.live as u64 * self.epoch_ns
    }
}

/// Per-epoch histogram state: the same log₂ buckets as
/// [`crate::Histogram`], in plain integers (windows mutate behind `&mut`
/// or a registry lock, so atomics would buy nothing).
#[derive(Debug, Clone)]
struct EpochHist {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl EpochHist {
    fn empty() -> EpochHist {
        EpochHist {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn clear(&mut self) {
        *self = EpochHist::empty();
    }

    fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// A sliding histogram window: log₂-bucket distribution of the samples
/// recorded over the most recent `epochs · epoch_ns` of logical time.
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    ring: EpochRing<EpochHist>,
}

impl SlidingWindow {
    /// Creates a window of `epochs` epochs of `epoch_ns` nanoseconds
    /// each; both are clamped to at least 1.
    pub fn new(epoch_ns: u64, epochs: usize) -> SlidingWindow {
        SlidingWindow {
            ring: EpochRing::new(epoch_ns, epochs, EpochHist::empty),
        }
    }

    /// Advances the window to `now_ns`, retiring epochs the clock
    /// skipped, without recording anything.
    pub fn rotate_to(&mut self, now_ns: u64) {
        self.ring.rotate_to(now_ns, EpochHist::clear);
    }

    /// Records one sample at logical time `now_ns`.
    pub fn record(&mut self, now_ns: u64, value: u64) {
        self.rotate_to(now_ns);
        self.ring.head_slot().record(value);
    }

    /// Merged summary of the live epochs as of `now_ns`.
    pub fn summary(&mut self, now_ns: u64) -> WindowSummary {
        self.rotate_to(now_ns);
        let mut buckets = [0u64; BUCKET_COUNT];
        let (mut count, mut sum, mut min, mut max) = (0u64, 0u64, u64::MAX, 0u64);
        for slot in self.ring.live_slots() {
            for (acc, b) in buckets.iter_mut().zip(&slot.buckets) {
                *acc += b;
            }
            count += slot.count;
            sum = sum.wrapping_add(slot.sum);
            min = min.min(slot.min);
            max = max.max(slot.max);
        }
        let min = if count == 0 { 0 } else { min };
        let pairs: Vec<(u64, u64)> = buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
            .collect();
        let window_ns = self.ring.window_ns();
        WindowSummary {
            window_ns,
            count,
            sum,
            min,
            max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(&pairs, count, min, max, 0.50),
            p90: quantile(&pairs, count, min, max, 0.90),
            p99: quantile(&pairs, count, min, max, 0.99),
            rate_per_sec: count as f64 * 1e9 / window_ns as f64,
        }
    }

    /// Empties the window (all epochs retired, clock position kept).
    pub fn clear(&mut self) {
        for slot in &mut self.ring.slots {
            slot.clear();
        }
        self.ring.live = 0;
    }
}

/// A sliding sum: total of the deltas added over the most recent
/// `epochs · epoch_ns` of logical time.
#[derive(Debug, Clone)]
pub struct WindowCounter {
    ring: EpochRing<u64>,
}

impl WindowCounter {
    /// Creates a counter window of `epochs` epochs of `epoch_ns`
    /// nanoseconds each; both are clamped to at least 1.
    pub fn new(epoch_ns: u64, epochs: usize) -> WindowCounter {
        WindowCounter {
            ring: EpochRing::new(epoch_ns, epochs, || 0),
        }
    }

    /// Advances the window to `now_ns` without adding anything.
    pub fn rotate_to(&mut self, now_ns: u64) {
        self.ring.rotate_to(now_ns, |slot| *slot = 0);
    }

    /// Adds `delta` at logical time `now_ns`.
    pub fn add(&mut self, now_ns: u64, delta: u64) {
        self.rotate_to(now_ns);
        *self.ring.head_slot() += delta;
    }

    /// Sum over the live epochs as of `now_ns`.
    pub fn total(&mut self, now_ns: u64) -> u64 {
        self.rotate_to(now_ns);
        self.ring.live_slots().sum()
    }

    /// Events per second over the live epochs as of `now_ns`.
    pub fn rate_per_sec(&mut self, now_ns: u64) -> f64 {
        let total = self.total(now_ns);
        total as f64 * 1e9 / self.ring.window_ns() as f64
    }

    /// Nanoseconds of logical time currently covered.
    pub fn window_ns(&self) -> u64 {
        self.ring.window_ns()
    }
}

/// Merged point-in-time summary of a [`SlidingWindow`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSummary {
    /// Logical time the live epochs cover (≤ `epochs · epoch_ns`; less
    /// during warm-up so rates never underestimate).
    pub window_ns: u64,
    /// Samples in the window.
    pub count: u64,
    /// Sum of samples in the window.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Interpolated median.
    pub p50: u64,
    /// Interpolated 90th percentile.
    pub p90: u64,
    /// Interpolated 99th percentile.
    pub p99: u64,
    /// Samples per second of covered logical time.
    pub rate_per_sec: f64,
}

// ---------------------------------------------------------------------
// Process-wide telemetry clock and window registry.
// ---------------------------------------------------------------------

static CLOCK_NS: AtomicU64 = AtomicU64::new(0);

/// Ratchets the telemetry clock forward to `now_ns` (monotonic: a stale
/// value is ignored). The serve evaluator loop drives this; nothing in
/// `uavail-obs` reads a wall clock for window or SLO state.
pub fn clock_advance_to(now_ns: u64) {
    CLOCK_NS.fetch_max(now_ns, Ordering::Relaxed);
}

/// Current logical telemetry time in nanoseconds.
pub fn clock_now_ns() -> u64 {
    CLOCK_NS.load(Ordering::Relaxed)
}

/// Resets the telemetry clock to 0 (test/reset hook — the clock is
/// monotonic during normal operation).
pub fn clock_reset() {
    CLOCK_NS.store(0, Ordering::SeqCst);
}

struct WindowRegistry {
    epoch_ns: u64,
    epochs: usize,
    windows: BTreeMap<String, SlidingWindow>,
}

fn registry() -> MutexGuard<'static, WindowRegistry> {
    static REGISTRY: OnceLock<Mutex<WindowRegistry>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| {
            Mutex::new(WindowRegistry {
                epoch_ns: DEFAULT_EPOCH_NS,
                epochs: DEFAULT_EPOCHS,
                windows: BTreeMap::new(),
            })
        })
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Sets the epoch geometry for global windows and clears the registry
/// (existing windows have the old geometry baked in).
pub fn window_configure(epoch_ns: u64, epochs: usize) {
    let mut reg = registry();
    reg.epoch_ns = epoch_ns.max(1);
    reg.epochs = epochs.max(1);
    reg.windows.clear();
}

/// Records `value` into the global sliding window `name` at the current
/// telemetry clock; no-op while recording is disabled.
pub fn window_record(name: &str, value: u64) {
    if !crate::enabled() {
        return;
    }
    let now = clock_now_ns();
    let mut reg = registry();
    let (epoch_ns, epochs) = (reg.epoch_ns, reg.epochs);
    reg.windows
        .entry(name.to_string())
        .or_insert_with(|| SlidingWindow::new(epoch_ns, epochs))
        .record(now, value);
}

/// Summaries of every global window as of the current telemetry clock.
pub fn window_summaries() -> BTreeMap<String, WindowSummary> {
    let now = clock_now_ns();
    let mut reg = registry();
    reg.windows
        .iter_mut()
        .map(|(name, w)| (name.clone(), w.summary(now)))
        .collect()
}

/// Drops every global window (geometry is kept).
pub fn window_reset() {
    registry().windows.clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    #[test]
    fn window_expires_old_epochs_deterministically() {
        let mut w = SlidingWindow::new(S, 4);
        w.record(0, 100);
        w.record(S, 200);
        w.record(2 * S, 300);
        let s = w.summary(2 * S);
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, 600);
        assert_eq!(s.window_ns, 3 * S);
        // Advance to epoch 4: epoch 0 (the 100 sample) retires.
        let s = w.summary(4 * S);
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 500);
        assert_eq!(s.min, 200);
        assert_eq!(s.window_ns, 4 * S);
        // A jump far past everything empties the window.
        let s = w.summary(100 * S);
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn stale_timestamps_clamp_to_head_epoch() {
        let mut w = SlidingWindow::new(S, 4);
        w.record(5 * S, 10);
        w.record(3 * S, 20); // late sample: lands in epoch 5, not 3
        let s = w.summary(5 * S);
        assert_eq!(s.count, 2);
        let s = w.summary(8 * S); // epoch 5 is the oldest of 4 live epochs
        assert_eq!(s.count, 2, "both samples retire together");
        let s = w.summary(9 * S);
        assert_eq!(s.count, 0);
    }

    #[test]
    fn summary_matches_histogram_quantiles() {
        let mut w = SlidingWindow::new(S, 8);
        let h = crate::Histogram::new();
        for v in 0..1000u64 {
            w.record((v % 8) * S / 2, v * 3);
            h.record(v * 3);
        }
        let hs = h.summary();
        let ws = w.summary(4 * S);
        assert_eq!(ws.count, hs.count);
        assert_eq!(ws.sum, hs.sum);
        assert_eq!((ws.p50, ws.p90, ws.p99), (hs.p50, hs.p90, hs.p99));
    }

    #[test]
    fn counter_rate_tracks_live_span() {
        let mut c = WindowCounter::new(S, 10);
        c.add(0, 30);
        assert_eq!(c.total(0), 30);
        // One live epoch: 30 events over 1 s.
        assert!((c.rate_per_sec(0) - 30.0).abs() < 1e-12);
        c.add(4 * S, 10);
        // Five live epochs: 40 events over 5 s.
        assert_eq!(c.total(4 * S), 40);
        assert!((c.rate_per_sec(4 * S) - 8.0).abs() < 1e-12);
        // Epoch 0 retires at epoch 10.
        assert_eq!(c.total(10 * S), 10);
        assert_eq!(c.total(15 * S), 0);
    }

    #[test]
    fn rotation_is_a_pure_function_of_the_timestamp_sequence() {
        let stamps: Vec<u64> = (0..200).map(|i| (i * 7919) % (30 * S)).collect();
        let run = || {
            let mut w = SlidingWindow::new(S, 6);
            let mut clock = 0u64;
            for &t in &stamps {
                clock = clock.max(t);
                w.record(clock, t % 1000);
            }
            w.summary(clock)
        };
        assert_eq!(run(), run(), "same inputs, bit-identical window");
    }

    #[test]
    fn global_windows_gate_on_enabled_and_use_the_logical_clock() {
        let _guard = crate::test_support::lock();
        crate::set_enabled(false);
        clock_reset();
        window_configure(S, 4);
        window_record("w.off", 5);
        assert!(window_summaries().is_empty(), "disabled records nothing");
        crate::set_enabled(true);
        clock_advance_to(2 * S);
        clock_advance_to(S); // stale: clock never rewinds
        assert_eq!(clock_now_ns(), 2 * S);
        window_record("w.on", 5);
        window_record("w.on", 7);
        let summaries = window_summaries();
        assert_eq!(summaries["w.on"].count, 2);
        assert_eq!(summaries["w.on"].sum, 12);
        crate::set_enabled(false);
        window_reset();
        clock_reset();
    }
}
