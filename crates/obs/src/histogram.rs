//! Fixed-bucket log-scale histograms on lock-free atomics.
//!
//! A [`Histogram`] accumulates `u64` samples (typically nanoseconds or
//! event counts) into 64 power-of-two buckets: bucket `i` holds samples
//! whose highest set bit is `i`, i.e. values in `[2^i, 2^{i+1})`, with 0
//! landing in bucket 0. All state is atomic integers, so recording is
//! lock-free and [`Histogram::merge`] — plain sums, mins and maxes — is
//! exactly order-independent, the integer analogue of
//! `OnlineStats::merge`: merging per-thread histograms in any order
//! produces bit-identical aggregates.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets; covers the full `u64` range.
pub const BUCKET_COUNT: usize = 64;

/// A lock-free log₂-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a sample: the position of its highest set bit.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        63 - value.leading_zeros() as usize
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self`. Integer sums, mins and
    /// maxes only, so any merge order yields identical state.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            let t = theirs.load(Ordering::Relaxed);
            if t > 0 {
                mine.fetch_add(t, Ordering::Relaxed);
            }
        }
        let other_count = other.count.load(Ordering::Relaxed);
        if other_count == 0 {
            return;
        }
        self.count.fetch_add(other_count, Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Immutable summary of the current state.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let c = b.load(Ordering::Relaxed);
                (c > 0).then(|| (bucket_upper_bound(i), c))
            })
            .collect();
        let max = self.max.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        HistogramSummary {
            count,
            sum,
            min,
            max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(&buckets, count, min, max, 0.50),
            p90: quantile(&buckets, count, min, max, 0.90),
            p99: quantile(&buckets, count, min, max, 0.99),
            buckets,
        }
    }
}

/// Inclusive upper bound of bucket `i`: `2^{i+1} − 1`.
pub(crate) fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (2u64 << i) - 1
    }
}

/// Inclusive lower bound of the bucket whose upper bound is `upper`:
/// `2^i` for bucket `i ≥ 1`, and 0 for bucket 0 (which also holds the
/// sample value 0).
fn bucket_lower_bound(upper: u64) -> u64 {
    if upper <= 1 {
        0
    } else {
        upper / 2 + 1
    }
}

/// Sub-bucket interpolated quantile over `(inclusive upper bound, count)`
/// pairs in increasing bound order.
///
/// The rank `⌈q · count⌉` selects a bucket; within it the mass is assumed
/// uniform, so rank position `p` of `c` samples maps to the bucket-span
/// midpoint `lower + span · (p − ½) / c` (integer arithmetic, rounded to
/// nearest). The result is clamped to the observed `[min, max]`, so exact
/// extremes are never overshot and a single-sample histogram reports the
/// sample itself. Against the raw bucket bound (up to 2× off on a log₂
/// grid) this bounds the error by the within-bucket density mismatch —
/// a few percent on smooth distributions (pinned by tests).
pub(crate) fn quantile(buckets: &[(u64, u64)], count: u64, min: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = (q * count as f64).ceil().max(1.0) as u64;
    let mut cumulative = 0u64;
    for &(upper, c) in buckets {
        if cumulative + c >= rank {
            let lower = bucket_lower_bound(upper);
            let span = upper - lower;
            let pos = rank - cumulative; // 1-based position inside the bucket
                                         // lower + span · (pos − ½) / c, rounded to nearest (u128: the
                                         // widest span is 2^63 and counts can be anything).
            let numer = span as u128 * (2 * pos as u128 - 1) + c as u128;
            let within = (numer / (2 * c as u128)) as u64;
            return (lower + within).clamp(min, max);
        }
        cumulative += c;
    }
    max
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Mean sample (0 when empty).
    pub mean: f64,
    /// Median at bucket resolution.
    pub p50: u64,
    /// 90th percentile at bucket resolution.
    pub p90: u64,
    /// 99th percentile at bucket resolution.
    pub p99: u64,
    /// `(inclusive upper bound, count)` for every non-empty bucket, in
    /// increasing bound order.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
    }

    #[test]
    fn summary_tracks_exact_moments() {
        let h = Histogram::new();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 1111);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!((s.mean - 277.75).abs() < 1e-12);
    }

    #[test]
    fn empty_summary_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn quantiles_interpolate_within_buckets_and_clamp() {
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1000); // bucket [512, 1023]
        let s = h.summary();
        // Interpolated positions inside the [8, 15] bucket, clamped below
        // to the observed min of 10.
        assert_eq!(s.p50, 12);
        assert_eq!(s.p90, 14);
        assert_eq!(s.p99, 15);
        let h2 = Histogram::new();
        h2.record(7);
        let s2 = h2.summary();
        assert_eq!(s2.p50, 7, "single sample clamps to the exact extreme");
        let h3 = Histogram::new();
        h3.record(0);
        h3.record(0);
        assert_eq!(h3.summary().p99, 0, "all-zero samples stay zero");
    }

    /// Exact empirical quantile of a sorted sample set: the rank-`⌈qn⌉`
    /// order statistic, matching the histogram's rank convention.
    fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
        let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
        sorted[rank - 1]
    }

    #[test]
    fn interpolated_quantiles_bound_relative_error_on_known_distributions() {
        // Uniform over [0, 2^16): within every power-of-two bucket the
        // density really is uniform, so interpolation is near-exact.
        let h = Histogram::new();
        let uniform: Vec<u64> = (0..65_536u64).collect();
        for &v in &uniform {
            h.record(v);
        }
        let s = h.summary();
        for (q, got) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
            let exact = exact_quantile(&uniform, q);
            let rel = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel < 0.01,
                "uniform q={q}: got {got}, exact {exact}, rel err {rel}"
            );
        }

        // Exponential-ish tail (deterministic inverse-CDF sample): the
        // density decays within each bucket, so uniform interpolation is
        // biased high, but must stay well below the raw bucket-bound
        // error (~42% for the p99 here, up to 2× in general).
        let n = 50_000u64;
        let exponential: Vec<u64> = (1..=n)
            .map(|i| {
                let u = i as f64 / (n as f64 + 1.0);
                (-(1.0 - u).ln() * 10_000.0).round() as u64
            })
            .collect();
        let h = Histogram::new();
        for &v in &exponential {
            h.record(v);
        }
        let s = h.summary();
        for (q, got) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
            let exact = exact_quantile(&exponential, q);
            let rel = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                rel < 0.30,
                "exponential q={q}: got {got}, exact {exact}, rel err {rel}"
            );
        }
    }

    #[test]
    fn merge_equals_single_histogram() {
        let whole = Histogram::new();
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..500u64 {
            whole.record(v * 17);
            if v % 3 == 0 {
                a.record(v * 17);
            } else {
                b.record(v * 17);
            }
        }
        a.merge(&b);
        assert_eq!(a.summary(), whole.summary());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let h = Histogram::new();
        h.record(42);
        let before = h.summary();
        h.merge(&Histogram::new());
        assert_eq!(h.summary(), before);
        let e = Histogram::new();
        e.merge(&h);
        assert_eq!(e.summary(), before);
    }
}
