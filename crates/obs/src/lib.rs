//! # uavail-obs
//!
//! Zero-dependency, in-tree observability for the evaluation and
//! simulation engine — the same spirit as the vendored `rand` /
//! `proptest` / `criterion` shims: the build environment cannot reach
//! crates.io, so the workspace carries its own minimal metrics layer.
//!
//! The design contract, in order of importance:
//!
//! 1. **Instrumentation never changes results.** Recording only ever
//!    observes wall-clock time and event counts; no instrumented code
//!    path branches on recorder state in a way that affects numerics.
//!    The `uavail-travel` test suite pins this: every reproduced figure
//!    and table is bit-identical with recording on and off.
//! 2. **The disabled path is as close to free as possible.** The global
//!    recorder is a no-op until [`set_enabled`]`(true)`: every
//!    instrumentation call starts with one relaxed atomic load and
//!    returns immediately, with no clock read, no allocation and no lock.
//! 3. **Aggregation is deterministic.** Counters, gauges, histograms
//!    ([`Histogram`]) and span timers ([`SpanStats`]) accumulate in
//!    integer atomics, and [`Recorder::merge`] uses only commutative,
//!    associative integer operations — merging per-thread recorders in
//!    any order yields bit-identical snapshots, the integer analogue of
//!    `OnlineStats::merge` in `uavail-sim`.
//!
//! # Metric kinds
//!
//! * **Counters** — monotone `u64` sums ([`counter_add`]); cache
//!   hits/misses, points evaluated, sessions simulated.
//! * **Gauges** — last-written `u64` values ([`gauge_set`]); cache size.
//! * **Histograms** — 64 log₂ buckets over `u64` samples
//!   ([`histogram_record`], [`Stopwatch`]); per-point sweep latencies.
//! * **Spans** — hierarchical wall-clock timers ([`span`]) keyed by the
//!   `/`-joined path of open spans on the current thread.
//! * **Labels** — sets of descriptive strings ([`label`]); RNG stream
//!   identities of replication batches.
//! * **Health** — `f64` count/min/max channels ([`health_record`]) fed by
//!   the numerical kernels; solver residuals, pivot minima, probability
//!   drift. See [`HealthStats`] for why only extremes are kept.
//!
//! Orthogonal to the aggregating recorder, the [`trace`] module keeps
//! *sequences*: bounded per-thread rings of begin/end/instant events
//! exported as Chrome/Perfetto timelines ([`trace::TraceData::to_chrome_trace`]),
//! behind their own [`set_trace_enabled`] flag.
//!
//! For resident (serve-loop) use the [`window`] module adds sliding
//! windows — rings of epochs with a deterministic, injected clock — and
//! the [`slo`] module folds request outcomes into a rolling
//! user-perceived availability estimate graded against the analytic
//! `A(WS)` target ([`SloMonitor`]). Both share the process-wide
//! telemetry clock ([`clock_advance_to`]) and gate their global entry
//! points on the same [`enabled`] flag.
//!
//! # Example
//!
//! ```
//! uavail_obs::set_enabled(true);
//! uavail_obs::reset();
//! {
//!     let _span = uavail_obs::span("sweep");
//!     for point in 0..90u64 {
//!         uavail_obs::counter_add("sweep.points", 1);
//!         uavail_obs::histogram_record("sweep.point_cost", point % 7);
//!     }
//! }
//! let snap = uavail_obs::snapshot();
//! assert_eq!(snap.counter("sweep.points"), 90);
//! assert_eq!(snap.spans["sweep"].count, 1);
//! uavail_obs::set_enabled(false);
//! ```

mod health;
mod histogram;
pub mod json;
pub mod slo;
mod span;
pub mod trace;
pub mod window;

pub use health::{HealthStats, HealthSummary};
pub use histogram::{Histogram, HistogramSummary, BUCKET_COUNT};
pub use slo::{
    slo_configure, slo_degraded, slo_record_outcomes, slo_reset, slo_snapshot, Outcome, SloConfig,
    SloMonitor, SloSnapshot, SloState,
};
pub use span::{SpanGuard, SpanStats, SpanSummary, Stopwatch};
pub use trace::{
    set_trace_enabled, take_trace, trace_enabled, trace_instant, trace_instant_arg, TraceData,
    TraceEvent, TraceSpan,
};
pub use window::{
    clock_advance_to, clock_now_ns, window_configure, window_record, window_reset,
    window_summaries, SlidingWindow, WindowCounter, WindowSummary,
};

use json::JsonValue;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A set of named metrics.
///
/// The global instance (see [`global`]) is what the free functions write
/// to; standalone instances exist for per-thread collection and for
/// testing, and fold together via [`Recorder::merge`].
#[derive(Debug, Default)]
pub struct Recorder {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    spans: RwLock<HashMap<String, Arc<SpanStats>>>,
    health: RwLock<HashMap<String, Arc<HealthStats>>>,
    labels: Mutex<BTreeMap<String, BTreeSet<String>>>,
}

/// Reads a lock even if a writer panicked: metrics must never take the
/// application down, and every critical section below is panic-free.
fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Looks up (read lock) or registers (write lock, first time only) the
/// metric cell for `name`; after registration all updates are lock-free
/// atomic operations on the shared cell.
fn intern<T>(
    map: &RwLock<HashMap<String, Arc<T>>>,
    name: &str,
    make: impl FnOnce() -> T,
) -> Arc<T> {
    if let Some(existing) = read_lock(map).get(name) {
        return Arc::clone(existing);
    }
    let mut guard = write_lock(map);
    Arc::clone(
        guard
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(make())),
    )
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Adds `delta` to counter `name` (registering it at 0 first).
    pub fn counter_add(&self, name: &str, delta: u64) {
        intern(&self.counters, name, AtomicU64::default).fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value of counter `name` (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        read_lock(&self.counters)
            .get(name)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Sets gauge `name` to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: u64) {
        intern(&self.gauges, name, AtomicU64::default).store(value, Ordering::Relaxed);
    }

    /// Records `value` into histogram `name`.
    pub fn histogram_record(&self, name: &str, value: u64) {
        intern(&self.histograms, name, Histogram::new).record(value);
    }

    /// Records a completed span of `nanos` under `path`.
    pub fn record_span(&self, path: &str, nanos: u64) {
        intern(&self.spans, path, SpanStats::new).record(nanos);
    }

    /// Records `value` into health channel `name`.
    pub fn health_record(&self, name: &str, value: f64) {
        intern(&self.health, name, HealthStats::new).record(value);
    }

    /// Inserts `value` into the label set `name`.
    pub fn label(&self, name: &str, value: &str) {
        let mut labels = self.labels.lock().unwrap_or_else(|e| e.into_inner());
        labels
            .entry(name.to_string())
            .or_default()
            .insert(value.to_string());
    }

    /// Folds every metric of `other` into `self`.
    ///
    /// Counters, histogram buckets and span timings add; gauges take the
    /// maximum (the only merge of two last-written values that is
    /// order-independent); health channels merge count/min/max. Merging
    /// any permutation of the same recorders therefore produces identical
    /// snapshots.
    ///
    /// **Label-conflict policy:** when both recorders carry the same
    /// label name, the merged set is the *union* of both value sets —
    /// deliberately neither first-writer-wins nor last-writer-wins, both
    /// of which would make the result depend on merge order. Duplicate
    /// values collapse (sets), and snapshots render each set sorted, so
    /// any merge order yields byte-identical output. Pinned by the
    /// `merge_label_conflicts_union_deterministically` test.
    pub fn merge(&self, other: &Recorder) {
        for (name, counter) in read_lock(&other.counters).iter() {
            let delta = counter.load(Ordering::Relaxed);
            if delta > 0 {
                self.counter_add(name, delta);
            }
        }
        for (name, gauge) in read_lock(&other.gauges).iter() {
            let theirs = gauge.load(Ordering::Relaxed);
            intern(&self.gauges, name, AtomicU64::default).fetch_max(theirs, Ordering::Relaxed);
        }
        for (name, histogram) in read_lock(&other.histograms).iter() {
            intern(&self.histograms, name, Histogram::new).merge(histogram);
        }
        for (path, stats) in read_lock(&other.spans).iter() {
            intern(&self.spans, path, SpanStats::new).merge(stats);
        }
        for (name, stats) in read_lock(&other.health).iter() {
            intern(&self.health, name, HealthStats::new).merge(stats);
        }
        let other_labels = other.labels.lock().unwrap_or_else(|e| e.into_inner());
        let mut labels = self.labels.lock().unwrap_or_else(|e| e.into_inner());
        for (name, values) in other_labels.iter() {
            labels
                .entry(name.clone())
                .or_default()
                .extend(values.iter().cloned());
        }
    }

    /// Clears every metric.
    pub fn reset(&self) {
        write_lock(&self.counters).clear();
        write_lock(&self.gauges).clear();
        write_lock(&self.histograms).clear();
        write_lock(&self.spans).clear();
        write_lock(&self.health).clear();
        self.labels
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Point-in-time copy of every metric, with deterministic (sorted)
    /// ordering.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: read_lock(&self.counters)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            gauges: read_lock(&self.gauges)
                .iter()
                .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
                .collect(),
            histograms: read_lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            spans: read_lock(&self.spans)
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            health: read_lock(&self.health)
                .iter()
                .map(|(k, v)| (k.clone(), v.summary()))
                .collect(),
            labels: self
                .labels
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.iter().cloned().collect()))
                .collect(),
        }
    }
}

/// Deterministically ordered copy of a [`Recorder`]'s state.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Span summaries by `/`-joined path.
    pub spans: BTreeMap<String, SpanSummary>,
    /// Health-channel summaries by name.
    pub health: BTreeMap<String, HealthSummary>,
    /// Label sets by name, sorted.
    pub labels: BTreeMap<String, Vec<String>>,
}

impl Snapshot {
    /// Counter value, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Serializes the snapshot as JSON lines, one self-describing record
    /// per metric (`{"type":"counter",...}`, `{"type":"span",...}`, …),
    /// sorted by kind then name. See EXPERIMENTS.md for the schema.
    pub fn to_json_lines(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            push_line(
                &mut out,
                JsonValue::object(vec![
                    ("type", JsonValue::str("counter")),
                    ("name", JsonValue::str(name.as_str())),
                    ("value", JsonValue::UInt(*value)),
                ]),
            );
        }
        for (name, value) in &self.gauges {
            push_line(
                &mut out,
                JsonValue::object(vec![
                    ("type", JsonValue::str("gauge")),
                    ("name", JsonValue::str(name.as_str())),
                    ("value", JsonValue::UInt(*value)),
                ]),
            );
        }
        for (path, s) in &self.spans {
            push_line(
                &mut out,
                JsonValue::object(vec![
                    ("type", JsonValue::str("span")),
                    ("path", JsonValue::str(path.as_str())),
                    ("count", JsonValue::UInt(s.count)),
                    ("total_ns", JsonValue::UInt(s.total_nanos)),
                    ("min_ns", JsonValue::UInt(s.min_nanos)),
                    ("max_ns", JsonValue::UInt(s.max_nanos)),
                    ("mean_ns", JsonValue::Float(s.mean_nanos)),
                ]),
            );
        }
        for (name, s) in &self.histograms {
            push_line(
                &mut out,
                JsonValue::object(vec![
                    ("type", JsonValue::str("histogram")),
                    ("name", JsonValue::str(name.as_str())),
                    ("count", JsonValue::UInt(s.count)),
                    ("sum", JsonValue::UInt(s.sum)),
                    ("min", JsonValue::UInt(s.min)),
                    ("max", JsonValue::UInt(s.max)),
                    ("mean", JsonValue::Float(s.mean)),
                    ("p50", JsonValue::UInt(s.p50)),
                    ("p90", JsonValue::UInt(s.p90)),
                    ("p99", JsonValue::UInt(s.p99)),
                    (
                        "buckets",
                        JsonValue::Array(
                            s.buckets
                                .iter()
                                .map(|&(upper, count)| {
                                    JsonValue::Array(vec![
                                        JsonValue::UInt(upper),
                                        JsonValue::UInt(count),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            );
        }
        for (name, s) in &self.health {
            push_line(
                &mut out,
                JsonValue::object(vec![
                    ("type", JsonValue::str("health")),
                    ("name", JsonValue::str(name.as_str())),
                    ("count", JsonValue::UInt(s.count)),
                    ("min", JsonValue::Float(s.min)),
                    ("max", JsonValue::Float(s.max)),
                ]),
            );
        }
        for (name, values) in &self.labels {
            push_line(
                &mut out,
                JsonValue::object(vec![
                    ("type", JsonValue::str("label")),
                    ("name", JsonValue::str(name.as_str())),
                    (
                        "values",
                        JsonValue::Array(
                            values.iter().map(|v| JsonValue::str(v.as_str())).collect(),
                        ),
                    ),
                ]),
            );
        }
        out
    }
}

fn push_line(out: &mut String, value: JsonValue) {
    out.push_str(&value.to_string());
    out.push('\n');
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global recording on or off. Off (the default) makes every
/// instrumentation call a single relaxed atomic load.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether global recording is on. Instrumented call sites that need to
/// prepare inputs (e.g. format a label) should check this first so the
/// disabled path does no work.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide recorder the free functions write to.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

/// Adds `delta` to global counter `name`; no-op while disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        global().counter_add(name, delta);
    }
}

/// Sets global gauge `name`; no-op while disabled.
#[inline]
pub fn gauge_set(name: &str, value: u64) {
    if enabled() {
        global().gauge_set(name, value);
    }
}

/// Records into global histogram `name`; no-op while disabled.
#[inline]
pub fn histogram_record(name: &str, value: u64) {
    if enabled() {
        global().histogram_record(name, value);
    }
}

/// Records into global health channel `name`; no-op while disabled.
/// When tracing is also on, mirrors the observation as an instant event
/// so precision excursions are visible on the timeline.
#[inline]
pub fn health_record(name: &'static str, value: f64) {
    if enabled() {
        global().health_record(name, value);
        if trace_enabled() {
            trace_instant_arg(name, "value", value);
        }
    }
}

/// Inserts into global label set `name`; no-op while disabled.
#[inline]
pub fn label(name: &str, value: &str) {
    if enabled() {
        global().label(name, value);
    }
}

/// Opens a named span on the current thread; the guard records its
/// wall-clock lifetime under the hierarchical span path when dropped.
/// Inert while disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Snapshot of the global recorder.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// Clears the global recorder.
pub fn reset() {
    global().reset();
}

#[cfg(test)]
pub(crate) mod test_support {
    use std::sync::{Mutex, MutexGuard};

    /// Recorder and trace state are process-wide, so every test in this
    /// binary that toggles either enable flag serializes on this lock.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The global enable flag is shared across tests in this binary, so
    /// exercises of the global API run under one lock.
    fn with_global_recording<R>(f: impl FnOnce() -> R) -> R {
        let _guard = test_support::lock();
        set_enabled(true);
        reset();
        let result = f();
        set_enabled(false);
        result
    }

    #[test]
    fn disabled_global_records_nothing() {
        // Outside with_global_recording the flag is off (each assertion
        // here re-checks to stay robust against parallel tests).
        let r = Recorder::new();
        r.counter_add("direct", 1);
        assert_eq!(r.counter("direct"), 1, "local recorders always record");
    }

    #[test]
    fn global_counters_gauges_histograms_spans_labels() {
        let snap = with_global_recording(|| {
            counter_add("c", 2);
            counter_add("c", 3);
            gauge_set("g", 7);
            gauge_set("g", 4);
            histogram_record("h", 100);
            label("l", "x");
            label("l", "x");
            label("l", "y");
            {
                let _outer = span("outer");
                let _inner = span("inner");
            }
            snapshot()
        });
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauges["g"], 4, "gauge keeps the last write");
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.labels["l"], vec!["x".to_string(), "y".to_string()]);
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 1, "paths nest");
    }

    #[test]
    fn merge_is_order_independent() {
        let parts: Vec<Recorder> = (0..4)
            .map(|i| {
                let r = Recorder::new();
                r.counter_add("c", i + 1);
                r.gauge_set("g", 10 * (i + 1));
                r.histogram_record("h", 1 << i);
                r.record_span("s", 100 * (i + 1));
                r.label("l", &format!("part-{i}"));
                r
            })
            .collect();
        let forward = Recorder::new();
        for p in &parts {
            forward.merge(p);
        }
        let backward = Recorder::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward.snapshot(), backward.snapshot());
        assert_eq!(forward.counter("c"), 1 + 2 + 3 + 4);
        assert_eq!(forward.snapshot().gauges["g"], 40, "gauges merge by max");
    }

    #[test]
    fn merge_label_conflicts_union_deterministically() {
        // The documented policy: a label name present in both recorders
        // merges to the union of both value sets (never first- or
        // last-writer-wins), duplicates collapse, and the snapshot
        // renders the set sorted — so merge order cannot show through.
        let a = Recorder::new();
        a.label("rng.streams", "seed=1");
        a.label("rng.streams", "seed=7");
        let b = Recorder::new();
        b.label("rng.streams", "seed=7");
        b.label("rng.streams", "seed=3");

        let ab = Recorder::new();
        ab.merge(&a);
        ab.merge(&b);
        let ba = Recorder::new();
        ba.merge(&b);
        ba.merge(&a);

        let expected = vec!["seed=1".to_string(), "seed=3".into(), "seed=7".into()];
        assert_eq!(ab.snapshot().labels["rng.streams"], expected);
        assert_eq!(ba.snapshot().labels["rng.streams"], expected);
        assert_eq!(
            ab.snapshot().to_json_lines(),
            ba.snapshot().to_json_lines(),
            "serialized snapshots are byte-identical either way"
        );
    }

    #[test]
    fn merge_health_is_order_independent() {
        let a = Recorder::new();
        a.health_record("lu.residual", 1e-15);
        let b = Recorder::new();
        b.health_record("lu.residual", 4e-17);
        let ab = Recorder::new();
        ab.merge(&a);
        ab.merge(&b);
        let ba = Recorder::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab.snapshot(), ba.snapshot());
        let s = ab.snapshot().health["lu.residual"];
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 4e-17);
        assert_eq!(s.max, 1e-15);
    }

    #[test]
    fn snapshot_serializes_to_valid_json_lines() {
        let r = Recorder::new();
        r.counter_add("a.count", 3);
        r.gauge_set("a.size", 9);
        r.histogram_record("a.latency", 1234);
        r.record_span("run/phase", 5_000);
        r.health_record("a.residual", 3.5e-16);
        r.label("a.streams", "seed=42");
        let text = r.snapshot().to_json_lines();
        let lines = json::validate_lines(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(lines, 6);
        assert!(text.contains("\"type\":\"span\""));
        assert!(text.contains("\"path\":\"run/phase\""));
        assert!(text.contains("\"type\":\"health\""));
    }

    #[test]
    fn reset_clears_everything() {
        let r = Recorder::new();
        r.counter_add("c", 1);
        r.record_span("s", 1);
        r.reset();
        assert_eq!(r.snapshot(), Snapshot::default());
    }
}
