//! A rolling user-perceived availability SLO monitor.
//!
//! The paper's measure is the probability that a user's request actually
//! completes; this module computes the live, windowed estimate of it
//! from observed request outcomes and compares it against the analytic
//! `A(WS)` prediction — the online cross-check between *measured* and
//! *modelled* availability.
//!
//! An [`SloMonitor`] folds outcomes ([`Outcome::Success`] /
//! [`Outcome::Loss`] / [`Outcome::Timeout`], per operation class) into
//! per-class [`WindowCounter`]s, derives the window's availability with
//! a Wilson score interval, and grades the divergence from the analytic
//! target into a threshold state ([`SloState`]): `Ok` while the target
//! sits inside the slack-widened interval and no numerical degradation
//! was seen, `Warn`/`Breach` as the divergence or the degraded-event
//! count grows. Degraded events are the PR 4 resilience fallbacks
//! (LU → GTH, power-iteration rescue); they feed the same window, so a
//! fault burst flips the state and the state recovers once the window
//! rotates past it.
//!
//! Like everything in `uavail-obs`, the monitor is clock-injected and
//! deterministic: feeding it only ever *reads* already-computed results,
//! so recording on vs off cannot change a reproduced number, and the
//! disabled global path ([`slo_record_outcomes`]) is one relaxed atomic
//! load.

use crate::json::JsonValue;
use crate::window::{clock_now_ns, WindowCounter, DEFAULT_EPOCHS, DEFAULT_EPOCH_NS};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// How a user-perceived request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The request completed.
    Success,
    /// The request was refused or dropped (buffer overflow, reconfiguration).
    Loss,
    /// The request exceeded its deadline. Counts against availability
    /// exactly like a loss — the user perceives no difference.
    Timeout,
}

/// Threshold state of the SLO monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloState {
    /// Target inside the slack-widened Wilson interval, no degradation.
    Ok,
    /// Degraded events in the window, or the target drifted outside the
    /// slack-widened interval.
    Warn,
    /// Heavy degradation, or the target is outside even the
    /// triple-slack-widened interval.
    Breach,
}

impl SloState {
    /// Lower-case name, as rendered in artifacts and HTTP responses.
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warn => "warn",
            SloState::Breach => "breach",
        }
    }
}

/// Geometry and thresholds of an [`SloMonitor`].
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Epoch width of the underlying windows.
    pub epoch_ns: u64,
    /// Ring length of the underlying windows.
    pub epochs: usize,
    /// Analytic availability to compare against (e.g. `A(WS)`); `None`
    /// disables the divergence grading and the state is degradation-only.
    pub target_availability: Option<f64>,
    /// Relative widening applied to the Wilson interval on the
    /// *unavailability* side before comparing the target — the same
    /// convention as the sim validators' `agrees` slack.
    pub slack: f64,
    /// Wilson critical value (the validators use 3.9 ≈ 99.99% two-sided).
    pub z: f64,
    /// Degraded events in the window that force at least [`SloState::Warn`].
    pub degraded_warn: u64,
    /// Degraded events in the window that force [`SloState::Breach`].
    pub degraded_breach: u64,
}

impl Default for SloConfig {
    fn default() -> SloConfig {
        SloConfig {
            epoch_ns: DEFAULT_EPOCH_NS,
            epochs: DEFAULT_EPOCHS,
            target_availability: None,
            slack: 0.15,
            z: 3.9,
            degraded_warn: 1,
            degraded_breach: 8,
        }
    }
}

/// Wilson score interval for a proportion of `x` events in `n` trials at
/// critical value `z`, clamped to `[0, 1]`; `(0, 1)` when `n == 0`.
///
/// Re-implemented here (identically to `uavail_sim::stats::Proportion`)
/// because `uavail-obs` is the workspace's zero-dependency leaf crate.
pub fn wilson_interval(x: u64, n: u64, z: f64) -> (f64, f64) {
    if n == 0 {
        return (0.0, 1.0);
    }
    let n = n as f64;
    let p = x as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

#[derive(Debug, Clone)]
struct ClassCounters {
    success: WindowCounter,
    loss: WindowCounter,
    timeout: WindowCounter,
}

impl ClassCounters {
    fn new(cfg: &SloConfig) -> ClassCounters {
        ClassCounters {
            success: WindowCounter::new(cfg.epoch_ns, cfg.epochs),
            loss: WindowCounter::new(cfg.epoch_ns, cfg.epochs),
            timeout: WindowCounter::new(cfg.epoch_ns, cfg.epochs),
        }
    }
}

/// Folds request outcomes into a rolling user-perceived availability
/// estimate graded against an analytic target. Clock-injected like the
/// windows it is built on.
#[derive(Debug)]
pub struct SloMonitor {
    cfg: SloConfig,
    classes: BTreeMap<String, ClassCounters>,
    degraded: WindowCounter,
}

impl SloMonitor {
    /// Creates a monitor with the given configuration.
    pub fn new(cfg: SloConfig) -> SloMonitor {
        let degraded = WindowCounter::new(cfg.epoch_ns, cfg.epochs);
        SloMonitor {
            cfg,
            classes: BTreeMap::new(),
            degraded,
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Folds one outcome of operation class `class` at `now_ns`.
    pub fn record(&mut self, now_ns: u64, class: &str, outcome: Outcome) {
        let (s, l, t) = match outcome {
            Outcome::Success => (1, 0, 0),
            Outcome::Loss => (0, 1, 0),
            Outcome::Timeout => (0, 0, 1),
        };
        self.record_outcomes(now_ns, class, s, l, t);
    }

    /// Folds a pre-aggregated batch of outcomes (e.g. one replication's
    /// arrival/loss counts) of class `class` at `now_ns`.
    pub fn record_outcomes(
        &mut self,
        now_ns: u64,
        class: &str,
        successes: u64,
        losses: u64,
        timeouts: u64,
    ) {
        let cfg = &self.cfg;
        let counters = self
            .classes
            .entry(class.to_string())
            .or_insert_with(|| ClassCounters::new(cfg));
        if successes > 0 {
            counters.success.add(now_ns, successes);
        } else {
            counters.success.rotate_to(now_ns);
        }
        if losses > 0 {
            counters.loss.add(now_ns, losses);
        }
        if timeouts > 0 {
            counters.timeout.add(now_ns, timeouts);
        }
    }

    /// Records `n` degraded events (numerical fallbacks) at `now_ns`.
    pub fn degraded_event(&mut self, now_ns: u64, n: u64) {
        self.degraded.add(now_ns, n);
    }

    /// The monitor's state as of `now_ns`.
    pub fn snapshot(&mut self, now_ns: u64) -> SloSnapshot {
        let z = self.cfg.z;
        let mut classes = BTreeMap::new();
        let (mut successes, mut losses, mut timeouts) = (0u64, 0u64, 0u64);
        let mut window_ns = 0u64;
        for (name, counters) in &mut self.classes {
            let s = counters.success.total(now_ns);
            let l = counters.loss.total(now_ns);
            let t = counters.timeout.total(now_ns);
            successes += s;
            losses += l;
            timeouts += t;
            window_ns = window_ns.max(counters.success.window_ns());
            let total = s + l + t;
            let (unavail_lo, unavail_hi) = wilson_interval(l + t, total, z);
            classes.insert(
                name.clone(),
                SloClassSnapshot {
                    total,
                    successes: s,
                    losses: l,
                    timeouts: t,
                    availability: availability(s, l, t),
                    availability_lo: 1.0 - unavail_hi,
                    availability_hi: 1.0 - unavail_lo,
                },
            );
        }
        let total = successes + losses + timeouts;
        let degraded = self.degraded.total(now_ns);
        window_ns = window_ns.max(self.degraded.window_ns());
        let (unavail_lo, unavail_hi) = wilson_interval(losses + timeouts, total, z);
        let measured = availability(successes, losses, timeouts);
        let target = self.cfg.target_availability;
        let divergence = target.map_or(0.0, |t| measured - t);
        let state = self.grade(total, unavail_lo, unavail_hi, degraded);
        SloSnapshot {
            now_ns,
            window_ns,
            total,
            successes,
            losses,
            timeouts,
            availability: measured,
            availability_lo: 1.0 - unavail_hi,
            availability_hi: 1.0 - unavail_lo,
            target,
            divergence,
            degraded,
            state,
            classes,
        }
    }

    /// Grades the window. Comparison happens on the unavailability side
    /// (where the Wilson interval is informative for rare losses): the
    /// target unavailability must sit inside the interval widened by
    /// `slack` for `Ok`, inside the 3×-slack widening for `Warn`, and is
    /// a `Breach` beyond that. Degraded events override upward.
    fn grade(&self, total: u64, unavail_lo: f64, unavail_hi: f64, degraded: u64) -> SloState {
        let cfg = &self.cfg;
        if degraded >= cfg.degraded_breach {
            return SloState::Breach;
        }
        let divergence_state = match cfg.target_availability {
            Some(target) if total > 0 => {
                let target_unavail = 1.0 - target;
                let covered = |slack: f64| {
                    unavail_lo * (1.0 - slack) <= target_unavail
                        && target_unavail <= unavail_hi * (1.0 + slack)
                };
                if covered(cfg.slack) {
                    SloState::Ok
                } else if covered(3.0 * cfg.slack) {
                    SloState::Warn
                } else {
                    SloState::Breach
                }
            }
            _ => SloState::Ok,
        };
        if degraded >= cfg.degraded_warn && divergence_state == SloState::Ok {
            return SloState::Warn;
        }
        divergence_state
    }
}

fn availability(successes: u64, losses: u64, timeouts: u64) -> f64 {
    let total = successes + losses + timeouts;
    if total == 0 {
        1.0
    } else {
        successes as f64 / total as f64
    }
}

/// Windowed availability of one operation class.
#[derive(Debug, Clone, PartialEq)]
pub struct SloClassSnapshot {
    /// Outcomes in the window.
    pub total: u64,
    /// Successful requests.
    pub successes: u64,
    /// Lost requests.
    pub losses: u64,
    /// Timed-out requests.
    pub timeouts: u64,
    /// Measured availability (1.0 when empty).
    pub availability: f64,
    /// Wilson lower bound on availability.
    pub availability_lo: f64,
    /// Wilson upper bound on availability.
    pub availability_hi: f64,
}

/// Point-in-time state of an [`SloMonitor`].
#[derive(Debug, Clone, PartialEq)]
pub struct SloSnapshot {
    /// Logical time the snapshot was taken at.
    pub now_ns: u64,
    /// Logical time the window covers.
    pub window_ns: u64,
    /// Outcomes in the window, all classes.
    pub total: u64,
    /// Successful requests.
    pub successes: u64,
    /// Lost requests.
    pub losses: u64,
    /// Timed-out requests.
    pub timeouts: u64,
    /// Measured user-perceived availability (1.0 when empty).
    pub availability: f64,
    /// Wilson lower bound on availability.
    pub availability_lo: f64,
    /// Wilson upper bound on availability.
    pub availability_hi: f64,
    /// Analytic target availability, when configured.
    pub target: Option<f64>,
    /// `availability − target` (0 when no target).
    pub divergence: f64,
    /// Degraded (numerical-fallback) events in the window.
    pub degraded: u64,
    /// Threshold state.
    pub state: SloState,
    /// Per-operation-class breakdowns.
    pub classes: BTreeMap<String, SloClassSnapshot>,
}

impl SloSnapshot {
    /// Renders the snapshot as a JSON object (the `/slo` endpoint body
    /// and the `slo` record of the metrics artifact).
    pub fn to_json(&self) -> JsonValue {
        let classes = JsonValue::object(
            self.classes
                .iter()
                .map(|(name, c)| {
                    (
                        name.as_str(),
                        JsonValue::object(vec![
                            ("total", JsonValue::UInt(c.total)),
                            ("successes", JsonValue::UInt(c.successes)),
                            ("losses", JsonValue::UInt(c.losses)),
                            ("timeouts", JsonValue::UInt(c.timeouts)),
                            ("availability", JsonValue::Float(c.availability)),
                            ("availability_lo", JsonValue::Float(c.availability_lo)),
                            ("availability_hi", JsonValue::Float(c.availability_hi)),
                        ]),
                    )
                })
                .collect(),
        );
        let mut fields = vec![
            ("now_ns", JsonValue::UInt(self.now_ns)),
            ("window_ns", JsonValue::UInt(self.window_ns)),
            ("total", JsonValue::UInt(self.total)),
            ("successes", JsonValue::UInt(self.successes)),
            ("losses", JsonValue::UInt(self.losses)),
            ("timeouts", JsonValue::UInt(self.timeouts)),
            ("availability", JsonValue::Float(self.availability)),
            ("availability_lo", JsonValue::Float(self.availability_lo)),
            ("availability_hi", JsonValue::Float(self.availability_hi)),
        ];
        if let Some(target) = self.target {
            fields.push(("target", JsonValue::Float(target)));
        }
        fields.push(("divergence", JsonValue::Float(self.divergence)));
        fields.push(("degraded", JsonValue::UInt(self.degraded)));
        fields.push(("state", JsonValue::str(self.state.as_str())));
        fields.push(("classes", classes));
        JsonValue::object(fields)
    }
}

// ---------------------------------------------------------------------
// Global monitor, driven by the shared telemetry clock.
// ---------------------------------------------------------------------

fn global_slo() -> MutexGuard<'static, Option<SloMonitor>> {
    static SLO: OnceLock<Mutex<Option<SloMonitor>>> = OnceLock::new();
    SLO.get_or_init(|| Mutex::new(None))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Installs a fresh global monitor with `cfg`, replacing any previous
/// one (and its accumulated windows).
pub fn slo_configure(cfg: SloConfig) {
    *global_slo() = Some(SloMonitor::new(cfg));
}

/// Drops the global monitor.
pub fn slo_reset() {
    *global_slo() = None;
}

/// Folds a batch of outcomes into the global monitor at the current
/// telemetry clock; no-op while recording is disabled. Records create a
/// default-configured monitor on first use.
pub fn slo_record_outcomes(class: &str, successes: u64, losses: u64, timeouts: u64) {
    if !crate::enabled() {
        return;
    }
    let now = clock_now_ns();
    global_slo()
        .get_or_insert_with(|| SloMonitor::new(SloConfig::default()))
        .record_outcomes(now, class, successes, losses, timeouts);
}

/// Records `n` degraded (numerical-fallback) events into the global
/// monitor at the current telemetry clock; no-op while disabled.
pub fn slo_degraded(n: u64) {
    if !crate::enabled() {
        return;
    }
    let now = clock_now_ns();
    global_slo()
        .get_or_insert_with(|| SloMonitor::new(SloConfig::default()))
        .degraded_event(now, n);
}

/// Snapshot of the global monitor at the current telemetry clock;
/// `None` until the monitor is configured or first written to.
pub fn slo_snapshot() -> Option<SloSnapshot> {
    let now = clock_now_ns();
    global_slo().as_mut().map(|m| m.snapshot(now))
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: u64 = 1_000_000_000;

    fn cfg(target: Option<f64>) -> SloConfig {
        SloConfig {
            epoch_ns: S,
            epochs: 10,
            target_availability: target,
            ..SloConfig::default()
        }
    }

    #[test]
    fn wilson_matches_pinned_values() {
        // Same formula (and pinned behaviour) as uavail_sim's Proportion.
        assert_eq!(wilson_interval(0, 0, 3.9), (0.0, 1.0));
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo > 0.40 && lo < 0.41, "{lo}");
        assert!(hi > 0.59 && hi < 0.60, "{hi}");
        let (lo, hi) = wilson_interval(0, 1000, 3.9);
        assert!(lo.abs() < 1e-12, "{lo}");
        assert!(hi > 0.0 && hi < 0.02, "{hi}");
    }

    #[test]
    fn empty_monitor_is_ok_and_fully_available() {
        let mut m = SloMonitor::new(cfg(Some(0.999995587)));
        let s = m.snapshot(0);
        assert_eq!(s.total, 0);
        assert_eq!(s.availability, 1.0);
        assert_eq!(s.state, SloState::Ok);
        assert_eq!(s.divergence, 1.0 - 0.999995587);
    }

    #[test]
    fn measured_availability_matching_target_is_ok() {
        let target = 0.999;
        let mut m = SloMonitor::new(cfg(Some(target)));
        // 1 loss per 1000 requests, exactly the target unavailability.
        m.record_outcomes(0, "search", 99_900, 100, 0);
        let s = m.snapshot(0);
        assert_eq!(s.state, SloState::Ok);
        assert!((s.availability - target).abs() < 1e-9);
        assert!(s.availability_lo <= target && target <= s.availability_hi);
        assert_eq!(s.classes["search"].losses, 100);
    }

    #[test]
    fn collapsed_availability_breaches_and_recovers_after_rotation() {
        let mut m = SloMonitor::new(cfg(Some(0.999995587)));
        // An availability collapse: 20% of requests lost.
        m.record_outcomes(0, "search", 8_000, 2_000, 0);
        assert_eq!(m.snapshot(0).state, SloState::Breach);
        // Healthy traffic after the burst, burst still in window: the
        // pooled window is still far off target.
        m.record_outcomes(5 * S, "search", 100_000, 0, 0);
        assert_eq!(m.snapshot(5 * S).state, SloState::Breach);
        // Window rotates past the burst; only healthy traffic remains,
        // and zero observed losses cover the tiny target unavailability.
        m.record_outcomes(12 * S, "search", 100_000, 0, 0);
        let s = m.snapshot(12 * S);
        assert_eq!(s.losses, 0);
        assert_eq!(s.state, SloState::Ok);
    }

    #[test]
    fn timeouts_count_against_availability_like_losses() {
        let mut m = SloMonitor::new(cfg(None));
        m.record_outcomes(0, "book", 900, 0, 100);
        let s = m.snapshot(0);
        assert!((s.availability - 0.9).abs() < 1e-12);
        assert_eq!(s.timeouts, 100);
        assert_eq!(s.state, SloState::Ok, "no target: degradation-only");
    }

    #[test]
    fn degraded_events_warn_then_breach_then_recover() {
        let mut m = SloMonitor::new(cfg(Some(0.9999)));
        m.record_outcomes(0, "search", 10_000, 1, 0);
        assert_eq!(m.snapshot(0).state, SloState::Ok);
        m.degraded_event(S, 1);
        assert_eq!(m.snapshot(S).state, SloState::Warn);
        m.degraded_event(2 * S, 10);
        assert_eq!(m.snapshot(2 * S).state, SloState::Breach);
        // Rotation retires the fault burst together with its epoch.
        let s = m.snapshot(15 * S);
        assert_eq!(s.degraded, 0);
        assert_eq!(s.state, SloState::Ok);
    }

    #[test]
    fn snapshot_json_is_valid_and_carries_the_state() {
        let mut m = SloMonitor::new(cfg(Some(0.999995587)));
        m.record_outcomes(0, "search", 1_000_000, 4, 1);
        let text = m.snapshot(0).to_json().to_string();
        crate::json::validate(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        let parsed = crate::json::parse(&text).unwrap();
        assert_eq!(parsed.get("state").unwrap().as_str(), Some("ok"));
        assert_eq!(parsed.get("total").unwrap().as_u64(), Some(1_000_005));
        assert!(parsed.get("classes").unwrap().get("search").is_some());
    }

    #[test]
    fn global_monitor_gates_on_enabled() {
        let _guard = crate::test_support::lock();
        crate::set_enabled(false);
        slo_reset();
        crate::window::clock_reset();
        slo_record_outcomes("search", 10, 1, 0);
        assert!(slo_snapshot().is_none(), "disabled records nothing");
        crate::set_enabled(true);
        slo_configure(cfg(Some(0.9)));
        slo_record_outcomes("search", 9, 1, 0);
        slo_degraded(0);
        let s = slo_snapshot().unwrap();
        assert_eq!(s.total, 10);
        assert_eq!(s.losses, 1);
        crate::set_enabled(false);
        slo_reset();
        crate::window::clock_reset();
    }
}
