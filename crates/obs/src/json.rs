//! Minimal JSON support for the metrics artifact: a value type that
//! serializes to compact JSON, and a parser used by tests, the
//! reproduction harness and the `bench-diff` tool to read emitted
//! artifacts back without any external dependency.
//!
//! The parser is strict where artifact hygiene matters: duplicate keys
//! within one object are rejected (a duplicated record field means the
//! emitter is broken), and numbers whose value is not a finite `f64`
//! (overflow to infinity, or a `NaN`/`Infinity` literal, which is not
//! JSON at all) are rejected rather than silently folded to `null`.
//! Container nesting is bounded at [`MAX_DEPTH`] so adversarial input
//! (`[[[[…`) is a parse error instead of unbounded recursion.

use std::fmt;

/// A JSON value. Objects preserve insertion order (the artifact schema is
/// deterministic, so stable key order keeps artifacts diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (the artifact's native numeric type).
    UInt(u64),
    /// Floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object values.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// Field lookup on an object value; `None` on other kinds.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content of a `Str` value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Numeric value as `f64` (`UInt` widens losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value as `u64` (`Float` only when it is a whole number).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Float(v) if v.fract() == 0.0 && *v >= 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The items of an `Array` value.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(v) => write!(f, "{v}"),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 never prints exponents without a digit
                    // and always includes a leading digit — valid JSON.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            JsonValue::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses `text` as one JSON value.
///
/// # Errors
///
/// A human-readable description of the first syntax error (with its byte
/// offset), a duplicated object key, or a numeric literal whose value is
/// not a finite `f64`.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(value)
}

/// Maximum container nesting [`parse`] accepts. Artifacts are a handful
/// of levels deep; the bound exists so hostile or corrupted input cannot
/// drive the recursive-descent parser into a stack overflow.
pub const MAX_DEPTH: usize = 128;

/// Validates that `text` is one well-formed JSON value (see [`parse`]).
///
/// # Errors
///
/// As for [`parse`].
pub fn validate(text: &str) -> Result<(), String> {
    parse(text).map(|_| ())
}

/// Validates every non-empty line of a JSON-lines document.
///
/// # Errors
///
/// The first offending line number (1-based) and its syntax error.
pub fn validate_lines(text: &str) -> Result<usize, String> {
    let mut valid = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        valid += 1;
    }
    Ok(valid)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{' | b'[') if depth >= MAX_DEPTH => {
            Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos))
        }
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null").map(|()| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {}", *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    let start = *pos;
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                // Decode from the original text so multi-byte UTF-8 runs
                // stay intact; escapes are resolved in a second pass.
                let raw = std::str::from_utf8(&b[start + 1..*pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
                *pos += 1;
                return unescape(raw, start);
            }
            b'\\' => {
                let esc = b
                    .get(*pos + 1)
                    .ok_or_else(|| format!("dangling escape at byte {}", *pos))?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *pos += 2,
                    b'u' => {
                        let hex = b
                            .get(*pos + 2..*pos + 6)
                            .ok_or_else(|| format!("short \\u escape at byte {}", *pos))?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

/// Resolves the escapes of an already-scanned string body.
fn unescape(raw: &str, at: usize) -> Result<String, String> {
    if !raw.contains('\\') {
        return Ok(raw.to_string());
    }
    let mut out = String::with_capacity(raw.len());
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('/') => out.push('/'),
            Some('b') => out.push('\u{8}'),
            Some('f') => out.push('\u{c}'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let code = read_hex4(&mut chars, at)?;
                let ch = if (0xD800..0xDC00).contains(&code) {
                    // High surrogate: a \uXXXX low surrogate must follow.
                    if (chars.next(), chars.next()) != (Some('\\'), Some('u')) {
                        return Err(format!("lone surrogate in string at byte {at}"));
                    }
                    let low = read_hex4(&mut chars, at)?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(format!("invalid surrogate pair in string at byte {at}"));
                    }
                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    char::from_u32(scalar)
                } else {
                    char::from_u32(code)
                };
                out.push(ch.ok_or_else(|| format!("lone surrogate in string at byte {at}"))?);
            }
            _ => return Err(format!("bad escape in string at byte {at}")),
        }
    }
    Ok(out)
}

fn read_hex4(chars: &mut std::str::Chars<'_>, at: usize) -> Result<u32, String> {
    let mut code = 0u32;
    for _ in 0..4 {
        let d = chars
            .next()
            .and_then(|c| c.to_digit(16))
            .ok_or_else(|| format!("short \\u escape in string at byte {at}"))?;
        code = code * 16 + d;
    }
    Ok(code)
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    let negative = b.get(*pos) == Some(&b'-');
    if negative {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    let mut integral = true;
    if b.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing fraction digits at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        integral = false;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing exponent digits at byte {}", *pos));
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).expect("ASCII number literal");
    if integral && !negative {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
    }
    let v: f64 = text
        .parse()
        .map_err(|_| format!("unparseable number at byte {start}"))?;
    if !v.is_finite() {
        return Err(format!("non-finite number at byte {start}"));
    }
    Ok(JsonValue::Float(v))
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    let mut items = Vec::new();
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    let mut fields: Vec<(String, JsonValue)> = Vec::new();
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key_at = *pos;
        let key = parse_string(b, pos)?;
        if fields.iter().any(|(k, _)| *k == key) {
            return Err(format!("duplicate object key {key:?} at byte {key_at}"));
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = parse_value(b, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_validate() {
        let v = JsonValue::object(vec![
            ("type", JsonValue::str("histogram")),
            ("name", JsonValue::str("with \"quotes\"\nand\tctrl \u{1}")),
            ("count", JsonValue::UInt(u64::MAX)),
            ("mean", JsonValue::Float(277.75)),
            ("whole", JsonValue::Float(3.0)),
            ("nan", JsonValue::Float(f64::NAN)),
            (
                "buckets",
                JsonValue::Array(vec![
                    JsonValue::Array(vec![JsonValue::UInt(15), JsonValue::UInt(99)]),
                    JsonValue::Null,
                    JsonValue::Bool(true),
                ]),
            ),
            ("empty_obj", JsonValue::Object(vec![])),
            ("empty_arr", JsonValue::Array(vec![])),
        ]);
        let text = v.to_string();
        validate(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("\"nan\":null"));
        assert!(text.contains("\"whole\":3.0"));
    }

    #[test]
    fn parse_round_trips_values() {
        let parsed = parse("{\"a\":[1,2.5,\"x\\n\",true,null],\"b\":{\"c\":-3}}").unwrap();
        assert_eq!(parsed.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[0].as_u64(),
            Some(1)
        );
        assert_eq!(
            parsed.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\n")
        );
        assert_eq!(
            parsed.get("b").unwrap().get("c").unwrap().as_f64(),
            Some(-3.0)
        );
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap().as_str(), Some("😀"));
    }

    #[test]
    fn validate_accepts_plain_values() {
        for ok in [
            "0",
            "-12.5e-3",
            "true",
            "false",
            "null",
            "\"x\"",
            "[1,2,3]",
            "{\"a\":[{}]}",
            "  {\"k\" : 1}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "[1]]",
            "1.",
            "1e",
            "\"\\ud800\"",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn validate_rejects_non_finite_numerics() {
        // `NaN` / `Infinity` are not JSON literals at all, and a literal
        // that overflows f64 to infinity carries no usable value — the
        // artifact emitters write `null` for non-finite floats, so any of
        // these in an artifact means a broken producer.
        for bad in [
            "NaN",
            "Infinity",
            "-Infinity",
            "nan",
            "1e999",
            "-1e999",
            "[1e400]",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
        // Large-but-finite still parses.
        assert_eq!(parse("1e308").unwrap().as_f64(), Some(1e308));
    }

    #[test]
    fn validate_rejects_duplicate_keys() {
        for bad in [
            "{\"a\":1,\"a\":2}",
            "{\"a\":1,\"b\":{\"x\":1,\"x\":2}}",
            "[{\"k\":null,\"k\":null}]",
        ] {
            let err = validate(bad).unwrap_err();
            assert!(err.contains("duplicate object key"), "{bad:?}: {err}");
        }
        // The same key in *sibling* objects is fine.
        validate("[{\"k\":1},{\"k\":2}]").unwrap();
    }

    #[test]
    fn nesting_is_bounded_not_fatal() {
        // Exactly MAX_DEPTH nested containers still parse…
        let ok = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        parse(&ok).unwrap();
        // …one more is a clean error…
        let over = format!(
            "{}1{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        assert!(parse(&over).unwrap_err().contains("nesting deeper"));
        // …and a 100k-deep bomb is an error too, not a stack overflow.
        assert!(parse(&"[".repeat(100_000)).is_err());
        assert!(parse(&"{\"k\":".repeat(100_000)).is_err());
    }

    #[test]
    fn validate_lines_counts_and_locates() {
        assert_eq!(validate_lines("{\"a\":1}\n\n[2]\n").unwrap(), 2);
        let err = validate_lines("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
