//! Minimal JSON support for the metrics artifact: a value type that
//! serializes to compact JSON, and a validating parser used by tests and
//! the reproduction harness to check emitted artifacts without any
//! external dependency.

use std::fmt;

/// A JSON value. Objects preserve insertion order (the artifact schema is
/// deterministic, so stable key order keeps artifacts diffable).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer (the artifact's native numeric type).
    UInt(u64),
    /// Floating-point number; non-finite values serialize as `null`.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<JsonValue>),
    /// Object as ordered key/value pairs.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object values.
    pub fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(v) => write!(f, "{v}"),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // `{}` on f64 never prints exponents without a digit
                    // and always includes a leading digit — valid JSON.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            JsonValue::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Validates that `text` is one syntactically well-formed JSON value.
///
/// # Errors
///
/// A human-readable description of the first syntax error, with its byte
/// offset.
pub fn validate(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing input at byte {pos}"));
    }
    Ok(())
}

/// Validates every non-empty line of a JSON-lines document.
///
/// # Errors
///
/// The first offending line number (1-based) and its syntax error.
pub fn validate_lines(text: &str) -> Result<usize, String> {
    let mut valid = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        valid += 1;
    }
    Ok(valid)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}", pos = *pos)),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => parse_string(b, pos),
        Some(b't') => parse_literal(b, pos, "true"),
        Some(b'f') => parse_literal(b, pos, "false"),
        Some(b'n') => parse_literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte {c:?} at {}", *pos)),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                let esc = b
                    .get(*pos + 1)
                    .ok_or_else(|| format!("dangling escape at byte {}", *pos))?;
                match esc {
                    b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => *pos += 2,
                    b'u' => {
                        let hex = b
                            .get(*pos + 2..*pos + 6)
                            .ok_or_else(|| format!("short \\u escape at byte {}", *pos))?;
                        if !hex.iter().all(u8::is_ascii_hexdigit) {
                            return Err(format!("bad \\u escape at byte {}", *pos));
                        }
                        *pos += 6;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte in string at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("number without digits at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing fraction digits at byte {}", *pos));
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("missing exponent digits at byte {}", *pos));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while b.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
    }
    *pos - start
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
                skip_ws(b, pos);
            }
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        skip_ws(b, pos);
        parse_value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_validate() {
        let v = JsonValue::object(vec![
            ("type", JsonValue::str("histogram")),
            ("name", JsonValue::str("with \"quotes\"\nand\tctrl \u{1}")),
            ("count", JsonValue::UInt(u64::MAX)),
            ("mean", JsonValue::Float(277.75)),
            ("whole", JsonValue::Float(3.0)),
            ("nan", JsonValue::Float(f64::NAN)),
            (
                "buckets",
                JsonValue::Array(vec![
                    JsonValue::Array(vec![JsonValue::UInt(15), JsonValue::UInt(99)]),
                    JsonValue::Null,
                    JsonValue::Bool(true),
                ]),
            ),
            ("empty_obj", JsonValue::Object(vec![])),
            ("empty_arr", JsonValue::Array(vec![])),
        ]);
        let text = v.to_string();
        validate(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert!(text.contains("\"nan\":null"));
        assert!(text.contains("\"whole\":3.0"));
    }

    #[test]
    fn validate_accepts_plain_values() {
        for ok in [
            "0",
            "-12.5e-3",
            "true",
            "false",
            "null",
            "\"x\"",
            "[1,2,3]",
            "{\"a\":[{}]}",
            "  {\"k\" : 1}  ",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validate_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01x",
            "\"unterminated",
            "1 2",
            "{'a':1}",
            "[1]]",
            "1.",
            "1e",
        ] {
            assert!(validate(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn validate_lines_counts_and_locates() {
        assert_eq!(validate_lines("{\"a\":1}\n\n[2]\n").unwrap(), 2);
        let err = validate_lines("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
