//! Graphviz DOT export for operational-profile graphs.

use std::fmt::Write as _;

use crate::ProfileGraph;

impl ProfileGraph {
    /// Renders the profile graph in Graphviz DOT format — Start/Exit as
    /// double circles, functions as boxes, edges labeled with their
    /// probabilities (zero-probability edges omitted).
    ///
    /// # Examples
    ///
    /// ```
    /// use uavail_profile::ProfileGraph;
    ///
    /// # fn main() -> Result<(), uavail_profile::ProfileError> {
    /// let mut g = ProfileGraph::new(vec!["Home"])?;
    /// g.set_start_transition("Home", 1.0)?;
    /// g.set_transition("Home", None, 1.0)?;
    /// let dot = g.validated()?.to_dot();
    /// assert!(dot.starts_with("digraph"));
    /// assert!(dot.contains("\"Start\" -> \"Home\""));
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        out.push_str("digraph operational_profile {\n");
        out.push_str("  rankdir=LR;\n");
        out.push_str("  \"Start\" [shape=doublecircle];\n");
        out.push_str("  \"Exit\" [shape=doublecircle];\n");
        for name in self.function_names() {
            let _ = writeln!(out, "  {name:?} [shape=box];");
        }
        for (j, name) in self.function_names().iter().enumerate() {
            let p = self.start_probability(j);
            if p > 0.0 {
                let _ = writeln!(out, "  \"Start\" -> {name:?} [label=\"{p}\"];");
            }
        }
        for (i, from) in self.function_names().iter().enumerate() {
            for (j, to) in self.function_names().iter().enumerate() {
                let p = self.transition_probability(i, j);
                if p > 0.0 {
                    let _ = writeln!(out, "  {from:?} -> {to:?} [label=\"{p}\"];");
                }
            }
            let p = self.exit_probability(i);
            if p > 0.0 {
                let _ = writeln!(out, "  {from:?} -> \"Exit\" [label=\"{p}\"];");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::ProfileGraph;

    fn graph() -> ProfileGraph {
        let mut g = ProfileGraph::new(vec!["Home", "Search"]).unwrap();
        g.set_start_transition("Home", 1.0).unwrap();
        g.set_transition("Home", Some("Search"), 0.5).unwrap();
        g.set_transition("Home", None, 0.5).unwrap();
        g.set_transition("Search", None, 1.0).unwrap();
        g.validated().unwrap()
    }

    #[test]
    fn dot_structure() {
        let dot = graph().to_dot();
        assert!(dot.starts_with("digraph operational_profile {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("\"Home\" [shape=box];"));
        assert!(dot.contains("\"Start\" -> \"Home\" [label=\"1\"];"));
        assert!(dot.contains("\"Home\" -> \"Search\" [label=\"0.5\"];"));
        assert!(dot.contains("\"Search\" -> \"Exit\" [label=\"1\"];"));
        // Zero-probability edges omitted.
        assert!(!dot.contains("\"Search\" -> \"Home\""));
    }
}
