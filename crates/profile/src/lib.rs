//! # uavail-profile
//!
//! User operational profiles: who invokes what, how often, and in which
//! combinations.
//!
//! The *user level* of the paper's hierarchy describes a visit to the site
//! as a walk on a graph: `Start → {functions} → Exit` with transition
//! probabilities `p_ij` (Figure 2). Every walk terminates at `Exit`, so the
//! graph is an absorbing Markov chain, and the quantities the paper needs
//! are absorbing-chain functionals:
//!
//! * [`ProfileGraph`] — the validated graph; per-function *visit
//!   probabilities* and *expected invocation counts* via the fundamental
//!   matrix; **exact scenario-class probabilities** (the probability that a
//!   session invokes exactly a given set of functions — the rows of the
//!   paper's Table 1) via taboo chains and inclusion–exclusion; Monte Carlo
//!   session sampling for cross-validation.
//! * [`ScenarioTable`] — a directly specified scenario-probability table
//!   (the form the paper's Table 1 takes), with validation, category
//!   grouping (the paper's SC1–SC4) and convenience queries.
//!
//! # Examples
//!
//! ```
//! use uavail_profile::ProfileGraph;
//!
//! # fn main() -> Result<(), uavail_profile::ProfileError> {
//! let mut g = ProfileGraph::new(vec!["Home", "Search"])?;
//! g.set_start_transition("Home", 1.0)?;
//! g.set_transition("Home", Some("Search"), 0.6)?;
//! g.set_transition("Home", None, 0.4)?;       // None = Exit
//! g.set_transition("Search", None, 1.0)?;
//! let g = g.validated()?;
//! // 60% of sessions reach Search.
//! let visit = g.visit_probabilities()?;
//! assert!((visit[1] - 0.6).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![allow(clippy::needless_range_loop)] // index loops mirror the math
mod dot;
mod error;
mod graph;
mod scenario;

pub use error::ProfileError;
pub use graph::ProfileGraph;
pub use scenario::{Scenario, ScenarioCategory, ScenarioTable};
