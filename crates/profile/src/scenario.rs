use std::collections::HashMap;
use std::fmt;

use crate::ProfileError;

/// One user execution scenario: a class of sessions identified by the set
/// of functions invoked (the paper's Table 1 rows).
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable label, e.g. `"St-Ho-{Se-Bo}*-Pa-Ex"`.
    pub label: String,
    /// Names of the functions invoked in this scenario.
    pub functions: Vec<String>,
    /// Activation probability `π_i` of the scenario.
    pub probability: f64,
}

impl Scenario {
    /// Creates a scenario row.
    pub fn new<S: Into<String>>(
        label: impl Into<String>,
        functions: Vec<S>,
        probability: f64,
    ) -> Self {
        Scenario {
            label: label.into(),
            functions: functions.into_iter().map(Into::into).collect(),
            probability,
        }
    }

    /// Whether this scenario invokes the named function.
    pub fn invokes(&self, function: &str) -> bool {
        self.functions.iter().any(|f| f == function)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:.1}%)", self.label, self.probability * 100.0)
    }
}

/// The paper's four scenario categories (Section 5.2, Figure 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScenarioCategory {
    /// SC1 — information-only sessions: neither Search, Book nor Pay.
    Sc1InformationOnly,
    /// SC2 — Search invoked, but neither Book nor Pay.
    Sc2SearchOnly,
    /// SC3 — Book invoked, but not Pay.
    Sc3BookWithoutPay,
    /// SC4 — the session reaches Pay.
    Sc4Pay,
}

impl ScenarioCategory {
    /// Classifies a scenario given the names of the Search, Book and Pay
    /// functions in the profile at hand.
    pub fn classify(scenario: &Scenario, search: &str, book: &str, pay: &str) -> Self {
        if scenario.invokes(pay) {
            ScenarioCategory::Sc4Pay
        } else if scenario.invokes(book) {
            ScenarioCategory::Sc3BookWithoutPay
        } else if scenario.invokes(search) {
            ScenarioCategory::Sc2SearchOnly
        } else {
            ScenarioCategory::Sc1InformationOnly
        }
    }

    /// All categories in SC1..SC4 order.
    pub fn all() -> [ScenarioCategory; 4] {
        [
            ScenarioCategory::Sc1InformationOnly,
            ScenarioCategory::Sc2SearchOnly,
            ScenarioCategory::Sc3BookWithoutPay,
            ScenarioCategory::Sc4Pay,
        ]
    }
}

impl fmt::Display for ScenarioCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ScenarioCategory::Sc1InformationOnly => "SC1 (Home/Browse only)",
            ScenarioCategory::Sc2SearchOnly => "SC2 (Search, no Book/Pay)",
            ScenarioCategory::Sc3BookWithoutPay => "SC3 (Book, no Pay)",
            ScenarioCategory::Sc4Pay => "SC4 (Pay)",
        };
        f.write_str(name)
    }
}

/// A validated table of user execution scenarios — the operational profile
/// in the directly specified form the paper's Table 1 uses.
///
/// # Examples
///
/// ```
/// use uavail_profile::{Scenario, ScenarioTable};
///
/// # fn main() -> Result<(), uavail_profile::ProfileError> {
/// let table = ScenarioTable::new(vec![
///     Scenario::new("St-Ho-Ex", vec!["Home"], 0.4),
///     Scenario::new("St-Ho-Se-Ex", vec!["Home", "Search"], 0.6),
/// ])?;
/// assert!((table.probability_where(|s| s.invokes("Search")) - 0.6).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTable {
    scenarios: Vec<Scenario>,
}

impl ScenarioTable {
    /// Validates and wraps a list of scenarios.
    ///
    /// # Errors
    ///
    /// [`ProfileError::BadTable`] when the table is empty, contains an
    /// invalid probability, duplicates a label, or the probabilities do not
    /// sum to one (tolerance `1e-6`, accommodating the paper's rounded
    /// percentages).
    pub fn new(scenarios: Vec<Scenario>) -> Result<Self, ProfileError> {
        if scenarios.is_empty() {
            return Err(ProfileError::BadTable {
                reason: "no scenarios".into(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        let mut total = 0.0;
        for s in &scenarios {
            if !(s.probability.is_finite() && (0.0..=1.0).contains(&s.probability)) {
                return Err(ProfileError::BadTable {
                    reason: format!(
                        "scenario {:?} has invalid probability {}",
                        s.label, s.probability
                    ),
                });
            }
            if !seen.insert(s.label.clone()) {
                return Err(ProfileError::BadTable {
                    reason: format!("duplicate scenario label {:?}", s.label),
                });
            }
            total += s.probability;
        }
        if (total - 1.0).abs() > 1e-6 {
            return Err(ProfileError::BadTable {
                reason: format!("scenario probabilities sum to {total}, expected 1"),
            });
        }
        Ok(ScenarioTable { scenarios })
    }

    /// The scenarios, in the order supplied.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the table is empty (never true for a validated table).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Total probability of scenarios matching a predicate.
    pub fn probability_where(&self, predicate: impl Fn(&Scenario) -> bool) -> f64 {
        self.scenarios
            .iter()
            .filter(|s| predicate(s))
            .map(|s| s.probability)
            .sum()
    }

    /// Groups scenario probability mass by the paper's SC1–SC4 categories.
    ///
    /// `search`, `book` and `pay` name the functions that define the
    /// category boundaries in this profile.
    pub fn by_category(
        &self,
        search: &str,
        book: &str,
        pay: &str,
    ) -> HashMap<ScenarioCategory, f64> {
        let mut out: HashMap<ScenarioCategory, f64> = HashMap::new();
        for s in &self.scenarios {
            let cat = ScenarioCategory::classify(s, search, book, pay);
            *out.entry(cat).or_insert(0.0) += s.probability;
        }
        out
    }

    /// Expected value of a per-scenario function, weighted by scenario
    /// probability — the shape of the paper's user-availability equation
    /// (10): `A(user) = Σ_i π_i A(scenario_i)`.
    pub fn weighted_sum(&self, value: impl Fn(&Scenario) -> f64) -> f64 {
        self.scenarios
            .iter()
            .map(|s| s.probability * value(s))
            .sum()
    }
}

impl fmt::Display for ScenarioTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.scenarios {
            writeln!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ScenarioTable {
        ScenarioTable::new(vec![
            Scenario::new("s1", vec!["Home"], 0.3),
            Scenario::new("s2", vec!["Home", "Search"], 0.4),
            Scenario::new("s3", vec!["Home", "Search", "Book"], 0.2),
            Scenario::new("s4", vec!["Home", "Search", "Book", "Pay"], 0.1),
        ])
        .unwrap()
    }

    #[test]
    fn validation() {
        assert!(ScenarioTable::new(vec![]).is_err());
        assert!(ScenarioTable::new(vec![Scenario::new("a", vec!["f"], 0.5)]).is_err());
        assert!(ScenarioTable::new(vec![
            Scenario::new("a", vec!["f"], 0.5),
            Scenario::new("a", vec!["f"], 0.5),
        ])
        .is_err());
        assert!(ScenarioTable::new(vec![Scenario::new("a", vec!["f"], 1.5)]).is_err());
        assert!(ScenarioTable::new(vec![Scenario::new("a", vec!["f"], 1.0)]).is_ok());
    }

    #[test]
    fn probability_queries() {
        let t = table();
        assert!((t.probability_where(|s| s.invokes("Search")) - 0.7).abs() < 1e-12);
        assert!((t.probability_where(|s| s.invokes("Pay")) - 0.1).abs() < 1e-12);
        assert!((t.probability_where(|_| true) - 1.0).abs() < 1e-12);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn categories() {
        let t = table();
        let cats = t.by_category("Search", "Book", "Pay");
        assert!((cats[&ScenarioCategory::Sc1InformationOnly] - 0.3).abs() < 1e-12);
        assert!((cats[&ScenarioCategory::Sc2SearchOnly] - 0.4).abs() < 1e-12);
        assert!((cats[&ScenarioCategory::Sc3BookWithoutPay] - 0.2).abs() < 1e-12);
        assert!((cats[&ScenarioCategory::Sc4Pay] - 0.1).abs() < 1e-12);
        let total: f64 = cats.values().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_is_expectation() {
        let t = table();
        // Value = number of functions: 1*0.3 + 2*0.4 + 3*0.2 + 4*0.1 = 2.1
        let v = t.weighted_sum(|s| s.functions.len() as f64);
        assert!((v - 2.1).abs() < 1e-12);
    }

    #[test]
    fn classification_precedence() {
        // Pay dominates Book dominates Search.
        let s = Scenario::new("x", vec!["Search", "Book", "Pay"], 1.0);
        assert_eq!(
            ScenarioCategory::classify(&s, "Search", "Book", "Pay"),
            ScenarioCategory::Sc4Pay
        );
        let s = Scenario::new("x", vec!["Browse"], 1.0);
        assert_eq!(
            ScenarioCategory::classify(&s, "Search", "Book", "Pay"),
            ScenarioCategory::Sc1InformationOnly
        );
    }

    #[test]
    fn display_forms() {
        let s = Scenario::new("St-Ho-Ex", vec!["Home"], 0.25);
        assert_eq!(s.to_string(), "St-Ho-Ex (25.0%)");
        assert!(ScenarioCategory::Sc4Pay.to_string().contains("SC4"));
        assert_eq!(ScenarioCategory::all().len(), 4);
    }
}
