use std::collections::HashMap;

use rand::Rng;
use uavail_linalg::{Lu, Matrix};
use uavail_markov::{AbsorbingDtmc, Dtmc};

use crate::ProfileError;

/// Cap on the number of functions for exact scenario-class enumeration
/// (the algorithm iterates over all `2^n` visited-function sets).
const MAX_FUNCTIONS_FOR_ENUMERATION: usize = 20;

/// A user operational-profile graph: `Start → functions → Exit`.
///
/// Construction is incremental: create the node set with
/// [`ProfileGraph::new`], assign transition probabilities, then seal the
/// graph with [`ProfileGraph::validated`], which checks stochasticity and
/// termination. All analysis methods require a validated graph (they
/// re-validate cheaply and return [`ProfileError`] otherwise).
///
/// Sessions start at `Start`, which routes to a first function
/// (`set_start_transition`); each function routes to other functions or to
/// `Exit` (`set_transition` with `None` as destination).
///
/// See the [crate documentation](crate) for an end-to-end example.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileGraph {
    functions: Vec<String>,
    index: HashMap<String, usize>,
    /// `start[j]`: probability the session begins at function `j`.
    start: Vec<f64>,
    /// `trans[i][j]`: probability of moving from function `i` to `j`.
    trans: Vec<Vec<f64>>,
    /// `exit[i]`: probability of leaving the site from function `i`.
    exit: Vec<f64>,
}

impl ProfileGraph {
    /// Creates a graph over the given function names with all transition
    /// probabilities zero.
    ///
    /// # Errors
    ///
    /// * [`ProfileError::Empty`] when no functions are given.
    /// * [`ProfileError::BadTable`] for duplicate function names.
    pub fn new<S: Into<String>>(functions: Vec<S>) -> Result<Self, ProfileError> {
        if functions.is_empty() {
            return Err(ProfileError::Empty);
        }
        let functions: Vec<String> = functions.into_iter().map(Into::into).collect();
        let mut index = HashMap::with_capacity(functions.len());
        for (i, f) in functions.iter().enumerate() {
            if index.insert(f.clone(), i).is_some() {
                return Err(ProfileError::BadTable {
                    reason: format!("duplicate function name {f:?}"),
                });
            }
        }
        let n = functions.len();
        Ok(ProfileGraph {
            functions,
            index,
            start: vec![0.0; n],
            trans: vec![vec![0.0; n]; n],
            exit: vec![0.0; n],
        })
    }

    /// Function names in declaration order.
    pub fn function_names(&self) -> &[String] {
        &self.functions
    }

    /// Number of functions.
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// Probability that a session starts at function index `j`
    /// (0 for out-of-range indices).
    pub fn start_probability(&self, j: usize) -> f64 {
        self.start.get(j).copied().unwrap_or(0.0)
    }

    /// Probability of moving from function index `i` to function index `j`
    /// (0 for out-of-range indices).
    pub fn transition_probability(&self, i: usize, j: usize) -> f64 {
        self.trans
            .get(i)
            .and_then(|row| row.get(j))
            .copied()
            .unwrap_or(0.0)
    }

    /// Probability of exiting the site from function index `i`
    /// (0 for out-of-range indices).
    pub fn exit_probability(&self, i: usize) -> f64 {
        self.exit.get(i).copied().unwrap_or(0.0)
    }

    fn resolve(&self, name: &str) -> Result<usize, ProfileError> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| ProfileError::UnknownFunction { name: name.into() })
    }

    fn check_probability(context: &str, p: f64) -> Result<(), ProfileError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(())
        } else {
            Err(ProfileError::InvalidProbability {
                context: context.to_string(),
                value: p,
            })
        }
    }

    /// Sets the probability that a session begins at `function`.
    ///
    /// # Errors
    ///
    /// [`ProfileError::UnknownFunction`] / [`ProfileError::InvalidProbability`].
    pub fn set_start_transition(&mut self, function: &str, p: f64) -> Result<(), ProfileError> {
        let j = self.resolve(function)?;
        Self::check_probability(&format!("Start -> {function}"), p)?;
        self.start[j] = p;
        Ok(())
    }

    /// Sets the probability of moving from `from` to `to`
    /// (`None` meaning Exit).
    ///
    /// # Errors
    ///
    /// [`ProfileError::UnknownFunction`] / [`ProfileError::InvalidProbability`].
    pub fn set_transition(
        &mut self,
        from: &str,
        to: Option<&str>,
        p: f64,
    ) -> Result<(), ProfileError> {
        let i = self.resolve(from)?;
        match to {
            Some(name) => {
                let j = self.resolve(name)?;
                Self::check_probability(&format!("{from} -> {name}"), p)?;
                self.trans[i][j] = p;
            }
            None => {
                Self::check_probability(&format!("{from} -> Exit"), p)?;
                self.exit[i] = p;
            }
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), ProfileError> {
        let tol = 1e-9;
        let start_sum: f64 = self.start.iter().sum();
        if (start_sum - 1.0).abs() > tol {
            return Err(ProfileError::UnnormalizedNode {
                node: "Start".into(),
                sum: start_sum,
            });
        }
        for (i, name) in self.functions.iter().enumerate() {
            let sum: f64 = self.trans[i].iter().sum::<f64>() + self.exit[i];
            if (sum - 1.0).abs() > tol {
                return Err(ProfileError::UnnormalizedNode {
                    node: name.clone(),
                    sum,
                });
            }
        }
        // Termination: from every function reachable from Start, Exit must
        // be reachable. Equivalent to the absorbing analysis succeeding;
        // here run a cheap reachability check both ways.
        let n = self.num_functions();
        let mut reachable = vec![false; n];
        let mut stack: Vec<usize> = (0..n).filter(|&j| self.start[j] > 0.0).collect();
        for &s in &stack {
            reachable[s] = true;
        }
        while let Some(i) = stack.pop() {
            for j in 0..n {
                if self.trans[i][j] > 0.0 && !reachable[j] {
                    reachable[j] = true;
                    stack.push(j);
                }
            }
        }
        // Backward from Exit.
        let mut reaches_exit = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if reaches_exit[i] {
                    continue;
                }
                let direct = self.exit[i] > 0.0;
                let via = (0..n).any(|j| self.trans[i][j] > 0.0 && reaches_exit[j]);
                if direct || via {
                    reaches_exit[i] = true;
                    changed = true;
                }
            }
        }
        for i in 0..n {
            if reachable[i] && !reaches_exit[i] {
                return Err(ProfileError::NonTerminating {
                    reason: format!("function {:?} cannot reach Exit", self.functions[i]),
                });
            }
        }
        Ok(())
    }

    /// Validates the graph and returns it, enabling the analysis methods.
    ///
    /// # Errors
    ///
    /// * [`ProfileError::UnnormalizedNode`] when any node's outgoing
    ///   probabilities do not sum to one.
    /// * [`ProfileError::NonTerminating`] when a reachable function cannot
    ///   reach Exit.
    pub fn validated(self) -> Result<Self, ProfileError> {
        self.validate()?;
        Ok(self)
    }

    /// Converts to an absorbing DTMC: state 0 = Start, states `1..=n` =
    /// functions, state `n + 1` = Exit (absorbing).
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn to_dtmc(&self) -> Result<Dtmc, ProfileError> {
        self.validate()?;
        let n = self.num_functions();
        let size = n + 2;
        let mut p = Matrix::zeros(size, size);
        for j in 0..n {
            p[(0, j + 1)] = self.start[j];
        }
        for i in 0..n {
            for j in 0..n {
                p[(i + 1, j + 1)] = self.trans[i][j];
            }
            p[(i + 1, n + 1)] = self.exit[i];
        }
        p[(n + 1, n + 1)] = 1.0;
        Ok(Dtmc::new(p)?)
    }

    /// Probability that a session visits each function at least once,
    /// indexed like [`ProfileGraph::function_names`].
    ///
    /// # Errors
    ///
    /// Propagates validation and Markov failures.
    pub fn visit_probabilities(&self) -> Result<Vec<f64>, ProfileError> {
        self.validate()?;
        let n = self.num_functions();
        let mut out = Vec::with_capacity(n);
        for target in 0..n {
            // Make `target` absorbing alongside Exit; absorption at target
            // = the session visits it.
            let dtmc = self.to_dtmc()?;
            let mut p = dtmc.transition_matrix().clone();
            let t = target + 1;
            for c in 0..p.cols() {
                p[(t, c)] = 0.0;
            }
            p[(t, t)] = 1.0;
            let chain = AbsorbingDtmc::new(Dtmc::new(p)?)?;
            let analysis = chain.analyze()?;
            out.push(analysis.absorption_probability(0, t)?);
        }
        Ok(out)
    }

    /// Expected number of invocations of each function per session.
    ///
    /// # Errors
    ///
    /// Propagates validation and Markov failures.
    pub fn expected_invocations(&self) -> Result<Vec<f64>, ProfileError> {
        let dtmc = self.to_dtmc()?;
        let chain = AbsorbingDtmc::new(dtmc)?;
        let analysis = chain.analyze()?;
        let visits = analysis.expected_visits_from(0)?;
        // visits is indexed by transient position; transient states are
        // 0 (Start) and 1..=n (functions) — Exit is the only absorbing one.
        let n = self.num_functions();
        let mut out = vec![0.0; n];
        for (pos, &state) in analysis.transient_states().iter().enumerate() {
            if state >= 1 && state <= n {
                out[state - 1] = visits[pos];
            }
        }
        Ok(out)
    }

    /// Expected number of function invocations in a session (session
    /// "length" in pages).
    ///
    /// # Errors
    ///
    /// Propagates validation and Markov failures.
    pub fn mean_session_length(&self) -> Result<f64, ProfileError> {
        Ok(self.expected_invocations()?.iter().sum())
    }

    /// Probability mass function of the session length (number of
    /// function invocations), truncated at `max_len`; the last returned
    /// entry at index `max_len` carries the remaining tail mass
    /// `P(length > max_len - 1) - P(length > max_len)`… more precisely the
    /// vector has `max_len + 1` entries where entry `k` (for
    /// `1 <= k <= max_len`) is `P(length = k)` and entry 0 is always 0
    /// (every session invokes at least one function).
    ///
    /// Computed by stepping the sub-stochastic function-to-function kernel:
    /// `P(length = k) = v Tᵏ⁻¹ e` with `v` the start vector, `T` the
    /// function-transition block and `e` the exit column.
    ///
    /// # Errors
    ///
    /// Propagates validation failures; [`ProfileError::BadTable`] when
    /// `max_len == 0`.
    pub fn session_length_pmf(&self, max_len: usize) -> Result<Vec<f64>, ProfileError> {
        self.validate()?;
        if max_len == 0 {
            return Err(ProfileError::BadTable {
                reason: "max_len must be at least 1".into(),
            });
        }
        let n = self.num_functions();
        let mut pmf = vec![0.0; max_len + 1];
        let mut v = self.start.clone();
        for k in 1..=max_len {
            // Mass exiting after exactly this invocation.
            pmf[k] = v.iter().zip(&self.exit).map(|(p, e)| p * e).sum();
            // Advance one function step.
            let mut next = vec![0.0; n];
            for i in 0..n {
                if v[i] == 0.0 {
                    continue;
                }
                for j in 0..n {
                    next[j] += v[i] * self.trans[i][j];
                }
            }
            v = next;
        }
        Ok(pmf)
    }

    /// Probability that a session reaches Exit while invoking only
    /// functions from `allowed` (a bitmask-like slice of booleans indexed
    /// like [`ProfileGraph::function_names`]).
    ///
    /// # Errors
    ///
    /// Propagates validation failures; length mismatches are reported as
    /// [`ProfileError::BadTable`].
    pub fn subset_probability(&self, allowed: &[bool]) -> Result<f64, ProfileError> {
        self.validate()?;
        let n = self.num_functions();
        if allowed.len() != n {
            return Err(ProfileError::BadTable {
                reason: format!("allowed mask has length {}, expected {n}", allowed.len()),
            });
        }
        // h[i] = P(reach Exit staying within `allowed` | currently at
        // function i), for i in the allowed set. Solve (I - T) h = e where
        // T is the allowed-to-allowed transition block and e the exit
        // column.
        let members: Vec<usize> = (0..n).filter(|&i| allowed[i]).collect();
        let m = members.len();
        if m == 0 {
            // No function allowed: a session always invokes at least one.
            return Ok(0.0);
        }
        let mut a = Matrix::identity(m);
        let mut b = vec![0.0; m];
        for (r, &i) in members.iter().enumerate() {
            for (c, &j) in members.iter().enumerate() {
                a[(r, c)] -= self.trans[i][j];
            }
            b[r] = self.exit[i];
        }
        let h = Lu::new(&a)
            .map_err(|e| ProfileError::Markov(e.into()))?
            .solve(&b)
            .map_err(|e| ProfileError::Markov(e.into()))?;
        let mut total = 0.0;
        for (r, &i) in members.iter().enumerate() {
            total += self.start[i] * h[r];
        }
        Ok(total)
    }

    /// Exact scenario-class probabilities: for every set `S` of functions,
    /// the probability that a session invokes *exactly* the functions in
    /// `S` (each at least once, none outside). Rows of the paper's Table 1
    /// are precisely these classes.
    ///
    /// Returns `(mask, probability)` pairs for classes with probability
    /// above `threshold`, sorted by decreasing probability. `mask` is a
    /// bitmask over [`ProfileGraph::function_names`] indices.
    ///
    /// Computed by inclusion–exclusion over taboo-chain probabilities:
    /// `P(= S) = Σ_{T ⊆ S} (-1)^{|S \ T|} P(⊆ T)`.
    ///
    /// # Errors
    ///
    /// * [`ProfileError::BadTable`] when the profile has more than 20
    ///   functions (the enumeration is exponential).
    /// * Propagated validation failures.
    pub fn scenario_class_probabilities(
        &self,
        threshold: f64,
    ) -> Result<Vec<(u32, f64)>, ProfileError> {
        self.validate()?;
        let n = self.num_functions();
        if n > MAX_FUNCTIONS_FOR_ENUMERATION {
            return Err(ProfileError::BadTable {
                reason: format!(
                    "scenario enumeration supports at most \
                     {MAX_FUNCTIONS_FOR_ENUMERATION} functions, got {n}"
                ),
            });
        }
        let full = 1u32 << n;
        // Subset-reach probabilities for every mask.
        let mut subset = vec![0.0f64; full as usize];
        for mask in 0..full {
            let allowed: Vec<bool> = (0..n).map(|i| mask & (1 << i) != 0).collect();
            subset[mask as usize] = self.subset_probability(&allowed)?;
        }
        // Möbius inversion (inclusion–exclusion) via the subset-sum
        // transform: exact[S] = Σ_{T⊆S} (-1)^{|S|-|T|} subset[T].
        // Computed in O(n 2^n) with the standard in-place transform.
        let mut exact = subset;
        for bit in 0..n {
            for mask in 0..full {
                if mask & (1 << bit) != 0 {
                    let lower = exact[(mask ^ (1 << bit)) as usize];
                    exact[mask as usize] -= lower;
                }
            }
        }
        let mut out: Vec<(u32, f64)> = exact
            .into_iter()
            .enumerate()
            .filter(|&(_, p)| p > threshold)
            .map(|(m, p)| (m as u32, p))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite probabilities"));
        Ok(out)
    }

    /// Converts a scenario mask from
    /// [`ProfileGraph::scenario_class_probabilities`] to sorted function
    /// names.
    pub fn mask_to_names(&self, mask: u32) -> Vec<String> {
        (0..self.num_functions())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| self.functions[i].clone())
            .collect()
    }

    /// Converts the exact scenario-class enumeration into a validated
    /// [`crate::ScenarioTable`], with labels listing the visited functions
    /// (`"Home+Search"`). Classes below `threshold` are dropped and the
    /// remaining probabilities renormalized, so the table always sums to
    /// one.
    ///
    /// # Errors
    ///
    /// Propagates enumeration failures; [`ProfileError::BadTable`] when
    /// every class falls below the threshold.
    pub fn to_scenario_table(&self, threshold: f64) -> Result<crate::ScenarioTable, ProfileError> {
        let classes = self.scenario_class_probabilities(threshold)?;
        let total: f64 = classes.iter().map(|(_, p)| p).sum();
        if total <= 0.0 {
            return Err(ProfileError::BadTable {
                reason: "no scenario class above the threshold".into(),
            });
        }
        let scenarios = classes
            .into_iter()
            .map(|(mask, p)| {
                let names = self.mask_to_names(mask);
                crate::Scenario::new(names.join("+"), names, p / total)
            })
            .collect();
        crate::ScenarioTable::new(scenarios)
    }

    /// Samples one user session: the sequence of function indices invoked.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn sample_session<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Vec<usize>, ProfileError> {
        self.validate()?;
        let n = self.num_functions();
        let mut session = Vec::new();
        // Draw the first function.
        let mut u: f64 = rng.random();
        let mut current = None;
        for j in 0..n {
            if u < self.start[j] {
                current = Some(j);
                break;
            }
            u -= self.start[j];
        }
        let mut at = match current {
            Some(j) => j,
            None => n - 1, // numerical slack: fall back to the last function
        };
        loop {
            session.push(at);
            // Guard against pathological cycles (validated graphs terminate
            // with probability one, but a bound keeps tests robust).
            if session.len() > 1_000_000 {
                return Err(ProfileError::NonTerminating {
                    reason: "session exceeded 1e6 steps".into(),
                });
            }
            let mut u: f64 = rng.random();
            if u < self.exit[at] {
                return Ok(session);
            }
            u -= self.exit[at];
            let mut moved = false;
            for j in 0..n {
                if u < self.trans[at][j] {
                    at = j;
                    moved = true;
                    break;
                }
                u -= self.trans[at][j];
            }
            if !moved {
                // Numerical slack at the top of the distribution: exit.
                return Ok(session);
            }
        }
    }

    /// Monte Carlo estimate of scenario-class probabilities from
    /// `sessions` sampled sessions: returns `mask -> relative frequency`.
    ///
    /// # Errors
    ///
    /// Propagates validation failures.
    pub fn monte_carlo_scenarios<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        sessions: usize,
    ) -> Result<HashMap<u32, f64>, ProfileError> {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for _ in 0..sessions {
            let session = self.sample_session(rng)?;
            let mut mask = 0u32;
            for f in session {
                mask |= 1 << f;
            }
            *counts.entry(mask).or_insert(0) += 1;
        }
        Ok(counts
            .into_iter()
            .map(|(m, c)| (m, c as f64 / sessions as f64))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two-function demo: Home -> Search -> Exit with a retry loop.
    fn simple() -> ProfileGraph {
        let mut g = ProfileGraph::new(vec!["Home", "Search"]).unwrap();
        g.set_start_transition("Home", 1.0).unwrap();
        g.set_transition("Home", Some("Search"), 0.5).unwrap();
        g.set_transition("Home", None, 0.5).unwrap();
        g.set_transition("Search", Some("Home"), 0.2).unwrap();
        g.set_transition("Search", None, 0.8).unwrap();
        g.validated().unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(matches!(
            ProfileGraph::new(Vec::<String>::new()),
            Err(ProfileError::Empty)
        ));
        assert!(ProfileGraph::new(vec!["a", "a"]).is_err());
        let mut g = ProfileGraph::new(vec!["a"]).unwrap();
        assert!(g.set_start_transition("missing", 0.5).is_err());
        assert!(g.set_start_transition("a", 1.5).is_err());
        g.set_start_transition("a", 1.0).unwrap();
        // "a" has no outgoing probability yet.
        assert!(matches!(
            g.clone().validated(),
            Err(ProfileError::UnnormalizedNode { .. })
        ));
        g.set_transition("a", None, 1.0).unwrap();
        assert!(g.validated().is_ok());
    }

    #[test]
    fn detects_non_termination() {
        let mut g = ProfileGraph::new(vec!["trap"]).unwrap();
        g.set_start_transition("trap", 1.0).unwrap();
        g.set_transition("trap", Some("trap"), 1.0).unwrap();
        assert!(matches!(
            g.validated(),
            Err(ProfileError::NonTerminating { .. })
        ));
    }

    #[test]
    fn visit_probabilities_simple() {
        let g = simple();
        let v = g.visit_probabilities().unwrap();
        // Home always visited.
        assert!((v[0] - 1.0).abs() < 1e-12);
        // Search: from Home, reach Search before Exit. h = 0.5 + 0 =…
        // P(visit Search) = 0.5 / (1) computed via first-step: from Home,
        // p = 0.5 (direct); returning to Home only happens after Search.
        assert!((v[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expected_invocations_match_hand_calculation() {
        let g = simple();
        let e = g.expected_invocations().unwrap();
        // E[Home visits] h satisfies: h = 1 + P(return to Home) * h where
        // return = 0.5 * 0.2. So h = 1 / 0.9.
        assert!((e[0] - 1.0 / 0.9).abs() < 1e-12);
        // E[Search visits] = 0.5 * E[Home visits].
        assert!((e[1] - 0.5 / 0.9).abs() < 1e-12);
        assert!((g.mean_session_length().unwrap() - 1.5 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn subset_probability_home_only() {
        let g = simple();
        // Sessions visiting only Home: exit directly from Home: 0.5.
        let p = g.subset_probability(&[true, false]).unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        // Only Search: impossible (sessions start at Home).
        let p = g.subset_probability(&[false, true]).unwrap();
        assert_eq!(p, 0.0);
        // Everything allowed: certainty.
        let p = g.subset_probability(&[true, true]).unwrap();
        assert!((p - 1.0).abs() < 1e-12);
        assert!(g.subset_probability(&[true]).is_err());
    }

    #[test]
    fn scenario_classes_sum_to_one() {
        let g = simple();
        let classes = g.scenario_class_probabilities(0.0).unwrap();
        let total: f64 = classes.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Two classes: {Home} with 0.5 and {Home, Search} with 0.5.
        assert_eq!(classes.len(), 2);
        for (mask, p) in classes {
            match mask {
                0b01 => assert!((p - 0.5).abs() < 1e-12),
                0b11 => assert!((p - 0.5).abs() < 1e-12),
                other => panic!("unexpected scenario mask {other:#b}"),
            }
        }
    }

    #[test]
    fn mask_to_names() {
        let g = simple();
        assert_eq!(g.mask_to_names(0b10), vec!["Search".to_string()]);
        assert_eq!(
            g.mask_to_names(0b11),
            vec!["Home".to_string(), "Search".to_string()]
        );
    }

    #[test]
    fn session_length_pmf_properties() {
        let g = simple();
        let pmf = g.session_length_pmf(200).unwrap();
        assert_eq!(pmf[0], 0.0);
        // P(length = 1): exit directly from Home = 0.5.
        assert!((pmf[1] - 0.5).abs() < 1e-12);
        // P(length = 2): Home -> Search -> exit = 0.5 * 0.8 = 0.4.
        assert!((pmf[2] - 0.4).abs() < 1e-12);
        // Total mass (truncation tail is negligible at 200).
        let total: f64 = pmf.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        // Mean from the pmf matches the fundamental-matrix value.
        let mean: f64 = pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        assert!((mean - g.mean_session_length().unwrap()).abs() < 1e-9);
        assert!(g.session_length_pmf(0).is_err());
    }

    #[test]
    fn session_length_pmf_matches_sampling() {
        let g = simple();
        let pmf = g.session_length_pmf(30).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let samples = 100_000usize;
        let mut counts = vec![0usize; 31];
        for _ in 0..samples {
            let len = g.sample_session(&mut rng).unwrap().len();
            if len <= 30 {
                counts[len] += 1;
            }
        }
        for k in 1..=6 {
            let est = counts[k] as f64 / samples as f64;
            assert!(
                (est - pmf[k]).abs() < 0.01,
                "k={k}: pmf {} vs sampled {est}",
                pmf[k]
            );
        }
    }

    #[test]
    fn monte_carlo_agrees_with_exact() {
        let g = simple();
        let mut rng = StdRng::seed_from_u64(42);
        let mc = g.monte_carlo_scenarios(&mut rng, 200_000).unwrap();
        let exact = g.scenario_class_probabilities(0.0).unwrap();
        for (mask, p) in exact {
            let est = mc.get(&mask).copied().unwrap_or(0.0);
            assert!(
                (est - p).abs() < 0.01,
                "mask {mask:#b}: exact {p}, MC {est}"
            );
        }
    }

    #[test]
    fn scenario_table_bridge() {
        let g = simple();
        let table = g.to_scenario_table(0.0).unwrap();
        assert_eq!(table.len(), 2);
        let total: f64 = table.scenarios().iter().map(|s| s.probability).sum();
        assert!((total - 1.0).abs() < 1e-12);
        let home_only = table
            .scenarios()
            .iter()
            .find(|s| s.label == "Home")
            .expect("home-only class");
        assert!((home_only.probability - 0.5).abs() < 1e-12);
        let both = table
            .scenarios()
            .iter()
            .find(|s| s.label == "Home+Search")
            .expect("combined class");
        assert!(both.invokes("Search"));
        // Unreachable threshold.
        assert!(g.to_scenario_table(2.0).is_err());
    }

    #[test]
    fn sample_sessions_terminate_and_start_at_home() {
        let g = simple();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let s = g.sample_session(&mut rng).unwrap();
            assert!(!s.is_empty());
            assert_eq!(s[0], 0); // Home
        }
    }
}
