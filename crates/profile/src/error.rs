use std::fmt;

use uavail_markov::MarkovError;

/// Errors produced by operational-profile construction and analysis.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProfileError {
    /// A referenced function name is not part of the profile.
    UnknownFunction {
        /// The offending name.
        name: String,
    },
    /// A probability is negative, above one, or non-finite.
    InvalidProbability {
        /// Where the probability was supplied.
        context: String,
        /// The offending value.
        value: f64,
    },
    /// Outgoing probabilities of a node do not sum to one.
    UnnormalizedNode {
        /// The node ("Start" or a function name).
        node: String,
        /// The actual sum.
        sum: f64,
    },
    /// The profile has no functions.
    Empty,
    /// Sessions are not guaranteed to terminate (Exit unreachable from some
    /// function that is itself reachable).
    NonTerminating {
        /// Explanation.
        reason: String,
    },
    /// An underlying Markov computation failed.
    Markov(MarkovError),
    /// A scenario table row is inconsistent (duplicate scenario, bad
    /// probability, or the table does not sum to one).
    BadTable {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::UnknownFunction { name } => {
                write!(f, "unknown function {name:?}")
            }
            ProfileError::InvalidProbability { context, value } => {
                write!(f, "invalid probability {value} for {context}")
            }
            ProfileError::UnnormalizedNode { node, sum } => {
                write!(
                    f,
                    "outgoing probabilities of {node:?} sum to {sum}, expected 1"
                )
            }
            ProfileError::Empty => write!(f, "profile has no functions"),
            ProfileError::NonTerminating { reason } => {
                write!(f, "sessions may never terminate: {reason}")
            }
            ProfileError::Markov(e) => write!(f, "markov analysis failed: {e}"),
            ProfileError::BadTable { reason } => write!(f, "bad scenario table: {reason}"),
        }
    }
}

impl std::error::Error for ProfileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProfileError::Markov(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MarkovError> for ProfileError {
    fn from(e: MarkovError) -> Self {
        ProfileError::Markov(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        assert!(ProfileError::Empty.to_string().contains("no functions"));
        let wrapped = ProfileError::from(MarkovError::EmptyChain);
        assert!(wrapped.source().is_some());
        assert!(ProfileError::Empty.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProfileError>();
    }
}
