//! Deterministic fault injection for the uavail stack.
//!
//! The paper's core robustness idea — imperfect failure coverage — asks
//! what happens when a fault is *not* handled cleanly. This crate turns
//! that question on the evaluation stack itself: named injection sites
//! threaded through the solvers (LU pivots, GTH mass, M/M/c/K parameters,
//! the loss cache, replication streams, parallel workers) can be armed to
//! fire deterministically, so the hardening layers above them (panic
//! isolation, resilient sweeps, the steady-state fallback chain) can be
//! exercised in tests and CI instead of trusted on faith.
//!
//! # Contract
//!
//! * **Zero-cost when disabled.** Every entry point first reads one
//!   relaxed [`AtomicBool`]; with injection disabled (the default) no
//!   lock is taken, no TLS is touched, and every value passes through
//!   unchanged, so production outputs are bit-for-bit identical to a
//!   build without this crate. This is the same contract the obs layer
//!   pins for its recorder.
//! * **Deterministic.** Whether a site fires is a pure function of the
//!   configured seed, the site name, a per-thread key (assigned in
//!   thread-creation order from a process-global counter) and the
//!   per-thread invocation count of that site. Re-running the same
//!   process with the same seed and the same work schedule reproduces
//!   the same faults.
//! * **Observable.** Armed sites and fired faults are counted through
//!   `uavail-obs` (`faultinject.armed`, `faultinject.fired`, and
//!   `faultinject.fired.<site>`) so a metrics artifact records exactly
//!   which faults a run was subjected to.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// Registry of every injection site: `(shorthand, site name, effect)`.
///
/// The shorthand is what `reproduce --inject` and [`arm_spec`] accept on
/// the command line; the site name is what the instrumented code passes
/// to [`fired`] / [`corrupt_f64`].
pub const SITES: &[(&str, &str, &str)] = &[
    (
        "lu",
        "linalg.lu.pivot_perturb",
        "scales an LU pivot, degrading solve accuracy",
    ),
    (
        "singular",
        "linalg.lu.force_singular",
        "forces an LU factorization to report singularity",
    ),
    (
        "gth",
        "markov.gth.mass_drift",
        "drifts probability mass after GTH normalization",
    ),
    (
        "mmck",
        "queueing.mmck.corrupt",
        "corrupts the M/M/c/K arrival rate to NaN",
    ),
    (
        "cache",
        "travel.loss_cache.poison",
        "poisons a loss-cache entry with NaN",
    ),
    (
        "drop",
        "sim.replicate.event_drop",
        "drops a simulation replication",
    ),
    (
        "dup",
        "sim.replicate.event_dup",
        "duplicates a simulation replication",
    ),
    (
        "panic",
        "core.par.worker_panic",
        "panics inside a parallel map worker",
    ),
    (
        "wpanic",
        "serve.worker_panic",
        "panics an /eval query-plane worker mid-request",
    ),
];

/// Default firing probability when a spec arms a site without a rate.
pub const DEFAULT_RATE: f64 = 0.25;

/// Global on/off switch; the only state consulted on the fast path.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Monotone source of per-thread keys.
static NEXT_THREAD_KEY: AtomicU64 = AtomicU64::new(0);

struct Config {
    seed: u64,
    /// Armed sites with their firing probability in `(0, 1]`.
    rates: HashMap<&'static str, f64>,
}

fn config() -> &'static RwLock<Config> {
    static CONFIG: OnceLock<RwLock<Config>> = OnceLock::new();
    CONFIG.get_or_init(|| {
        RwLock::new(Config {
            seed: 0,
            rates: HashMap::new(),
        })
    })
}

thread_local! {
    /// Lazily assigned per-thread key, stable for the thread's lifetime.
    static THREAD_KEY: Cell<u64> = const { Cell::new(u64::MAX) };
    /// Per-site invocation counters on this thread.
    static SITE_COUNTS: RefCell<HashMap<&'static str, u64>> = RefCell::new(HashMap::new());
}

fn thread_key() -> u64 {
    THREAD_KEY.with(|k| {
        let v = k.get();
        if v != u64::MAX {
            return v;
        }
        let fresh = NEXT_THREAD_KEY.fetch_add(1, Ordering::Relaxed);
        k.set(fresh);
        fresh
    })
}

/// SplitMix64 output function — the same scrambler `uavail-sim` uses for
/// replication seeds, reused here so firing decisions are well mixed.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over the site name, so each site gets an independent stream.
fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in site.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Enables or disables the injection layer globally.
///
/// Disabled is the default; with the flag off every site is inert and
/// outputs are bit-for-bit identical to an uninstrumented build.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether the injection layer is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the base seed for firing decisions.
pub fn set_seed(seed: u64) {
    config().write().expect("faultinject config").seed = seed;
}

/// Resolves a site shorthand or full site name from [`SITES`].
pub fn resolve_site(name: &str) -> Option<&'static str> {
    SITES
        .iter()
        .find(|(short, full, _)| *short == name || *full == name)
        .map(|(_, full, _)| *full)
}

/// Arms one site with the given firing probability.
///
/// # Errors
///
/// An unknown site name or a rate outside `(0, 1]` is reported as text
/// (the caller is typically a CLI parsing `--inject`).
pub fn arm(name: &str, rate: f64) -> Result<(), String> {
    let site = resolve_site(name).ok_or_else(|| {
        let known: Vec<&str> = SITES.iter().map(|(short, _, _)| *short).collect();
        format!("unknown injection site {name:?}; known sites: {known:?}")
    })?;
    if !(rate.is_finite() && rate > 0.0 && rate <= 1.0) {
        return Err(format!("injection rate {rate} for {site} not in (0, 1]"));
    }
    config()
        .write()
        .expect("faultinject config")
        .rates
        .insert(site, rate);
    uavail_obs::counter_add("faultinject.armed", 1);
    Ok(())
}

/// Arms a comma-separated spec of `site[:rate]` entries, e.g.
/// `"lu,panic:0.05"`. Sites may be named by shorthand or full name;
/// entries without a rate use [`DEFAULT_RATE`].
///
/// # Errors
///
/// The first unparsable entry, unknown site, or out-of-range rate.
pub fn arm_spec(spec: &str) -> Result<(), String> {
    for entry in spec.split(',').filter(|e| !e.trim().is_empty()) {
        let entry = entry.trim();
        let (name, rate) = match entry.split_once(':') {
            Some((name, rate_text)) => {
                let rate: f64 = rate_text
                    .parse()
                    .map_err(|_| format!("bad injection rate in {entry:?}"))?;
                (name, rate)
            }
            None => (entry, DEFAULT_RATE),
        };
        arm(name, rate)?;
    }
    Ok(())
}

/// Disarms every site and disables injection. The per-thread invocation
/// counters of the calling thread are cleared; other threads keep theirs
/// (determinism is defined over a fixed schedule from process start).
pub fn reset() {
    set_enabled(false);
    let mut cfg = config().write().expect("faultinject config");
    cfg.rates.clear();
    cfg.seed = 0;
    SITE_COUNTS.with(|c| c.borrow_mut().clear());
}

/// The currently armed sites and their rates, in registry order.
pub fn armed_sites() -> Vec<(&'static str, f64)> {
    let cfg = config().read().expect("faultinject config");
    SITES
        .iter()
        .filter_map(|(_, full, _)| cfg.rates.get(full).map(|&r| (*full, r)))
        .collect()
}

/// Decides whether the named site fires at this invocation.
///
/// Disabled (the common case) this is one relaxed atomic load. Enabled,
/// the decision hashes `(seed, site, thread key, invocation index)`
/// through SplitMix64 and compares against the armed rate; unarmed sites
/// never fire but still advance their invocation counter so arming one
/// site does not shift another site's schedule.
#[inline]
pub fn fired(site: &'static str) -> bool {
    if !ENABLED.load(Ordering::Relaxed) {
        return false;
    }
    fired_slow(site)
}

#[cold]
fn fired_slow(site: &'static str) -> bool {
    let invocation = SITE_COUNTS.with(|c| {
        let mut counts = c.borrow_mut();
        let n = counts.entry(site).or_insert(0);
        let current = *n;
        *n += 1;
        current
    });
    let (seed, rate) = {
        let cfg = config().read().expect("faultinject config");
        match cfg.rates.get(site) {
            Some(&rate) => (cfg.seed, rate),
            None => return false,
        }
    };
    let mix = splitmix64(
        seed ^ site_hash(site)
            ^ thread_key().wrapping_mul(0xA24B_AED4_963E_E407)
            ^ invocation.wrapping_mul(0x9FB2_1C65_1E98_DF25),
    );
    // Top 53 bits → uniform in [0, 1); rate = 1.0 always fires.
    let u = (mix >> 11) as f64 / (1u64 << 53) as f64;
    let fire = u < rate;
    if fire {
        uavail_obs::counter_add("faultinject.fired", 1);
        if uavail_obs::enabled() {
            uavail_obs::counter_add(&format!("faultinject.fired.{site}"), 1);
        }
    }
    fire
}

/// Passes `value` through unchanged unless the site fires, in which case
/// it returns NaN — the canonical "corrupted parameter" for sites whose
/// hardening is a typed validation error downstream.
#[inline]
pub fn corrupt_f64(site: &'static str, value: f64) -> f64 {
    if fired(site) {
        f64::NAN
    } else {
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Injection state is process-global; tests that touch it serialize
    /// here (the same pattern the obs tests use for their recorder).
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn disabled_is_inert() {
        let _guard = lock();
        reset();
        arm("lu", 1.0).unwrap();
        // Armed but not enabled: nothing fires, values pass through.
        assert!(!fired("linalg.lu.pivot_perturb"));
        assert_eq!(
            corrupt_f64("queueing.mmck.corrupt", 3.5).to_bits(),
            3.5f64.to_bits()
        );
        reset();
    }

    #[test]
    fn rate_one_always_fires_and_unarmed_never() {
        let _guard = lock();
        reset();
        set_seed(7);
        arm("mmck", 1.0).unwrap();
        set_enabled(true);
        for _ in 0..32 {
            assert!(fired("queueing.mmck.corrupt"));
            assert!(!fired("markov.gth.mass_drift"));
        }
        assert!(corrupt_f64("queueing.mmck.corrupt", 1.0).is_nan());
        reset();
    }

    #[test]
    fn firing_schedule_is_deterministic_per_seed() {
        let _guard = lock();
        let schedule = |seed: u64| -> Vec<bool> {
            reset();
            set_seed(seed);
            arm("panic", 0.5).unwrap();
            set_enabled(true);
            let out = (0..64).map(|_| fired("core.par.worker_panic")).collect();
            reset();
            out
        };
        let a = schedule(42);
        let b = schedule(42);
        let c = schedule(43);
        assert_eq!(a, b, "same seed must reproduce the same faults");
        assert_ne!(a, c, "different seeds should differ (64 draws at p=0.5)");
        let fires = a.iter().filter(|&&f| f).count();
        assert!(
            (10..=54).contains(&fires),
            "p=0.5 schedule fired {fires}/64"
        );
    }

    #[test]
    fn spec_parsing_accepts_shorthands_rates_and_rejects_junk() {
        let _guard = lock();
        reset();
        arm_spec("lu, gth:0.125, core.par.worker_panic:1").unwrap();
        let armed = armed_sites();
        assert_eq!(
            armed,
            vec![
                ("linalg.lu.pivot_perturb", DEFAULT_RATE),
                ("markov.gth.mass_drift", 0.125),
                ("core.par.worker_panic", 1.0),
            ]
        );
        assert!(arm_spec("bogus").is_err());
        assert!(arm_spec("lu:nope").is_err());
        assert!(arm_spec("lu:0.0").is_err());
        assert!(arm_spec("lu:1.5").is_err());
        reset();
    }

    #[test]
    fn registry_shorthands_resolve_and_are_unique() {
        let mut shorts: Vec<&str> = SITES.iter().map(|(s, _, _)| *s).collect();
        shorts.sort_unstable();
        shorts.dedup();
        assert_eq!(shorts.len(), SITES.len());
        for (short, full, _) in SITES {
            assert_eq!(resolve_site(short), Some(*full));
            assert_eq!(resolve_site(full), Some(*full));
        }
        assert_eq!(resolve_site("nope"), None);
    }
}
