//! Deterministic parallel replications.
//!
//! Monte-Carlo validation needs many independent replications of the same
//! simulation. Running them on one RNG stream serializes the work; naive
//! parallelization with a shared stream destroys reproducibility. This
//! module does the standard thing instead: every replication gets its own
//! generator, seeded from the base seed through a SplitMix64 scrambler,
//! so replication `k` consumes an identical stream no matter which thread
//! runs it or in which order. Serial and parallel execution are therefore
//! **bit-for-bit identical**, and any single replication can be re-run in
//! isolation for debugging.
//!
//! Two API families share those streams: the history-based
//! [`replicate`] / [`replicate_parallel`] (one `Vec` of observations,
//! right for small batches that need every value) and the streaming
//! [`replicate_fold`] / [`replicate_fold_threads`] (observations folded
//! in index order into online reducers such as
//! [`crate::stats::StreamingBatchMeans`], right for production-scale
//! batches where the history itself is the memory bill).

use rand::rngs::StdRng;
use rand::SeedableRng;
use uavail_core::par::{default_threads, par_fold_threads_with, par_map_threads};
use uavail_core::FromWorkerPanic;

/// Derives the per-replication seed for replication `index` from a base
/// seed.
///
/// Uses the SplitMix64 output function, the conventional seed scrambler
/// (it is what xoshiro-family generators are seeded with): consecutive
/// indices map to statistically unrelated seeds, so replication streams
/// do not overlap in practice even though the base seeds are sequential.
pub fn replication_seed(base_seed: u64, index: usize) -> u64 {
    let mut z = base_seed.wrapping_add(
        (index as u64)
            .wrapping_add(1)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15),
    );
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-replication seeds `replication_seed(base_seed, 0..count)`.
pub fn replication_seeds(base_seed: u64, count: usize) -> Vec<u64> {
    (0..count).map(|i| replication_seed(base_seed, i)).collect()
}

/// Runs `count` independent replications serially.
///
/// `f` receives a fresh [`StdRng`] (seeded via [`replication_seed`]) and
/// the replication index, and returns one observation.
///
/// # Errors
///
/// Returns the first replication error, in index order.
pub fn replicate<T, E, F>(base_seed: u64, count: usize, f: F) -> Result<Vec<T>, E>
where
    F: Fn(&mut StdRng, usize) -> Result<T, E>,
{
    let _span = uavail_obs::span("sim.replicate");
    record_batch_metrics(base_seed, count);
    let run = |i: usize| {
        let _rep = uavail_obs::Stopwatch::start("sim.replicate.replication_ns");
        let mut rng = StdRng::seed_from_u64(replication_seed(base_seed, i));
        f(&mut rng, i)
    };
    match injected_indices(count) {
        // The common path: injection disabled, no index vector built.
        None => (0..count).map(run).collect(),
        Some(indices) => indices.into_iter().map(run).collect(),
    }
}

/// The replication schedule under fault injection: `None` (run `0..count`
/// unchanged) unless the injection layer is enabled, in which case the
/// `sim.replicate.event_drop` / `sim.replicate.event_dup` sites may drop
/// or duplicate individual replications. The decisions are made on the
/// calling thread, so serial and parallel execution inject the same
/// schedule.
fn injected_indices(count: usize) -> Option<Vec<usize>> {
    if !uavail_faultinject::enabled() {
        return None;
    }
    let mut indices = Vec::with_capacity(count);
    for i in 0..count {
        if uavail_faultinject::fired("sim.replicate.event_drop") {
            continue;
        }
        indices.push(i);
        if uavail_faultinject::fired("sim.replicate.event_dup") {
            indices.push(i);
        }
    }
    Some(indices)
}

/// Counts one replication batch and labels it with its RNG stream (base
/// seed plus SplitMix64-derived seed range) so a metrics artifact records
/// exactly which random streams produced the reported numbers. The label
/// formatting allocates, so it is gated on the recorder being enabled.
fn record_batch_metrics(base_seed: u64, count: usize) {
    uavail_obs::counter_add("sim.replicate.batches", 1);
    uavail_obs::counter_add("sim.replicate.replications", count as u64);
    if uavail_obs::enabled() && count > 0 {
        uavail_obs::label(
            "sim.replicate.stream",
            &format!(
                "base={base_seed} reps={count} first={:#018x} last={:#018x}",
                replication_seed(base_seed, 0),
                replication_seed(base_seed, count - 1)
            ),
        );
    }
}

/// Parallel [`replicate`] on one worker per available core: same
/// observations, same order, same error behavior, just faster.
///
/// # Errors
///
/// Exactly the error [`replicate`] would return: the one at the lowest
/// failing replication index.
pub fn replicate_parallel<T, E, F>(base_seed: u64, count: usize, f: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send + FromWorkerPanic,
    F: Fn(&mut StdRng, usize) -> Result<T, E> + Sync,
{
    replicate_parallel_threads(base_seed, count, default_threads(), f)
}

/// [`replicate_parallel`] with an explicit worker-thread cap.
/// `threads <= 1` runs serially on the calling thread.
///
/// # Errors
///
/// Exactly the error [`replicate`] would return.
pub fn replicate_parallel_threads<T, E, F>(
    base_seed: u64,
    count: usize,
    threads: usize,
    f: F,
) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send + FromWorkerPanic,
    F: Fn(&mut StdRng, usize) -> Result<T, E> + Sync,
{
    let _span = uavail_obs::span("sim.replicate_parallel");
    record_batch_metrics(base_seed, count);
    let indices: Vec<usize> = injected_indices(count).unwrap_or_else(|| (0..count).collect());
    par_map_threads(&indices, threads, |&i| {
        let _rep = uavail_obs::Stopwatch::start("sim.replicate.replication_ns");
        let mut rng = StdRng::seed_from_u64(replication_seed(base_seed, i));
        f(&mut rng, i)
    })
}

/// Streaming [`replicate`]: runs `count` replications serially and folds
/// each observation into `init` as it is produced, so no per-replication
/// history vector is ever materialized.
///
/// `f` may be a `FnMut` capturing a single reusable workspace (e.g. a
/// [`crate::SimContext`]) — the serial loop owns it for the whole batch.
/// The fold sees observations in replication-index order, exactly the
/// order [`replicate`] would return them, so folding `replicate`'s vector
/// element by element gives a bit-identical accumulator.
///
/// Under fault injection the `sim.replicate.event_drop` /
/// `sim.replicate.event_dup` sites reshape the schedule exactly as in
/// [`replicate`]; with injection disabled the path is untouched.
///
/// # Errors
///
/// Returns the first replication error, in index order; observations
/// before it were already folded.
pub fn replicate_fold<A, T, E, F, G>(
    base_seed: u64,
    count: usize,
    mut f: F,
    init: A,
    mut fold: G,
) -> Result<A, E>
where
    F: FnMut(&mut StdRng, usize) -> Result<T, E>,
    G: FnMut(&mut A, T),
{
    let _span = uavail_obs::span("sim.replicate_fold");
    record_batch_metrics(base_seed, count);
    let mut acc = init;
    let mut run = |acc: &mut A, i: usize| -> Result<(), E> {
        let _rep = uavail_obs::Stopwatch::start("sim.replicate.replication_ns");
        let mut rng = StdRng::seed_from_u64(replication_seed(base_seed, i));
        fold(acc, f(&mut rng, i)?);
        Ok(())
    };
    match injected_indices(count) {
        // The common path: injection disabled, no index vector built.
        None => {
            for i in 0..count {
                run(&mut acc, i)?;
            }
        }
        Some(indices) => {
            for i in indices {
                run(&mut acc, i)?;
            }
        }
    }
    Ok(acc)
}

/// Parallel [`replicate_fold`] on one worker per available core. See
/// [`replicate_fold_threads`] for the semantics and error contract.
///
/// # Errors
///
/// Exactly as [`replicate_fold_threads`].
pub fn replicate_fold_parallel<A, W, T, E, M, F, G>(
    base_seed: u64,
    count: usize,
    make: M,
    f: F,
    init: A,
    fold: G,
) -> Result<A, E>
where
    T: Send,
    E: Send + FromWorkerPanic,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, &mut StdRng, usize) -> Result<T, E> + Sync,
    G: FnMut(&mut A, T),
{
    replicate_fold_threads(base_seed, count, default_threads(), make, f, init, fold)
}

/// Parallel streaming replication with an explicit worker-thread cap:
/// workers run replications on private workspaces from `make` (one
/// [`crate::SimContext`] per worker, built on the worker thread, reused
/// across all its replications), while the calling thread folds the
/// observations **in replication-index order** through a bounded ring
/// (`uavail_core::par::par_fold_threads_with`), so memory stays
/// `O(threads)` observations regardless of `count`.
///
/// Because every replication owns a seed-derived RNG stream and the fold
/// order is the index order, the final accumulator is **bit-for-bit
/// identical** to [`replicate_fold`] with the same `f` logic, for any
/// thread count. `threads <= 1` runs serially on the calling thread.
///
/// The fault-injection schedule (`sim.replicate.event_drop` / `event_dup`)
/// is decided on the calling thread before any worker starts, exactly as
/// in [`replicate_parallel_threads`].
///
/// # Errors
///
/// Exactly the error [`replicate_fold`] would return: the one at the
/// lowest failing replication index.
pub fn replicate_fold_threads<A, W, T, E, M, F, G>(
    base_seed: u64,
    count: usize,
    threads: usize,
    make: M,
    f: F,
    init: A,
    fold: G,
) -> Result<A, E>
where
    T: Send,
    E: Send + FromWorkerPanic,
    M: Fn() -> W + Sync,
    F: Fn(&mut W, &mut StdRng, usize) -> Result<T, E> + Sync,
    G: FnMut(&mut A, T),
{
    let _span = uavail_obs::span("sim.replicate_fold_parallel");
    record_batch_metrics(base_seed, count);
    let indices: Vec<usize> = injected_indices(count).unwrap_or_else(|| (0..count).collect());
    par_fold_threads_with(
        &indices,
        threads,
        make,
        |ws, &i| {
            let _rep = uavail_obs::Stopwatch::start("sim.replicate.replication_ns");
            let mut rng = StdRng::seed_from_u64(replication_seed(base_seed, i));
            f(ws, &mut rng, i)
        },
        init,
        fold,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimError;
    use rand::Rng;

    #[test]
    fn seeds_are_deterministic_and_distinct() {
        let a = replication_seeds(42, 64);
        let b = replication_seeds(42, 64);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "collision among replication seeds");
        // A different base seed gives a disjoint schedule.
        let c = replication_seeds(43, 64);
        assert!(a.iter().all(|s| !c.contains(s)));
    }

    #[test]
    fn parallel_matches_serial_bit_for_bit() {
        let f = |rng: &mut StdRng, i: usize| -> Result<f64, SimError> {
            let mut acc = i as f64;
            for _ in 0..100 {
                acc += rng.random::<f64>();
            }
            Ok(acc)
        };
        let serial = replicate(7, 33, f).unwrap();
        for threads in [1, 2, 8] {
            let parallel = replicate_parallel_threads(7, 33, threads, f).unwrap();
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.to_bits(), p.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn first_error_in_index_order() {
        let f = |_: &mut StdRng, i: usize| -> Result<(), SimError> {
            if i >= 10 {
                Err(SimError::NoObservations)
            } else {
                Ok(())
            }
        };
        assert_eq!(replicate(1, 40, f).unwrap_err(), SimError::NoObservations);
        assert_eq!(
            replicate_parallel_threads(1, 40, 4, f).unwrap_err(),
            SimError::NoObservations
        );
    }

    #[test]
    fn fold_matches_history_path_bit_for_bit() {
        // Folding the streaming way must reproduce exactly what pushing
        // replicate()'s history vector through the same reducer gives.
        let f = |rng: &mut StdRng, i: usize| -> Result<f64, SimError> {
            let mut acc = i as f64;
            for _ in 0..50 {
                acc += rng.random::<f64>();
            }
            Ok(acc)
        };
        let history = replicate(11, 40, f).unwrap();
        let mut expected = crate::stats::OnlineStats::new();
        for &x in &history {
            expected.push(x);
        }
        let folded = replicate_fold(11, 40, f, crate::stats::OnlineStats::new(), |acc, x| {
            acc.push(x)
        })
        .unwrap();
        assert_eq!(folded, expected);
    }

    #[test]
    fn fold_parallel_matches_serial_bit_for_bit() {
        let serial = replicate_fold(
            23,
            57,
            |rng: &mut StdRng, _| -> Result<f64, SimError> { Ok(rng.random::<f64>()) },
            crate::stats::OnlineStats::new(),
            |acc, x| acc.push(x),
        )
        .unwrap();
        for threads in [1, 2, 8] {
            let parallel = replicate_fold_threads(
                23,
                57,
                threads,
                || (),
                |(), rng: &mut StdRng, _| -> Result<f64, SimError> { Ok(rng.random::<f64>()) },
                crate::stats::OnlineStats::new(),
                |acc, x| acc.push(x),
            )
            .unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn fold_paths_surface_first_error_in_index_order() {
        let fail_from = |i: usize| -> Result<f64, SimError> {
            if i >= 10 {
                Err(SimError::NoObservations)
            } else {
                Ok(i as f64)
            }
        };
        let mut folded = Vec::new();
        let err =
            replicate_fold(1, 40, |_, i| fail_from(i), (), |(), x| folded.push(x)).unwrap_err();
        assert_eq!(err, SimError::NoObservations);
        assert_eq!(folded.len(), 10, "prefix before the error is folded");
        let err = replicate_fold_threads(1, 40, 4, || (), |(), _, i| fail_from(i), (), |(), _| {})
            .unwrap_err();
        assert_eq!(err, SimError::NoObservations);
    }

    #[test]
    fn farm_streaming_fold_pins_serial_parallel_and_history_agreement() {
        // The production estimator path end to end: farm replications
        // through the epoch kernel, loss fractions reduced by streaming
        // batch means. Serial fold, parallel fold (any thread count), and
        // the history-based batch_means estimator must agree bit for bit
        // on a pinned seed.
        use crate::stats::{batch_means, StreamingBatchMeans};
        use crate::{FarmSimulation, SimContext};
        let sim = FarmSimulation::new(3, 0.02, 1.0, 0.9, 6.0, 300.0, 150.0, 8).unwrap();
        let (seed, reps, batches, horizon) = (2024u64, 48usize, 8usize, 400.0);
        let history = replicate(seed, reps, |rng, _| {
            let mut ctx = SimContext::new();
            sim.run_counts_with(&mut ctx, rng, horizon)
                .map(|c| c.loss_fraction())
        })
        .unwrap();
        let expected = batch_means(&history, batches).unwrap();
        let mut ctx = SimContext::new();
        let serial = replicate_fold(
            seed,
            reps,
            |rng, _| {
                sim.run_counts_with(&mut ctx, rng, horizon)
                    .map(|c| c.loss_fraction())
            },
            StreamingBatchMeans::new(reps, batches).unwrap(),
            |acc, x| acc.push(x),
        )
        .unwrap()
        .finish()
        .unwrap();
        assert_eq!(serial, expected, "streaming vs history estimator");
        for threads in [2, 8] {
            let parallel = replicate_fold_threads(
                seed,
                reps,
                threads,
                SimContext::new,
                |ctx, rng, _| {
                    sim.run_counts_with(ctx, rng, horizon)
                        .map(|c| c.loss_fraction())
                },
                StreamingBatchMeans::new(reps, batches).unwrap(),
                |acc, x| acc.push(x),
            )
            .unwrap()
            .finish()
            .unwrap();
            assert_eq!(parallel, serial, "threads={threads}");
        }
    }

    #[test]
    fn replication_streams_are_independent_of_execution_order() {
        // Re-running a single replication in isolation reproduces the
        // value it had inside the batch.
        let f = |rng: &mut StdRng, _: usize| -> Result<u64, SimError> { Ok(rng.random()) };
        let batch = replicate_parallel(99, 16, f).unwrap();
        let mut rng = StdRng::seed_from_u64(replication_seed(99, 11));
        assert_eq!(batch[11], rng.random::<u64>());
    }
}
