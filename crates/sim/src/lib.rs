//! # uavail-sim
//!
//! Discrete-event simulation substrate for cross-validating the analytical
//! availability models.
//!
//! The paper's results are purely analytical. This crate provides the
//! independent evidence a reproduction should have: event-driven simulators
//! whose long-run estimates must converge to the closed-form results within
//! confidence intervals.
//!
//! * [`EventQueue`] — a minimal future-event list (time-ordered heap) for
//!   event-driven models.
//! * [`stats`] — online statistics: Welford mean/variance, binomial
//!   confidence intervals, batch means.
//! * [`rng`] — exponential/geometry sampling helpers on top of any
//!   [`rand::Rng`].
//! * [`replicate`] — deterministic independent replications, serially or
//!   on all cores with bit-for-bit identical results (each replication
//!   owns an RNG stream derived from the base seed).
//! * [`AlternatingRenewal`] — up/down component simulation; validates
//!   two-state availability `µ/(λ+µ)`.
//! * [`QueueSimulation`] — M/M/c/K loss simulation; validates the
//!   equation-(1)/(3) blocking probabilities.
//! * [`FarmSimulation`] — the full joint web-farm model: failures, shared
//!   repair, imperfect coverage, reconfiguration, and request traffic in
//!   one simulation; validates the composite performability equations
//!   (5) and (9) end to end, including the quasi-steady-state separation
//!   assumption itself.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use uavail_sim::AlternatingRenewal;
//!
//! # fn main() -> Result<(), uavail_sim::SimError> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let sim = AlternatingRenewal::new(0.1, 1.0)?; // λ, µ
//! let result = sim.run(&mut rng, 50_000.0)?;
//! let analytic = 1.0 / 1.1;
//! assert!((result.availability - analytic).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

mod engine;
mod error;
mod farm;
mod queue_sim;
mod renewal;
pub mod replicate;
mod response_sim;
pub mod rng;
pub mod stats;

pub use engine::EventQueue;
pub use error::SimError;
pub use farm::{FarmObservation, FarmSimulation};
pub use queue_sim::{QueueObservation, QueueSimulation};
pub use renewal::{AlternatingRenewal, RenewalObservation};
pub use response_sim::{ResponseObservation, ResponseSimulation};
