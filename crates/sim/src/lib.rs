//! # uavail-sim
//!
//! Discrete-event simulation substrate for cross-validating the analytical
//! availability models.
//!
//! The paper's results are purely analytical. This crate provides the
//! independent evidence a reproduction should have: event-driven simulators
//! whose long-run estimates must converge to the closed-form results within
//! confidence intervals.
//!
//! * [`EventQueue`] — a minimal future-event list (time-ordered heap) for
//!   event-driven models, with arena reuse (`with_capacity`/`reset`) for
//!   replicated runs.
//! * [`SimContext`] — preallocated per-replication scratch (event heaps,
//!   alias-row caches, occupancy buffers) threaded through the `*_with`
//!   fast paths so steady-state replication runs allocation-free.
//! * [`stats`] — online statistics: Welford mean/variance, binomial
//!   confidence intervals, batch means (one-shot and streaming).
//! * [`rng`] — sampling helpers on top of any [`rand::Rng`]: exponential
//!   inversion, O(1) Walker/Vose alias tables, and a ziggurat Exp(1)
//!   sampler for the hot paths.
//! * [`replicate`] — deterministic independent replications, serially or
//!   on all cores with bit-for-bit identical results (each replication
//!   owns an RNG stream derived from the base seed), including streaming
//!   fold variants that never materialize per-replication histories.
//! * [`AlternatingRenewal`] — up/down component simulation; validates
//!   two-state availability `µ/(λ+µ)`.
//! * [`QueueSimulation`] — M/M/c/K loss simulation; validates the
//!   equation-(1)/(3) blocking probabilities.
//! * [`FarmSimulation`] — the full joint web-farm model: failures, shared
//!   repair, imperfect coverage, reconfiguration, and request traffic in
//!   one simulation; validates the composite performability equations
//!   (5) and (9) end to end, including the quasi-steady-state separation
//!   assumption itself.
//!
//! # Examples
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//! use uavail_sim::AlternatingRenewal;
//!
//! # fn main() -> Result<(), uavail_sim::SimError> {
//! let mut rng = StdRng::seed_from_u64(1);
//! let sim = AlternatingRenewal::new(0.1, 1.0)?; // λ, µ
//! let result = sim.run(&mut rng, 50_000.0)?;
//! let analytic = 1.0 / 1.1;
//! assert!((result.availability - analytic).abs() < 0.01);
//! # Ok(())
//! # }
//! ```

mod context;
mod engine;
mod error;
mod farm;
mod queue_sim;
mod renewal;
pub mod replicate;
mod response_sim;
pub mod rng;
pub mod stats;

pub use context::SimContext;
pub use engine::EventQueue;
pub use error::SimError;
pub use farm::{FarmCounts, FarmObservation, FarmSimulation};
pub use queue_sim::{QueueObservation, QueueSimulation};
pub use renewal::{AlternatingRenewal, RenewalObservation};
pub use response_sim::{ResponseObservation, ResponseSimulation};
