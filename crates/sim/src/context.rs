//! Preallocated per-replication scratch shared by every simulator.

use std::collections::VecDeque;

use crate::engine::EventQueue;
use crate::farm::FarmScratch;
use crate::queue_sim::QueueEvent;
use crate::response_sim::ResponseEvent;
use crate::rng::ExpZiggurat;

/// Reusable simulation workspace — the simulation-side counterpart of
/// travel's `EvalContext` memo arena.
///
/// A replication loop creates one context (one per worker thread in
/// parallel runs) and threads it through the `*_with` entry points
/// ([`crate::FarmSimulation::run_counts_with`],
/// [`crate::QueueSimulation::run_with`],
/// [`crate::ResponseSimulation::run_with`],
/// [`crate::AlternatingRenewal::run_with`]). Each run resets and reuses
/// the context's event heaps, FIFO buffer, occupancy-time buffer, and the
/// farm's alias-row cache, so steady-state replication performs no heap
/// allocation per replication. The context also pins a reference to the
/// process-wide ziggurat tables so hot loops skip the `OnceLock` check.
///
/// Contexts are storage only: results are bit-identical whether a context
/// is fresh or warm, which is what keeps serial and parallel replication
/// streams interchangeable.
#[derive(Debug, Clone)]
pub struct SimContext {
    pub(crate) farm: FarmScratch,
    pub(crate) queue_events: EventQueue<QueueEvent>,
    pub(crate) response_events: EventQueue<ResponseEvent>,
    pub(crate) response_waiting: VecDeque<f64>,
    pub(crate) zig: &'static ExpZiggurat,
}

impl SimContext {
    /// Creates an empty context; arenas grow on first use and are kept
    /// across runs.
    pub fn new() -> Self {
        SimContext {
            farm: FarmScratch::default(),
            queue_events: EventQueue::new(),
            response_events: EventQueue::new(),
            response_waiting: VecDeque::new(),
            zig: ExpZiggurat::get(),
        }
    }
}

impl Default for SimContext {
    fn default() -> Self {
        SimContext::new()
    }
}
