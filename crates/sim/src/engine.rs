use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry in the future-event list.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    /// Tie-breaker preserving schedule order for simultaneous events.
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .expect("event times are never NaN")
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered future-event list for discrete-event simulation.
///
/// Events pop in non-decreasing time order; ties pop in scheduling order.
/// The queue also tracks the simulation clock: popping an event advances
/// [`EventQueue::now`] to its timestamp.
///
/// # Examples
///
/// ```
/// use uavail_sim::EventQueue;
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Arrival, Departure }
///
/// let mut q = EventQueue::new();
/// q.schedule(2.0, Ev::Departure);
/// q.schedule(1.0, Ev::Arrival);
/// assert_eq!(q.pop(), Some((1.0, Ev::Arrival)));
/// assert_eq!(q.now(), 1.0);
/// assert_eq!(q.pop(), Some((2.0, Ev::Departure)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: f64,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0.0,
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// steady-state workloads below that bound never reallocate.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            now: 0.0,
            next_seq: 0,
        }
    }

    /// Number of pending events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Returns the queue to its freshly-created state — no pending events,
    /// clock and sequence counter at zero — while keeping the allocated
    /// heap storage. This is the arena-reuse entry point: a per-replication
    /// scratch calls `reset` instead of building a new queue, so replicated
    /// runs stop paying a heap allocation per replication.
    pub fn reset(&mut self) {
        self.heap.clear();
        self.now = 0.0;
        self.next_seq = 0;
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN or earlier than the current clock.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, event });
    }

    /// Schedules `event` at `now() + delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or NaN.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative");
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Peeks at the earliest pending event time.
    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Drops every pending event (the clock is unchanged).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        assert_eq!(q.pop().unwrap().1, "first");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn clock_advances_and_relative_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(5.0, "x");
        q.pop();
        assert_eq!(q.now(), 5.0);
        q.schedule_in(2.5, "y");
        assert_eq!(q.next_time(), Some(7.5));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(5.0, ());
        q.pop();
        q.schedule(1.0, ());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn reset_restores_fresh_state_and_keeps_storage() {
        let mut q = EventQueue::with_capacity(16);
        let cap = q.capacity();
        assert!(cap >= 16);
        for i in 0..10 {
            q.schedule(i as f64, i);
        }
        q.pop();
        q.reset();
        assert!(q.is_empty());
        assert_eq!(q.now(), 0.0);
        assert_eq!(q.capacity(), cap, "reset must not shrink the arena");
        // The sequence counter restarts: replays after reset are
        // bit-identical to a fresh queue, including tie-breaking.
        q.schedule(1.0, 100);
        q.schedule(1.0, 200);
        assert_eq!(q.pop(), Some((1.0, 100)));
        assert_eq!(q.pop(), Some((1.0, 200)));
    }

    #[test]
    fn clear_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule(1.0, ());
        q.pop();
        q.schedule(9.0, ());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 1.0);
    }
}
