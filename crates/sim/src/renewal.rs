use rand::Rng;

use crate::context::SimContext;
use crate::error::check_rate;
use crate::rng::exponential;
use crate::SimError;

/// Simulates a repairable component as an alternating renewal process:
/// exponential up times (rate `λ`) alternating with exponential down times
/// (rate `µ`).
///
/// The long-run fraction of up time must converge to the two-state CTMC
/// availability `µ / (λ + µ)` — the base case every analytic model in the
/// workspace builds on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlternatingRenewal {
    failure_rate: f64,
    repair_rate: f64,
}

/// Result of an [`AlternatingRenewal`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenewalObservation {
    /// Fraction of the horizon spent up.
    pub availability: f64,
    /// Number of complete failures observed.
    pub failures: u64,
    /// Total simulated time.
    pub horizon: f64,
}

impl AlternatingRenewal {
    /// Creates the process with the given failure and repair rates.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive rates.
    pub fn new(failure_rate: f64, repair_rate: f64) -> Result<Self, SimError> {
        check_rate("failure_rate", failure_rate)?;
        check_rate("repair_rate", repair_rate)?;
        Ok(AlternatingRenewal {
            failure_rate,
            repair_rate,
        })
    }

    /// Analytic steady-state availability `µ / (λ + µ)` for comparison.
    pub fn analytic_availability(&self) -> f64 {
        self.repair_rate / (self.failure_rate + self.repair_rate)
    }

    /// Runs the process from the up state for `horizon` time units.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for a non-positive horizon.
    pub fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        horizon: f64,
    ) -> Result<RenewalObservation, SimError> {
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "horizon",
                value: horizon,
                requirement: "finite and > 0",
            });
        }
        let mut t = 0.0;
        let mut up_time = 0.0;
        let mut failures = 0u64;
        let mut up = true;
        while t < horizon {
            let rate = if up {
                self.failure_rate
            } else {
                self.repair_rate
            };
            let sojourn = exponential(rng, rate);
            let end = (t + sojourn).min(horizon);
            if up {
                up_time += end - t;
                if t + sojourn <= horizon {
                    failures += 1;
                }
            }
            t += sojourn;
            up = !up;
        }
        Ok(RenewalObservation {
            availability: up_time / horizon,
            failures,
            horizon,
        })
    }

    /// High-throughput twin of [`AlternatingRenewal::run`] on a
    /// [`SimContext`]: sojourn times come from the ziggurat sampler
    /// (cached reciprocal rates, no per-event `ln`). Same process, a
    /// different — still deterministic-per-seed — draw sequence.
    ///
    /// # Errors
    ///
    /// Exactly as [`AlternatingRenewal::run`].
    pub fn run_with<R: Rng + ?Sized>(
        &self,
        ctx: &mut SimContext,
        rng: &mut R,
        horizon: f64,
    ) -> Result<RenewalObservation, SimError> {
        if !(horizon.is_finite() && horizon > 0.0) {
            return Err(SimError::InvalidParameter {
                name: "horizon",
                value: horizon,
                requirement: "finite and > 0",
            });
        }
        let zig = ctx.zig;
        let inv_up = self.failure_rate.recip();
        let inv_down = self.repair_rate.recip();
        let mut t = 0.0;
        let mut up_time = 0.0;
        let mut failures = 0u64;
        let mut up = true;
        while t < horizon {
            let sojourn = zig.sample(rng) * if up { inv_up } else { inv_down };
            let end = (t + sojourn).min(horizon);
            if up {
                up_time += end - t;
                if t + sojourn <= horizon {
                    failures += 1;
                }
            }
            t += sojourn;
            up = !up;
        }
        Ok(RenewalObservation {
            availability: up_time / horizon,
            failures,
            horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(AlternatingRenewal::new(0.0, 1.0).is_err());
        assert!(AlternatingRenewal::new(1.0, -1.0).is_err());
        let ok = AlternatingRenewal::new(1.0, 2.0).unwrap();
        assert!(ok.run(&mut StdRng::seed_from_u64(0), 0.0).is_err());
        assert!(ok.run(&mut StdRng::seed_from_u64(0), f64::NAN).is_err());
    }

    #[test]
    fn converges_to_analytic_availability() {
        let mut rng = StdRng::seed_from_u64(2024);
        let sim = AlternatingRenewal::new(0.2, 1.0).unwrap();
        let obs = sim.run(&mut rng, 200_000.0).unwrap();
        let analytic = sim.analytic_availability();
        assert!(
            (obs.availability - analytic).abs() < 0.005,
            "sim {} vs analytic {}",
            obs.availability,
            analytic
        );
    }

    #[test]
    fn failure_count_matches_rate() {
        // Expected failures ≈ horizon * availability * λ.
        let mut rng = StdRng::seed_from_u64(7);
        let sim = AlternatingRenewal::new(0.5, 5.0).unwrap();
        let horizon = 100_000.0;
        let obs = sim.run(&mut rng, horizon).unwrap();
        let expected = horizon * sim.analytic_availability() * 0.5;
        assert!(
            (obs.failures as f64 - expected).abs() / expected < 0.05,
            "{} vs {expected}",
            obs.failures
        );
    }

    #[test]
    fn fast_path_converges_to_analytic_availability() {
        let mut ctx = SimContext::new();
        let mut rng = StdRng::seed_from_u64(2024);
        let sim = AlternatingRenewal::new(0.2, 1.0).unwrap();
        let obs = sim.run_with(&mut ctx, &mut rng, 200_000.0).unwrap();
        let analytic = sim.analytic_availability();
        assert!(
            (obs.availability - analytic).abs() < 0.005,
            "sim {} vs analytic {analytic}",
            obs.availability
        );
        // Deterministic per seed.
        let again = sim
            .run_with(&mut ctx, &mut StdRng::seed_from_u64(2024), 200_000.0)
            .unwrap();
        assert_eq!(again, obs);
    }

    #[test]
    fn highly_reliable_component() {
        let mut rng = StdRng::seed_from_u64(3);
        let sim = AlternatingRenewal::new(1e-4, 1.0).unwrap();
        let obs = sim.run(&mut rng, 1_000_000.0).unwrap();
        assert!(obs.availability > 0.999);
    }
}
