//! Online statistics for simulation output analysis.

/// Welford's online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use uavail_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`; 0 when fewer than two points).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Normal-approximation confidence half-width at the given z quantile
    /// (e.g. 1.96 for 95%).
    pub fn confidence_half_width(&self, z: f64) -> f64 {
        z * self.standard_error()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

/// A binomial proportion with a Wilson-score confidence interval.
///
/// # Examples
///
/// ```
/// use uavail_sim::stats::Proportion;
///
/// let p = Proportion::new(90, 100);
/// assert!((p.estimate() - 0.9).abs() < 1e-12);
/// let (lo, hi) = p.confidence_interval(1.96);
/// assert!(lo < 0.9 && 0.9 < hi);
///
/// // Unlike the Wald interval, the Wilson interval stays informative in
/// // the rare-event regime: zero observed losses still yield an upper
/// // bound strictly above zero.
/// let rare = Proportion::new(0, 10_000);
/// let (lo, hi) = rare.confidence_interval(1.96);
/// assert_eq!(lo, 0.0);
/// assert!(hi > 0.0 && hi < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates a proportion observation.
    ///
    /// # Panics
    ///
    /// Panics when `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes exceed trials");
        Proportion { successes, trials }
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate (0 for zero trials).
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wilson score interval clamped to `[0, 1]`.
    ///
    /// The Wald interval `p ± z √(p(1−p)/n)` collapses to zero width at
    /// `p = 0` or `p = 1` — exactly the regime of rare-loss availability
    /// estimates, where it falsely reports certainty. The Wilson score
    /// interval inverts the normal test on the true proportion instead,
    /// so `0/n` successes still produce a strictly positive upper bound
    /// (≈ `z²/(n+z²)`) and `n/n` a lower bound strictly below one.
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let n = self.trials as f64;
        let p = self.estimate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

/// Splits a series into `batches` near-equal batches and returns the
/// batch-mean statistics — the standard way to build confidence intervals
/// on autocorrelated simulation output.
///
/// Every observation contributes: when `len` is not divisible by
/// `batches`, the first `len % batches` batches take `⌈len/batches⌉`
/// observations and the rest `⌊len/batches⌋` (an earlier version silently
/// dropped the trailing `len % batches` points, biasing the interval when
/// the tail of a run differed from its body). The divisible case is
/// unchanged.
///
/// Returns `None` when there are fewer observations than batches.
///
/// # Examples
///
/// ```
/// use uavail_sim::stats::batch_means;
///
/// let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let stats = batch_means(&data, 10).unwrap();
/// assert_eq!(stats.count(), 10);
/// assert!((stats.mean() - 49.5).abs() < 1e-9);
/// ```
pub fn batch_means(series: &[f64], batches: usize) -> Option<OnlineStats> {
    if batches == 0 || series.len() < batches {
        return None;
    }
    let base = series.len() / batches;
    let remainder = series.len() % batches;
    let mut stats = OnlineStats::new();
    let mut start = 0;
    for b in 0..batches {
        let size = base + usize::from(b < remainder);
        let chunk = &series[start..start + size];
        start += size;
        let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
        stats.push(mean);
    }
    debug_assert_eq!(start, series.len(), "every observation is consumed");
    Some(stats)
}

/// One-pass [`batch_means`]: same batch geometry, same statistics, but fed
/// one observation at a time so the series never has to be materialized.
///
/// The planned series length and batch count are fixed at construction;
/// observations are then [`push`](StreamingBatchMeans::push)ed in order and
/// folded into the current batch's running sum. Batch boundaries follow the
/// [`batch_means`] rule exactly — the first `len % batches` batches take
/// `⌈len/batches⌉` observations, the rest `⌊len/batches⌋` — and each batch
/// mean is accumulated left-to-right in the same order as
/// `chunk.iter().sum()`, so the final [`OnlineStats`] is **bit-for-bit
/// identical** to `batch_means(&series, batches)` on the same values.
///
/// # Examples
///
/// ```
/// use uavail_sim::stats::{batch_means, StreamingBatchMeans};
///
/// let series: Vec<f64> = (0..103).map(|i| (i as f64).sin()).collect();
/// let mut streaming = StreamingBatchMeans::new(series.len(), 7).unwrap();
/// for &x in &series {
///     streaming.push(x);
/// }
/// assert_eq!(streaming.finish(), batch_means(&series, 7));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingBatchMeans {
    stats: OnlineStats,
    batch_sum: f64,
    /// Observations folded into the current batch so far.
    filled: usize,
    /// Index of the current batch.
    batch: usize,
    base: usize,
    remainder: usize,
    pushed: usize,
    planned: usize,
}

impl StreamingBatchMeans {
    /// Creates a reducer for a series of exactly `planned` observations
    /// split into `batches` batches.
    ///
    /// Returns `None` exactly when `batch_means` would: `batches == 0` or
    /// fewer planned observations than batches.
    pub fn new(planned: usize, batches: usize) -> Option<Self> {
        if batches == 0 || planned < batches {
            return None;
        }
        Some(StreamingBatchMeans {
            stats: OnlineStats::new(),
            batch_sum: 0.0,
            filled: 0,
            batch: 0,
            base: planned / batches,
            remainder: planned % batches,
            pushed: 0,
            planned,
        })
    }

    /// Size of batch `b` under the `batch_means` partition rule.
    fn batch_size(&self, b: usize) -> usize {
        self.base + usize::from(b < self.remainder)
    }

    /// Adds the next observation of the series.
    ///
    /// # Panics
    ///
    /// Panics when called more than the planned number of times — the
    /// batch geometry was fixed at construction and cannot absorb extras.
    pub fn push(&mut self, x: f64) {
        assert!(
            self.pushed < self.planned,
            "pushed more than the {} planned observations",
            self.planned
        );
        self.pushed += 1;
        self.batch_sum += x;
        self.filled += 1;
        if self.filled == self.batch_size(self.batch) {
            self.stats.push(self.batch_sum / self.filled as f64);
            self.batch_sum = 0.0;
            self.filled = 0;
            self.batch += 1;
        }
    }

    /// Observations pushed so far.
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Planned series length fixed at construction.
    pub fn planned(&self) -> usize {
        self.planned
    }

    /// Whether every planned observation has been pushed.
    pub fn is_complete(&self) -> bool {
        self.pushed == self.planned
    }

    /// The batch-mean statistics, `None` unless every planned observation
    /// was pushed (a partial series would silently bias the interval).
    pub fn finish(self) -> Option<OnlineStats> {
        self.is_complete().then_some(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_against_two_pass() {
        let data = [1.5, 2.5, 3.5, -1.0, 0.0, 10.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn proportion_interval_shrinks_with_trials() {
        let small = Proportion::new(9, 10).confidence_interval(1.96);
        let large = Proportion::new(9_000, 10_000).confidence_interval(1.96);
        assert!(large.1 - large.0 < small.1 - small.0);
    }

    #[test]
    fn proportion_degenerate() {
        assert_eq!(Proportion::new(0, 0).estimate(), 0.0);
        assert_eq!(Proportion::new(0, 0).confidence_interval(1.96), (0.0, 1.0));
    }

    #[test]
    fn wilson_interval_never_collapses_at_zero_successes() {
        // Regression: the Wald interval has zero width at p = 0 — the
        // rare-loss regime — falsely reporting certainty.
        for n in [1u64, 10, 100, 10_000, 1_000_000] {
            let (lo, hi) = Proportion::new(0, n).confidence_interval(1.96);
            assert_eq!(lo, 0.0, "n={n}");
            assert!(hi > 0.0, "n={n}: upper bound must stay positive");
            // Wilson upper bound at x = 0 is z²/(n + z²).
            let z2 = 1.96f64 * 1.96;
            let expected = z2 / (n as f64 + z2);
            assert!((hi - expected).abs() < 1e-12, "n={n}: {hi} vs {expected}");
        }
    }

    #[test]
    fn wilson_interval_never_collapses_at_all_successes() {
        for n in [1u64, 10, 100, 10_000, 1_000_000] {
            let (lo, hi) = Proportion::new(n, n).confidence_interval(1.96);
            // Algebraically the upper bound is exactly 1 at p = 1; allow
            // for floating-point roundoff just below it.
            assert!((1.0 - hi) < 1e-9 && hi <= 1.0, "n={n}: hi={hi}");
            assert!(lo < 1.0, "n={n}: lower bound must stay below one");
            let z2 = 1.96f64 * 1.96;
            let expected = n as f64 / (n as f64 + z2);
            assert!((lo - expected).abs() < 1e-12, "n={n}: {lo} vs {expected}");
        }
    }

    #[test]
    fn wilson_interval_contains_estimate_and_shrinks() {
        // For interior p the Wilson interval brackets the point estimate
        // and approaches the Wald interval as n grows.
        let p = Proportion::new(9_000, 10_000);
        let (lo, hi) = p.confidence_interval(1.96);
        assert!(lo < 0.9 && 0.9 < hi);
        let wald_half = 1.96 * (0.9f64 * 0.1 / 10_000.0).sqrt();
        assert!(((hi - lo) / 2.0 - wald_half).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "successes exceed trials")]
    fn proportion_validates() {
        let _ = Proportion::new(2, 1);
    }

    #[test]
    fn batch_means_bounds() {
        assert!(batch_means(&[1.0], 2).is_none());
        assert!(batch_means(&[1.0, 2.0], 0).is_none());
        let s = batch_means(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn batch_means_uses_every_observation() {
        // Regression: the old implementation dropped the trailing
        // len % batches points — here the only nonzero observation.
        let series = [0.0, 0.0, 0.0, 0.0, 1000.0];
        let stats = batch_means(&series, 2).unwrap();
        // Sizes 3 and 2: means 0 and 500; dropping the tail gave 0.
        assert_eq!(stats.count(), 2);
        assert!((stats.mean() - 250.0).abs() < 1e-12, "{}", stats.mean());
    }

    #[test]
    fn batch_means_size_weighted_total_is_exact() {
        // Batch sizes ⌈len/b⌉ and ⌊len/b⌋ partition the series, so the
        // size-weighted batch means recover the exact series sum.
        let series: Vec<f64> = (0..103).map(|i| (i as f64).sin() + 2.0).collect();
        let batches = 7;
        let base = series.len() / batches;
        let remainder = series.len() % batches;
        let stats = batch_means(&series, batches).unwrap();
        assert_eq!(stats.count(), batches as u64);
        let mut start = 0;
        let mut weighted = 0.0;
        for b in 0..batches {
            let size = base + usize::from(b < remainder);
            let chunk_mean = series[start..start + size].iter().sum::<f64>() / size as f64;
            weighted += chunk_mean * size as f64;
            start += size;
        }
        assert_eq!(start, series.len());
        let total: f64 = series.iter().sum();
        assert!((weighted - total).abs() < 1e-9);
    }

    #[test]
    fn streaming_batch_means_is_bit_identical_to_one_shot() {
        // Divisible and non-divisible lengths, several batch counts; the
        // streaming reducer must reproduce batch_means exactly, bit for
        // bit (OnlineStats is PartialEq over raw f64 fields).
        for (len, batches) in [(60, 6), (103, 7), (5, 2), (7, 7), (1000, 32), (97, 13)] {
            let series: Vec<f64> = (0..len).map(|i| (i as f64 * 0.73).sin() * 1e3).collect();
            let mut streaming = StreamingBatchMeans::new(len, batches).unwrap();
            for &x in &series {
                streaming.push(x);
            }
            assert!(streaming.is_complete());
            assert_eq!(
                streaming.finish(),
                batch_means(&series, batches),
                "len={len} batches={batches}"
            );
        }
    }

    #[test]
    fn streaming_batch_means_rejects_what_batch_means_rejects() {
        assert!(StreamingBatchMeans::new(1, 2).is_none());
        assert!(StreamingBatchMeans::new(2, 0).is_none());
        assert!(StreamingBatchMeans::new(2, 2).is_some());
    }

    #[test]
    fn streaming_batch_means_incomplete_finish_is_none() {
        let mut s = StreamingBatchMeans::new(10, 2).unwrap();
        for i in 0..9 {
            s.push(i as f64);
        }
        assert!(!s.is_complete());
        assert_eq!(s.pushed(), 9);
        assert_eq!(s.planned(), 10);
        assert_eq!(s.finish(), None);
    }

    #[test]
    #[should_panic(expected = "planned observations")]
    fn streaming_batch_means_rejects_overflow() {
        let mut s = StreamingBatchMeans::new(2, 2).unwrap();
        s.push(1.0);
        s.push(2.0);
        s.push(3.0);
    }

    #[test]
    fn batch_means_divisible_case_unchanged() {
        // When batches divides len the chunks are identical to the old
        // equal-size split.
        let series: Vec<f64> = (0..60).map(|i| (i as f64) * 0.5).collect();
        let stats = batch_means(&series, 6).unwrap();
        let mut expected = OnlineStats::new();
        for chunk in series.chunks(10) {
            expected.push(chunk.iter().sum::<f64>() / 10.0);
        }
        assert_eq!(stats, expected);
    }
}
