//! Online statistics for simulation output analysis.

/// Welford's online mean/variance accumulator.
///
/// # Examples
///
/// ```
/// use uavail_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by `n`).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (divides by `n - 1`; 0 when fewer than two points).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard error of the mean.
    pub fn standard_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.sample_variance() / self.count as f64).sqrt()
        }
    }

    /// Normal-approximation confidence half-width at the given z quantile
    /// (e.g. 1.96 for 95%).
    pub fn confidence_half_width(&self, z: f64) -> f64 {
        z * self.standard_error()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

/// A binomial proportion with a normal-approximation confidence interval.
///
/// # Examples
///
/// ```
/// use uavail_sim::stats::Proportion;
///
/// let p = Proportion::new(90, 100);
/// assert!((p.estimate() - 0.9).abs() < 1e-12);
/// let (lo, hi) = p.confidence_interval(1.96);
/// assert!(lo < 0.9 && 0.9 < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates a proportion observation.
    ///
    /// # Panics
    ///
    /// Panics when `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Self {
        assert!(successes <= trials, "successes exceed trials");
        Proportion { successes, trials }
    }

    /// Number of successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate (0 for zero trials).
    pub fn estimate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    /// Wald interval clamped to `[0, 1]`.
    pub fn confidence_interval(&self, z: f64) -> (f64, f64) {
        let p = self.estimate();
        if self.trials == 0 {
            return (0.0, 1.0);
        }
        let half = z * (p * (1.0 - p) / self.trials as f64).sqrt();
        ((p - half).max(0.0), (p + half).min(1.0))
    }
}

/// Splits a series into `batches` equal batches and returns the batch-mean
/// statistics — the standard way to build confidence intervals on
/// autocorrelated simulation output.
///
/// Returns `None` when there are fewer observations than batches.
///
/// # Examples
///
/// ```
/// use uavail_sim::stats::batch_means;
///
/// let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// let stats = batch_means(&data, 10).unwrap();
/// assert_eq!(stats.count(), 10);
/// assert!((stats.mean() - 49.5).abs() < 1e-9);
/// ```
pub fn batch_means(series: &[f64], batches: usize) -> Option<OnlineStats> {
    if batches == 0 || series.len() < batches {
        return None;
    }
    let batch_size = series.len() / batches;
    let mut stats = OnlineStats::new();
    for b in 0..batches {
        let chunk = &series[b * batch_size..(b + 1) * batch_size];
        let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
        stats.push(mean);
    }
    Some(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_against_two_pass() {
        let data = [1.5, 2.5, 3.5, -1.0, 0.0, 10.0];
        let mut s = OnlineStats::new();
        for &x in &data {
            s.push(x);
        }
        let mean: f64 = data.iter().sum::<f64>() / data.len() as f64;
        let var: f64 =
            data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_single_pass() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - whole.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e, a);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
    }

    #[test]
    fn proportion_interval_shrinks_with_trials() {
        let small = Proportion::new(9, 10).confidence_interval(1.96);
        let large = Proportion::new(9_000, 10_000).confidence_interval(1.96);
        assert!(large.1 - large.0 < small.1 - small.0);
    }

    #[test]
    fn proportion_degenerate() {
        assert_eq!(Proportion::new(0, 0).estimate(), 0.0);
        assert_eq!(Proportion::new(0, 0).confidence_interval(1.96), (0.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "successes exceed trials")]
    fn proportion_validates() {
        let _ = Proportion::new(2, 1);
    }

    #[test]
    fn batch_means_bounds() {
        assert!(batch_means(&[1.0], 2).is_none());
        assert!(batch_means(&[1.0, 2.0], 0).is_none());
        let s = batch_means(&[1.0, 2.0, 3.0, 4.0], 2).unwrap();
        assert_eq!(s.count(), 2);
        assert!((s.mean() - 2.5).abs() < 1e-12);
    }
}
