use rand::Rng;

use crate::context::SimContext;
use crate::engine::EventQueue;
use crate::error::check_rate;
use crate::rng::exponential;
use crate::stats::Proportion;
use crate::SimError;

/// Event alphabet of the M/M/c/K simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum QueueEvent {
    Arrival,
    Departure,
}

/// Event-driven simulation of an M/M/c/K queue.
///
/// Validates the closed-form blocking probabilities of equations (1) and
/// (3): the observed loss fraction must converge to `p_K` within its
/// binomial confidence interval.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use uavail_sim::QueueSimulation;
///
/// # fn main() -> Result<(), uavail_sim::SimError> {
/// let sim = QueueSimulation::new(100.0, 100.0, 1, 10)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let obs = sim.run(&mut rng, 100_000)?;
/// // M/M/1/10 at rho = 1: p_K = 1/11.
/// assert!((obs.loss_fraction() - 1.0 / 11.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSimulation {
    arrival_rate: f64,
    service_rate: f64,
    servers: usize,
    capacity: usize,
}

/// Result of a [`QueueSimulation`] run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueObservation {
    /// Arrivals offered.
    pub arrivals: u64,
    /// Arrivals rejected because the system was full.
    pub losses: u64,
    /// Time-averaged number of customers in the system.
    pub mean_customers: f64,
    /// Total simulated time.
    pub horizon: f64,
}

impl QueueObservation {
    /// Observed loss fraction.
    pub fn loss_fraction(&self) -> f64 {
        Proportion::new(self.losses, self.arrivals).estimate()
    }

    /// Binomial confidence interval on the loss fraction.
    pub fn loss_confidence_interval(&self, z: f64) -> (f64, f64) {
        Proportion::new(self.losses, self.arrivals).confidence_interval(z)
    }
}

impl QueueSimulation {
    /// Creates the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive rates,
    /// `servers == 0`, or `capacity < servers`.
    pub fn new(
        arrival_rate: f64,
        service_rate: f64,
        servers: usize,
        capacity: usize,
    ) -> Result<Self, SimError> {
        check_rate("arrival_rate", arrival_rate)?;
        check_rate("service_rate", service_rate)?;
        if servers == 0 {
            return Err(SimError::InvalidParameter {
                name: "servers",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        if capacity < servers {
            return Err(SimError::InvalidParameter {
                name: "capacity",
                value: capacity as f64,
                requirement: "at least the number of servers",
            });
        }
        Ok(QueueSimulation {
            arrival_rate,
            service_rate,
            servers,
            capacity,
        })
    }

    /// Runs until `target_arrivals` arrivals have been offered.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoObservations`] when `target_arrivals == 0`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        target_arrivals: u64,
    ) -> Result<QueueObservation, SimError> {
        let mut events: EventQueue<QueueEvent> = EventQueue::new();
        self.run_core(rng, target_arrivals, &mut events)
    }

    /// [`QueueSimulation::run`] on a reusable [`SimContext`]: the event
    /// heap is reset and reused instead of reallocated, and the results
    /// are bit-identical to `run` on the same RNG stream.
    ///
    /// # Errors
    ///
    /// Exactly as [`QueueSimulation::run`].
    pub fn run_with<R: Rng + ?Sized>(
        &self,
        ctx: &mut SimContext,
        rng: &mut R,
        target_arrivals: u64,
    ) -> Result<QueueObservation, SimError> {
        ctx.queue_events.reset();
        self.run_core(rng, target_arrivals, &mut ctx.queue_events)
    }

    fn run_core<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        target_arrivals: u64,
        events: &mut EventQueue<QueueEvent>,
    ) -> Result<QueueObservation, SimError> {
        if target_arrivals == 0 {
            return Err(SimError::NoObservations);
        }
        let mut in_system = 0usize;
        let mut arrivals = 0u64;
        let mut losses = 0u64;
        let mut area = 0.0; // ∫ in_system dt
        let mut last_time = 0.0;

        events.schedule_in(exponential(rng, self.arrival_rate), QueueEvent::Arrival);
        while let Some((t, ev)) = events.pop() {
            area += in_system as f64 * (t - last_time);
            last_time = t;
            match ev {
                QueueEvent::Arrival => {
                    arrivals += 1;
                    if in_system >= self.capacity {
                        losses += 1;
                    } else {
                        in_system += 1;
                        // Departure fires when ANY busy server finishes;
                        // schedule per-customer completions instead: each
                        // accepted customer eventually departs. Using the
                        // memoryless property we schedule the aggregate:
                        // one departure event per busy server slot. Here we
                        // simply schedule this customer's own service start
                        // lazily via the aggregate-departure approach below.
                        if in_system <= self.servers {
                            // Customer enters service immediately.
                            events.schedule_in(
                                exponential(rng, self.service_rate),
                                QueueEvent::Departure,
                            );
                        }
                    }
                    if arrivals < target_arrivals {
                        events
                            .schedule_in(exponential(rng, self.arrival_rate), QueueEvent::Arrival);
                    }
                }
                QueueEvent::Departure => {
                    debug_assert!(in_system > 0, "departure from an empty system");
                    in_system -= 1;
                    // A waiting customer (if any) takes the freed server.
                    if in_system >= self.servers {
                        events.schedule_in(
                            exponential(rng, self.service_rate),
                            QueueEvent::Departure,
                        );
                    }
                }
            }
        }
        let horizon = last_time;
        Ok(QueueObservation {
            arrivals,
            losses,
            mean_customers: if horizon > 0.0 { area / horizon } else { 0.0 },
            horizon,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(QueueSimulation::new(0.0, 1.0, 1, 1).is_err());
        assert!(QueueSimulation::new(1.0, 1.0, 0, 1).is_err());
        assert!(QueueSimulation::new(1.0, 1.0, 2, 1).is_err());
        let sim = QueueSimulation::new(1.0, 1.0, 1, 1).unwrap();
        assert!(sim.run(&mut StdRng::seed_from_u64(0), 0).is_err());
    }

    #[test]
    fn mm1k_loss_matches_formula() {
        // rho = 0.8, K = 5: p_K = rho^5 (1 - rho) / (1 - rho^6).
        let sim = QueueSimulation::new(80.0, 100.0, 1, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let obs = sim.run(&mut rng, 400_000).unwrap();
        let rho: f64 = 0.8;
        let expected = rho.powi(5) * (1.0 - rho) / (1.0 - rho.powi(6));
        let (lo, hi) = obs.loss_confidence_interval(3.5);
        assert!(
            lo <= expected && expected <= hi,
            "expected {expected}, observed {} in [{lo}, {hi}]",
            obs.loss_fraction()
        );
    }

    #[test]
    fn mmck_loss_matches_formula() {
        // c = 3, K = 8, a = 2.4.
        let sim = QueueSimulation::new(240.0, 100.0, 3, 8).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let obs = sim.run(&mut rng, 400_000).unwrap();
        // Closed form via the recurrence (mirrors uavail-queueing).
        let a: f64 = 2.4;
        let mut w = 1.0;
        let mut weights = vec![1.0];
        for n in 0..8usize {
            w *= a / ((n + 1).min(3)) as f64;
            weights.push(w);
        }
        let z: f64 = weights.iter().sum();
        let expected = weights[8] / z;
        let (lo, hi) = obs.loss_confidence_interval(3.5);
        assert!(
            lo <= expected && expected <= hi,
            "expected {expected}, got {}",
            obs.loss_fraction()
        );
    }

    #[test]
    fn little_law_holds_in_simulation() {
        let sim = QueueSimulation::new(50.0, 100.0, 1, 20).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let obs = sim.run(&mut rng, 200_000).unwrap();
        // L ≈ rho / (1 - rho) = 1 for rho = 0.5 (loss negligible at K=20).
        assert!(
            (obs.mean_customers - 1.0).abs() < 0.05,
            "{}",
            obs.mean_customers
        );
    }

    #[test]
    fn run_with_is_bit_identical_to_run() {
        let sim = QueueSimulation::new(240.0, 100.0, 3, 8).unwrap();
        let fresh = sim.run(&mut StdRng::seed_from_u64(5), 50_000).unwrap();
        let mut ctx = SimContext::new();
        // A warm (reused) arena must not change results — the context is
        // storage only.
        for round in 0..2 {
            let warm = sim
                .run_with(&mut ctx, &mut StdRng::seed_from_u64(5), 50_000)
                .unwrap();
            assert_eq!(warm, fresh, "round {round}");
        }
    }

    #[test]
    fn loss_free_when_capacity_is_huge() {
        let sim = QueueSimulation::new(10.0, 100.0, 2, 50).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let obs = sim.run(&mut rng, 50_000).unwrap();
        assert_eq!(obs.losses, 0);
    }
}
