use std::collections::VecDeque;

use rand::Rng;

use crate::context::SimContext;
use crate::engine::EventQueue;
use crate::error::check_rate;
use crate::rng::exponential;
use crate::stats::{OnlineStats, Proportion};
use crate::SimError;

/// Per-customer FCFS simulation of an M/M/c/K queue that records response
/// times — the validation counterpart of the analytic response-time tails
/// in `uavail-queueing` (the paper's future-work deadline measure).
///
/// Unlike [`crate::QueueSimulation`] (which tracks only occupancy), this
/// model follows each customer individually so FCFS response times are
/// exact for any number of servers.
///
/// # Examples
///
/// ```
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
/// use uavail_sim::ResponseSimulation;
///
/// # fn main() -> Result<(), uavail_sim::SimError> {
/// let sim = ResponseSimulation::new(50.0, 100.0, 1, 10)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let obs = sim.run(&mut rng, 50_000, 0.02)?;
/// assert!(obs.deadline_miss_fraction() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseSimulation {
    arrival_rate: f64,
    service_rate: f64,
    servers: usize,
    capacity: usize,
}

/// Result of a [`ResponseSimulation`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseObservation {
    /// Arrivals offered.
    pub arrivals: u64,
    /// Arrivals lost to a full system.
    pub losses: u64,
    /// Accepted customers whose response time exceeded the deadline.
    pub deadline_misses: u64,
    /// Completed customers.
    pub completions: u64,
    /// Response-time statistics over completed customers.
    pub response_stats: OnlineStats,
}

impl ResponseObservation {
    /// Fraction of accepted-and-completed customers exceeding the deadline.
    pub fn deadline_miss_fraction(&self) -> f64 {
        Proportion::new(self.deadline_misses, self.completions).estimate()
    }

    /// Binomial confidence interval on the deadline-miss fraction.
    pub fn deadline_confidence_interval(&self, z: f64) -> (f64, f64) {
        Proportion::new(self.deadline_misses, self.completions).confidence_interval(z)
    }

    /// Observed loss fraction.
    pub fn loss_fraction(&self) -> f64 {
        Proportion::new(self.losses, self.arrivals).estimate()
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ResponseEvent {
    Arrival,
    /// Completion of the customer that arrived at the carried time.
    Completion {
        arrived_at: f64,
    },
}

impl ResponseSimulation {
    /// Creates the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParameter`] for non-positive rates,
    /// `servers == 0`, or `capacity < servers`.
    pub fn new(
        arrival_rate: f64,
        service_rate: f64,
        servers: usize,
        capacity: usize,
    ) -> Result<Self, SimError> {
        check_rate("arrival_rate", arrival_rate)?;
        check_rate("service_rate", service_rate)?;
        if servers == 0 {
            return Err(SimError::InvalidParameter {
                name: "servers",
                value: 0.0,
                requirement: "at least 1",
            });
        }
        if capacity < servers {
            return Err(SimError::InvalidParameter {
                name: "capacity",
                value: capacity as f64,
                requirement: "at least the number of servers",
            });
        }
        Ok(ResponseSimulation {
            arrival_rate,
            service_rate,
            servers,
            capacity,
        })
    }

    /// Runs until `target_arrivals` arrivals were offered, recording each
    /// completed customer's response time against `deadline`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::NoObservations`] when `target_arrivals == 0` or
    /// the deadline is not finite/non-negative (reported as
    /// [`SimError::InvalidParameter`]).
    pub fn run<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        target_arrivals: u64,
        deadline: f64,
    ) -> Result<ResponseObservation, SimError> {
        let mut events: EventQueue<ResponseEvent> = EventQueue::new();
        let mut waiting: VecDeque<f64> = VecDeque::new();
        self.run_core(rng, target_arrivals, deadline, &mut events, &mut waiting)
    }

    /// [`ResponseSimulation::run`] on a reusable [`SimContext`]: the event
    /// heap and the FCFS waiting buffer are reset and reused instead of
    /// reallocated, bit-identical to `run` on the same RNG stream.
    ///
    /// # Errors
    ///
    /// Exactly as [`ResponseSimulation::run`].
    pub fn run_with<R: Rng + ?Sized>(
        &self,
        ctx: &mut SimContext,
        rng: &mut R,
        target_arrivals: u64,
        deadline: f64,
    ) -> Result<ResponseObservation, SimError> {
        ctx.response_events.reset();
        ctx.response_waiting.clear();
        let SimContext {
            response_events,
            response_waiting,
            ..
        } = ctx;
        self.run_core(
            rng,
            target_arrivals,
            deadline,
            response_events,
            response_waiting,
        )
    }

    fn run_core<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        target_arrivals: u64,
        deadline: f64,
        events: &mut EventQueue<ResponseEvent>,
        waiting: &mut VecDeque<f64>,
    ) -> Result<ResponseObservation, SimError> {
        if target_arrivals == 0 {
            return Err(SimError::NoObservations);
        }
        if !(deadline.is_finite() && deadline >= 0.0) {
            return Err(SimError::InvalidParameter {
                name: "deadline",
                value: deadline,
                requirement: "finite and >= 0",
            });
        }
        let mut busy = 0usize;
        let mut arrivals = 0u64;
        let mut losses = 0u64;
        let mut misses = 0u64;
        let mut completions = 0u64;
        let mut stats = OnlineStats::new();

        events.schedule_in(exponential(rng, self.arrival_rate), ResponseEvent::Arrival);
        while let Some((now, ev)) = events.pop() {
            match ev {
                ResponseEvent::Arrival => {
                    arrivals += 1;
                    if busy < self.servers {
                        busy += 1;
                        events.schedule_in(
                            exponential(rng, self.service_rate),
                            ResponseEvent::Completion { arrived_at: now },
                        );
                    } else if busy + waiting.len() < self.capacity {
                        waiting.push_back(now);
                    } else {
                        losses += 1;
                    }
                    if arrivals < target_arrivals {
                        events.schedule_in(
                            exponential(rng, self.arrival_rate),
                            ResponseEvent::Arrival,
                        );
                    }
                }
                ResponseEvent::Completion { arrived_at } => {
                    let response = now - arrived_at;
                    stats.push(response);
                    completions += 1;
                    if response > deadline {
                        misses += 1;
                    }
                    if let Some(next_arrival) = waiting.pop_front() {
                        // Head-of-line customer takes the freed server.
                        events.schedule_in(
                            exponential(rng, self.service_rate),
                            ResponseEvent::Completion {
                                arrived_at: next_arrival,
                            },
                        );
                    } else {
                        busy -= 1;
                    }
                }
            }
        }
        Ok(ResponseObservation {
            arrivals,
            losses,
            deadline_misses: misses,
            completions,
            response_stats: stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validation() {
        assert!(ResponseSimulation::new(0.0, 1.0, 1, 1).is_err());
        assert!(ResponseSimulation::new(1.0, 1.0, 0, 1).is_err());
        assert!(ResponseSimulation::new(1.0, 1.0, 2, 1).is_err());
        let sim = ResponseSimulation::new(1.0, 1.0, 1, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sim.run(&mut rng, 0, 1.0).is_err());
        assert!(sim.run(&mut rng, 10, -1.0).is_err());
    }

    #[test]
    fn mm1_response_mean_matches_theory() {
        // Stable M/M/1 with huge buffer: E[T] = 1 / (nu - alpha).
        let sim = ResponseSimulation::new(50.0, 100.0, 1, 200).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let obs = sim.run(&mut rng, 300_000, 1.0).unwrap();
        let mean = obs.response_stats.mean();
        assert!((mean - 0.02).abs() < 0.001, "mean {mean}");
    }

    #[test]
    fn loss_fraction_matches_blocking_formula() {
        // M/M/2/4 at a = 2.
        let sim = ResponseSimulation::new(200.0, 100.0, 2, 4).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let obs = sim.run(&mut rng, 300_000, 1.0).unwrap();
        // p_K from the birth-death weights: 1, 2, 2, 2, 2 -> p4 = 2/9.
        let expected = 2.0 / 9.0;
        assert!(
            (obs.loss_fraction() - expected).abs() < 0.005,
            "{} vs {expected}",
            obs.loss_fraction()
        );
    }

    #[test]
    fn run_with_is_bit_identical_to_run() {
        let sim = ResponseSimulation::new(200.0, 100.0, 2, 4).unwrap();
        let fresh = sim
            .run(&mut StdRng::seed_from_u64(11), 30_000, 0.05)
            .unwrap();
        let mut ctx = SimContext::new();
        for round in 0..2 {
            let warm = sim
                .run_with(&mut ctx, &mut StdRng::seed_from_u64(11), 30_000, 0.05)
                .unwrap();
            assert_eq!(warm, fresh, "round {round}");
        }
    }

    #[test]
    fn deadline_miss_monotone_in_deadline() {
        let sim = ResponseSimulation::new(90.0, 100.0, 1, 20).unwrap();
        let mut fractions = Vec::new();
        for (seed, deadline) in [(5u64, 0.01), (5, 0.05), (5, 0.2)] {
            let mut rng = StdRng::seed_from_u64(seed);
            let obs = sim.run(&mut rng, 100_000, deadline).unwrap();
            fractions.push(obs.deadline_miss_fraction());
        }
        assert!(fractions[0] > fractions[1]);
        assert!(fractions[1] > fractions[2]);
    }
}
