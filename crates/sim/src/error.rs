use std::fmt;

/// Errors produced by simulation construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A parameter violated its domain requirement.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// The violated requirement.
        requirement: &'static str,
    },
    /// The requested horizon or sample count produced no observations.
    NoObservations,
    /// A replication closure panicked; the panic was caught at the
    /// replication boundary and converted into this typed error.
    WorkerPanicked {
        /// Index of the replication whose evaluation panicked.
        index: usize,
        /// The panic payload rendered as text.
        payload: String,
    },
}

impl uavail_core::FromWorkerPanic for SimError {
    fn from_worker_panic(index: usize, payload: String) -> Self {
        SimError::WorkerPanicked { index, payload }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidParameter {
                name,
                value,
                requirement,
            } => write!(f, "parameter {name} = {value} must be {requirement}"),
            SimError::NoObservations => write!(f, "simulation produced no observations"),
            SimError::WorkerPanicked { index, payload } => {
                write!(f, "replication {index} panicked: {payload}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Validates that a rate is finite and strictly positive.
pub(crate) fn check_rate(name: &'static str, value: f64) -> Result<(), SimError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            name,
            value,
            requirement: "finite and > 0",
        })
    }
}

/// Validates that a probability lies in `[0, 1]`.
pub(crate) fn check_probability(name: &'static str, value: f64) -> Result<(), SimError> {
    if value.is_finite() && (0.0..=1.0).contains(&value) {
        Ok(())
    } else {
        Err(SimError::InvalidParameter {
            name,
            value,
            requirement: "within [0, 1]",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = SimError::InvalidParameter {
            name: "lambda",
            value: -1.0,
            requirement: "finite and > 0",
        };
        assert!(e.to_string().contains("lambda"));
        assert!(SimError::NoObservations
            .to_string()
            .contains("no observations"));
        use uavail_core::FromWorkerPanic;
        let p = SimError::from_worker_panic(3, "boom".into());
        assert_eq!(
            p,
            SimError::WorkerPanicked {
                index: 3,
                payload: "boom".into()
            }
        );
        assert!(p.to_string().contains("replication 3"));
    }

    #[test]
    fn validators() {
        assert!(check_rate("x", 1.0).is_ok());
        assert!(check_rate("x", 0.0).is_err());
        assert!(check_probability("p", 0.5).is_ok());
        assert!(check_probability("p", 1.1).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
